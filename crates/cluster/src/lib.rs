//! # eks-cluster — hierarchical, heterogeneous dispatch
//!
//! The coarse-grain half of the paper (Sections III, IV, VI): a tree of
//! dispatcher and computing nodes over heterogeneous (simulated) GPUs.
//!
//! * [`spec`] — cluster description: nodes, devices, link latencies, and
//!   the paper's exact four-node network (A→{B,C}, C→D, five GPUs);
//! * [`tuning`] — the tuning step: per-device achieved throughput `X_j`
//!   (from the cycle-level simulator or the analytic no-ILP model) and
//!   minimum batch `n_j` for a target efficiency;
//! * [`des`] — deterministic discrete-event simulation of a whole search:
//!   round-based scatter/gather with link latencies, launch overheads and
//!   tuning error, producing the aggregate throughput and efficiency of
//!   Table IX;
//! * [`runtime`] — a real multi-threaded runtime (one thread per node,
//!   scoped std threads) that actually cracks keys through the same
//!   dispatch pattern, for end-to-end functional verification;
//! * [`multijob`] — the same planned tree serving a whole *spool* of
//!   jobs: the cluster's devices become a persistent [`eks_jobs::Fleet`]
//!   the job service leases keyspace onto, with join/leave events
//!   applied between fair-share rounds;
//! * [`fault`] — the minimum fault-tolerance model the paper sketches:
//!   detect a dead subtree, requeue its outstanding interval, repartition
//!   over the survivors.
//!
//! ```
//! use eks_cluster::{paper_network, simulate_search, SimParams};
//! use eks_hashes::HashAlgo;
//! use eks_kernels::Tool;
//!
//! // Table IX in one call: the paper's network sweeping 5e11 keys.
//! let net = paper_network(2e-3);
//! let r = simulate_search(&net, Tool::OurApproach, HashAlgo::Md5, 5e11, SimParams::default());
//! assert!(r.table9_efficiency() > 0.8, "the paper reports 0.852");
//! ```

pub mod des;
pub mod dynamic;
pub mod fault;
pub mod model;
pub mod multijob;
pub mod rounds;
pub mod runtime;
pub mod simgpu;
pub mod spec;
pub mod strength;
pub mod topology;
pub mod tuning;

pub use des::{simulate_search, time_to_first_hit, NetworkReport, SimParams};
pub use dynamic::{
    run_dynamic, run_dynamic_search, run_dynamic_search_observed, DynamicConfig, DynamicReport,
    DynamicSearchConfig, DynamicSearchReport, MembershipEvent, ScheduledEvent,
    ScheduledSearchEvent, SearchEvent,
};
pub use fault::{simulate_search_with_failure, FailureEvent, FailureReport};
pub use model::{calibrate, fit_model, FittedModel};
pub use multijob::{
    plan_job_fleet, run_cluster_jobs, run_dynamic_jobs, FleetEvent, MultiJobReport,
    ScheduledFleetEvent,
};
pub use rounds::{run_rounds, run_rounds_observed, RoundConfig, RoundReport};
pub use runtime::{
    run_cluster_search, run_cluster_search_observed, run_cluster_search_retuned,
    run_cluster_search_sched, ClusterSearchResult,
};
pub use simgpu::SimKernelBackend;
pub use spec::{paper_network, ClusterNode, CpuWorker, GpuSlot};
pub use strength::{estimate_against_cluster, estimate_against_device, StrengthEstimate};
pub use topology::parse_topology;
pub use tuning::{tune_device, AchievedModel, Tuning};
