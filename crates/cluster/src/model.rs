//! Offline performance modeling (Section III): "The tuning step could be
//! skipped when a performance model that correlates efficiency,
//! performances, and size of the search subspace for the considered
//! algorithm is available. An approximated model could be built offline
//! by performing a sequence of tests with increasing search size on each
//! node of the cluster."
//!
//! The node-time model is affine: `T(n) = overhead + n / rate`. Fitting
//! it from `(size, time)` samples by least squares recovers both the peak
//! rate `X_j` and the per-dispatch overhead, from which the minimum batch
//! `n_j` for any target efficiency follows in closed form — no online
//! tuning pass needed.

/// A fitted affine performance model for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedModel {
    /// Peak throughput, keys per second.
    pub rate: f64,
    /// Fixed per-dispatch overhead, seconds.
    pub overhead_s: f64,
    /// Coefficient of determination of the fit (1.0 = perfect).
    pub r_squared: f64,
}

impl FittedModel {
    /// Predicted time to search `n` keys.
    pub fn predict_time_s(&self, n: f64) -> f64 {
        self.overhead_s + n / self.rate
    }

    /// Predicted efficiency at `n` keys: useful work over total time.
    pub fn predict_efficiency(&self, n: f64) -> f64 {
        let work = n / self.rate;
        work / self.predict_time_s(n)
    }

    /// The minimum batch reaching `target` efficiency (the paper's `n_j`)
    /// — inverse of [`FittedModel::predict_efficiency`].
    ///
    /// # Panics
    /// Panics unless `target` is in `[0, 1)`.
    pub fn min_batch_for_efficiency(&self, target: f64) -> f64 {
        assert!((0.0..1.0).contains(&target));
        // eff = (n/rate) / (o + n/rate)  =>  n = rate·o·eff/(1-eff)
        self.rate * self.overhead_s * target / (1.0 - target)
    }

    /// Throughput in MKey/s.
    pub fn mkeys(&self) -> f64 {
        self.rate / 1e6
    }
}

/// Fit `T(n) = overhead + n / rate` by ordinary least squares over
/// `(keys, seconds)` samples.
///
/// Returns `None` with fewer than two distinct sizes or a non-positive
/// fitted slope (which would mean a meaningless negative rate).
pub fn fit_model(samples: &[(f64, f64)]) -> Option<FittedModel> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = samples.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = samples.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = samples
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx; // 1 / rate
    if slope <= 0.0 {
        return None;
    }
    let intercept = mean_y - slope * mean_x; // overhead
    // R²
    let ss_tot: f64 = samples.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some(FittedModel {
        rate: 1.0 / slope,
        overhead_s: intercept.max(0.0),
        r_squared,
    })
}

/// Run the offline calibration sequence against a real measurement
/// closure: `measure(n)` searches `n` keys and returns elapsed seconds.
/// `sizes` should grow geometrically (the paper: "a sequence of tests
/// with increasing search size").
pub fn calibrate<F: FnMut(u64) -> f64>(sizes: &[u64], mut measure: F) -> Option<FittedModel> {
    let samples: Vec<(f64, f64)> = sizes
        .iter()
        .map(|&n| (n as f64, measure(n)))
        .collect();
    fit_model(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_affine_model() {
        // T(n) = 0.004 + n / 250e6
        let truth = |n: f64| 0.004 + n / 250e6;
        let samples: Vec<(f64, f64)> = [1e5, 1e6, 1e7, 1e8]
            .iter()
            .map(|&n| (n, truth(n)))
            .collect();
        let m = fit_model(&samples).expect("fit");
        assert!((m.rate - 250e6).abs() / 250e6 < 1e-9);
        assert!((m.overhead_s - 0.004).abs() < 1e-12);
        assert!(m.r_squared > 0.999999);
    }

    #[test]
    fn min_batch_inverts_efficiency() {
        let m = FittedModel { rate: 500e6, overhead_s: 0.002, r_squared: 1.0 };
        for target in [0.5, 0.9, 0.99] {
            let n = m.min_batch_for_efficiency(target);
            assert!((m.predict_efficiency(n) - target).abs() < 1e-9, "target {target}");
        }
    }

    #[test]
    fn noisy_samples_still_fit_well() {
        // ±2 % deterministic "noise".
        let truth = |n: f64| 0.003 + n / 100e6;
        let samples: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let n = 1e6 * i as f64;
                let wiggle = 1.0 + 0.02 * if i % 2 == 0 { 1.0 } else { -1.0 };
                (n, truth(n) * wiggle)
            })
            .collect();
        let m = fit_model(&samples).expect("fit");
        assert!((m.rate - 100e6).abs() / 100e6 < 0.05, "rate {}", m.rate);
        assert!(m.r_squared > 0.99);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_model(&[]).is_none());
        assert!(fit_model(&[(1e6, 0.1)]).is_none());
        assert!(fit_model(&[(1e6, 0.1), (1e6, 0.2)]).is_none(), "no size spread");
        assert!(fit_model(&[(1e6, 0.2), (2e6, 0.1)]).is_none(), "negative slope");
    }

    #[test]
    fn calibrate_drives_the_measurement() {
        let mut calls = 0;
        let m = calibrate(&[100_000, 1_000_000, 10_000_000], |n| {
            calls += 1;
            0.001 + n as f64 / 50e6
        })
        .expect("fit");
        assert_eq!(calls, 3);
        assert!((m.mkeys() - 50.0).abs() < 0.1);
    }

    #[test]
    fn fitted_model_agrees_with_real_cpu_measurement() {
        // Calibrate against the real parallel cracker and check the fit
        // is self-consistent (prediction within 40 % of a fresh sample —
        // CI machines are noisy).
        use eks_cracker::{crack_parallel, ParallelConfig, TargetSet};
        use eks_hashes::HashAlgo;
        use eks_keyspace::{Charset, Interval, KeySpace, Order};
        let space =
            KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).unwrap();
        let targets = TargetSet::new(HashAlgo::Md5, &[vec![0u8; 16]]);
        let mut measure = |n: u64| {
            let r = crack_parallel(
                &space,
                &targets,
                Interval::new(0, n as u128),
                ParallelConfig {
                    threads: 2,
                    chunk: 1 << 12,
                    first_hit_only: false,
                    ..Default::default()
                },
            );
            r.elapsed_s
        };
        let m = calibrate(&[50_000, 100_000, 200_000, 400_000], &mut measure)
            .expect("fit");
        assert!(m.rate > 1e5, "rate {} should be at least 0.1 MKey/s", m.rate);
        let fresh = measure(300_000);
        let predicted = m.predict_time_s(300_000.0);
        let rel = (fresh - predicted).abs() / fresh;
        assert!(rel < 0.40, "prediction off by {rel}: {predicted} vs {fresh}");
    }
}
