//! A small textual topology description, so arbitrary clusters can be
//! simulated without writing Rust:
//!
//! ```text
//! A(540M) -> B(660, 550Ti); C(8600M) -> D(8800); A -> C
//! ```
//!
//! * `Name(dev1, dev2, ...)` declares a node and its devices (device
//!   names resolve by substring against the catalog; `cpu:N` adds an
//!   `N`-thread CPU worker);
//! * `X -> Y` makes `Y` a child of `X` (declaring `Y` inline is allowed);
//! * statements separated by `;`;
//! * the first declared node is the root.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::spec::ClusterNode;
use eks_gpusim::device::DeviceCatalog;

/// Parse a topology description into a cluster tree.
///
/// `link_latency_s` applies to every edge.
pub fn parse_topology(text: &str, link_latency_s: f64) -> Result<ClusterNode, String> {
    // First pass: collect node declarations and edges.
    let mut order: Vec<String> = Vec::new();
    let mut nodes: Vec<(String, ClusterNode)> = Vec::new();
    let mut edges: Vec<(String, String)> = Vec::new();

    let declare = |decl: &str,
                       order: &mut Vec<String>,
                       nodes: &mut Vec<(String, ClusterNode)>|
     -> Result<String, String> {
        let decl = decl.trim();
        if decl.is_empty() {
            return Err("empty node declaration".into());
        }
        let (name, devs) = match decl.find('(') {
            Some(open) => {
                let close = decl
                    .rfind(')')
                    .ok_or_else(|| format!("unclosed '(' in {decl:?}"))?;
                (decl[..open].trim(), Some(&decl[open + 1..close]))
            }
            None => (decl, None),
        };
        if name.is_empty() {
            return Err(format!("node in {decl:?} has no name"));
        }
        if let Some(devs) = devs {
            if nodes.iter().any(|(n, _)| n == name) {
                return Err(format!("node {name} declared twice"));
            }
            let mut node = ClusterNode::device_node(name, vec![], link_latency_s);
            for spec in devs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if let Some(threads) = spec.strip_prefix("cpu:") {
                    let t: usize = threads
                        .parse()
                        .map_err(|_| format!("bad cpu thread count in {spec:?}"))?;
                    node = node.with_cpu(&format!("cpu-{t}t"), t);
                } else {
                    let d = DeviceCatalog::find(spec)
                        .ok_or_else(|| format!("unknown device {spec:?}"))?;
                    node.devices.push(crate::spec::GpuSlot { device: d });
                }
            }
            order.push(name.to_string());
            nodes.push((name.to_string(), node));
        } else if !nodes.iter().any(|(n, _)| n == name) {
            // Bare reference to an undeclared node: declare it empty.
            order.push(name.to_string());
            nodes.push((
                name.to_string(),
                ClusterNode::device_node(name, vec![], link_latency_s),
            ));
        }
        Ok(name.to_string())
    };

    for stmt in text.split(';').map(str::trim).filter(|s| !s.is_empty()) {
        let parts: Vec<&str> = stmt.split("->").collect();
        let mut prev: Option<String> = None;
        for part in parts {
            let name = declare(part, &mut order, &mut nodes)?;
            if let Some(p) = prev {
                edges.push((p, name.clone()));
            }
            prev = Some(name);
        }
    }
    if nodes.is_empty() {
        return Err("no nodes declared".into());
    }

    // Validate edges: no duplicate parents, no cycles (a child appears as
    // a child at most once; the root has no parent).
    let root_name = order[0].clone();
    let mut parent_of: Vec<(String, String)> = Vec::new();
    for (p, c) in &edges {
        if c == &root_name {
            return Err(format!("the root {root_name} cannot be a child"));
        }
        if parent_of.iter().any(|(child, _)| child == c) {
            return Err(format!("node {c} has two parents"));
        }
        if p == c {
            return Err(format!("self-edge on {p}"));
        }
        parent_of.push((c.clone(), p.clone()));
    }

    // Build the tree bottom-up: attach children in reverse declaration
    // order so every child is complete before its parent consumes it.
    let mut store: Vec<(String, Option<ClusterNode>)> =
        nodes.into_iter().map(|(n, node)| (n, Some(node))).collect();
    for child_name in order.iter().rev() {
        if let Some((_, parent_name)) = parent_of.iter().find(|(c, _)| c == child_name) {
            let child = store
                .iter_mut()
                .find(|(n, _)| n == child_name)
                .and_then(|(_, slot)| slot.take())
                .ok_or_else(|| format!("node {child_name} used twice in the tree"))?;
            let parent = store
                .iter_mut()
                .find(|(n, _)| n == parent_name)
                .ok_or_else(|| format!("unknown parent {parent_name}"))?;
            match parent.1.as_mut() {
                Some(p) => p.children.push(child),
                None => return Err(format!("parent {parent_name} already consumed (cycle?)")),
            }
        }
    }
    let root = store
        .iter_mut()
        .find(|(n, _)| n == &root_name)
        .and_then(|(_, slot)| slot.take())
        .ok_or("root was consumed — the topology contains a cycle")?;
    // Orphans (declared but never attached and not the root) are an error:
    // silently dropping devices would falsify the efficiency math.
    let orphans: Vec<&String> = store
        .iter()
        .filter(|(n, slot)| slot.is_some() && *n != root_name)
        .map(|(n, _)| n)
        .collect();
    if !orphans.is_empty() {
        return Err(format!("nodes not connected to the root: {orphans:?}"));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_network() {
        let net = parse_topology(
            "A(540M) -> B(660, 550Ti); C(8600M) -> D(8800); A -> C",
            2e-3,
        )
        .unwrap();
        let reference = crate::spec::paper_network(2e-3);
        assert_eq!(net.node_count(), reference.node_count());
        assert_eq!(net.all_devices().len(), 5);
        assert_eq!(net.find("B").unwrap().devices.len(), 2);
        assert_eq!(net.find("C").unwrap().children[0].name, "D");
    }

    #[test]
    fn inline_chains_work() {
        let net = parse_topology("root(660) -> mid(550Ti) -> leaf(8800)", 1e-3).unwrap();
        assert_eq!(net.depth(), 3);
        assert_eq!(net.all_devices().len(), 3);
    }

    #[test]
    fn cpu_workers_parse() {
        let net = parse_topology("box(660, cpu:8)", 0.0).unwrap();
        assert_eq!(net.devices.len(), 1);
        assert_eq!(net.cpus.len(), 1);
        assert_eq!(net.cpus[0].threads, 8);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_topology("", 0.0).is_err(), "empty");
        assert!(parse_topology("A(nonexistent-gpu)", 0.0).is_err(), "unknown device");
        assert!(parse_topology("A(660); B(660); A -> B; A -> B", 0.0).is_err(), "two parents");
        assert!(parse_topology("A(660) -> A", 0.0).is_err(), "self edge");
        assert!(parse_topology("A(660); B(660) -> A", 0.0).is_err(), "root as child");
        assert!(parse_topology("A(660); B(660)", 0.0).is_err(), "orphan");
        assert!(parse_topology("A(660", 0.0).is_err(), "unclosed paren");
        assert!(parse_topology("A(660); A(550Ti)", 0.0).is_err(), "duplicate");
        assert!(parse_topology("box(cpu:lots)", 0.0).is_err(), "bad cpu count");
    }

    #[test]
    fn parsed_topology_simulates() {
        use crate::des::{simulate_search, SimParams};
        let net = parse_topology("A(660) -> B(550Ti, 540M)", 2e-3).unwrap();
        let r = simulate_search(
            &net,
            eks_kernels::Tool::OurApproach,
            eks_hashes::HashAlgo::Md5,
            1e10,
            SimParams::default(),
        );
        assert!(r.parallel_efficiency() > 0.8);
        assert_eq!(r.device_busy.len(), 3);
    }
}
