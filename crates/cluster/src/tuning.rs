//! The tuning step (Section III): estimate each device's peak throughput
//! `X_j` and the minimum candidate count `n_j` for a target efficiency.
//!
//! Two models are provided:
//!
//! * [`AchievedModel::CycleSim`] runs the scoreboard simulator on the
//!   device's architecture — the "measurement" of our reproduction;
//! * [`AchievedModel::Analytic`] applies the paper's own reasoning in
//!   closed form (no-SFU serialization on cc 1.x, the single-issue
//!   32-lane bound on cc 2.1, ≈ 99.5 % of the shift-port bound on
//!   Kepler) — cheap enough for property tests and the DES.

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::lower;
use eks_gpusim::device::Device;
use eks_gpusim::grid::min_keys_for_efficiency;
use eks_gpusim::sched::{simulate, SimConfig};
use eks_gpusim::throughput::{mp_hashes_per_cycle, mp_hashes_per_cycle_sm1x_no_sfu};
use eks_hashes::HashAlgo;
use eks_kernels::{Tool, ToolKernel};

/// How achieved throughput is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AchievedModel {
    /// Run the cycle-level scoreboard simulator (slower, more faithful).
    CycleSim,
    /// Closed-form model of the paper's Section VI observations.
    Analytic,
}

/// Result of tuning one device for one tool/algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// Theoretical peak, MKey/s (Table VIII "theoretical" row).
    pub theoretical_mkeys: f64,
    /// Achieved throughput, MKey/s (Table VIII "our approach" row).
    pub achieved_mkeys: f64,
    /// Minimum batch for the target efficiency (the paper's `n_j`).
    pub min_batch: u128,
}

impl Tuning {
    /// Achieved over theoretical.
    pub fn efficiency(&self) -> f64 {
        self.achieved_mkeys / self.theoretical_mkeys
    }
}

/// Per-launch fixed overhead used to derive `n_j` (driver + grid ramp-up,
/// a fraction of a millisecond on the paper's LAN-attached boxes).
pub const LAUNCH_OVERHEAD_MS: f64 = 0.2;

/// Target efficiency the tuning step aims for when sizing `n_j`.
pub const TARGET_EFFICIENCY: f64 = 0.99;

/// Tune a device for a tool and hash algorithm.
pub fn tune_device(device: &Device, tool: Tool, algo: HashAlgo, model: AchievedModel) -> Tuning {
    let key = (device.cc, tool, algo, model);
    // Per-(cc, tool, algo, model) cache of per-MP-per-cycle rates: devices
    // sharing an architecture only differ by MP count and clock.
    type RateKey = (ComputeCapability, Tool, HashAlgo, AchievedModel);
    static CACHE: OnceLock<Mutex<HashMap<RateKey, (f64, f64)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let (theo_per_mp_cycle, achieved_per_mp_cycle) = {
        let hit = cache.lock().expect("cache lock").get(&key).copied();
        match hit {
            Some(v) => v,
            None => {
                let v = rates_per_mp_cycle(device.cc, tool, algo, model);
                cache.lock().expect("cache lock").insert(key, v);
                v
            }
        }
    };
    // An iterated KDF runs the base kernel `cost_factor` times per key
    // on average, so the keys/s rates scale down by that factor (the
    // kernel itself is the base hash's — see `ToolKernel::build`).
    let scale = device.mp_count as f64 * device.clock_hz() / 1e6 / algo.cost_factor();
    let theoretical = theo_per_mp_cycle * scale;
    let achieved = achieved_per_mp_cycle * scale;
    let min_batch = min_keys_for_efficiency(TARGET_EFFICIENCY, achieved, LAUNCH_OVERHEAD_MS);
    Tuning { theoretical_mkeys: theoretical, achieved_mkeys: achieved, min_batch }
}

/// (theoretical, achieved) hashes per cycle per multiprocessor.
fn rates_per_mp_cycle(
    cc: ComputeCapability,
    tool: Tool,
    algo: HashAlgo,
    model: AchievedModel,
) -> (f64, f64) {
    let tk = ToolKernel::build(tool, algo, cc);
    let compiled = lower(&tk.ir, tk.options);
    let kpi = compiled.keys_per_iteration as f64;
    let theo = mp_hashes_per_cycle(cc, &compiled.counts) * kpi;
    let achieved = match model {
        AchievedModel::CycleSim => {
            let cfg = SimConfig::for_cc(cc);
            let r = simulate(&compiled, cfg);
            r.keys_per_cycle()
        }
        AchievedModel::Analytic => analytic_achieved(cc, &compiled.counts) * kpi,
    };
    (theo, achieved)
}

/// Closed-form achieved model per Section VI:
/// * cc 1.x — no ILP, so no SFU co-issue: everything serializes at
///   8 lanes/cycle;
/// * cc 2.0/2.1 — single-issue bound: `schedulers × 16` lanes/cycle over
///   the total instruction count;
/// * cc 3.0/3.5 — the port bound is reachable without ILP (single issue
///   from 4 schedulers covers it): ≈ 99.5 % of theoretical.
fn analytic_achieved(cc: ComputeCapability, counts: &eks_gpusim::codegen::InstrCounts) -> f64 {
    match cc {
        ComputeCapability::Sm1x => mp_hashes_per_cycle_sm1x_no_sfu(counts),
        ComputeCapability::Sm20 | ComputeCapability::Sm21 => {
            let spec = cc.mp_spec();
            let lanes = (spec.warp_schedulers * spec.group_size) as f64;
            (lanes / counts.total() as f64).min(mp_hashes_per_cycle(cc, counts))
        }
        ComputeCapability::Sm30 | ComputeCapability::Sm35 => {
            0.9946 * mp_hashes_per_cycle(cc, counts)
        }
    }
}

/// Measure a CPU worker's real throughput for `algo` with `threads`
/// workers: a short timed sweep over an interval with no possible hit.
/// Cached per (threads, algo) for the lifetime of the process.
pub fn measure_cpu_mkeys(threads: usize, algo: HashAlgo) -> f64 {
    use eks_cracker::{crack_parallel, ParallelConfig, TargetSet};
    use eks_keyspace::{Charset, Interval, KeySpace, Order};

    static CPU_CACHE: OnceLock<Mutex<HashMap<(usize, HashAlgo), f64>>> = OnceLock::new();
    let cache = CPU_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(v) = cache.lock().expect("cpu cache").get(&(threads, algo)) {
        return *v;
    }
    let space = KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest)
        .expect("static space");
    let impossible = TargetSet::new(algo, &[vec![0u8; algo.digest_len()]]);
    let report = crack_parallel(
        &space,
        &impossible,
        Interval::new(0, 300_000),
        ParallelConfig { threads, chunk: 1 << 12, first_hit_only: false, ..Default::default() },
    );
    let mkeys = report.mkeys_per_s.max(0.01);
    cache.lock().expect("cpu cache").insert((threads, algo), mkeys);
    mkeys
}

/// Tune a CPU worker: measured rate plus the minimum batch for the
/// target efficiency (no kernel-launch overhead, only thread wakeups —
/// modeled at a tenth of the GPU launch cost).
pub fn tune_cpu(worker: &crate::spec::CpuWorker, algo: HashAlgo) -> Tuning {
    let mkeys = measure_cpu_mkeys(worker.threads, algo);
    let min_batch = min_keys_for_efficiency(TARGET_EFFICIENCY, mkeys, LAUNCH_OVERHEAD_MS / 10.0);
    Tuning { theoretical_mkeys: mkeys, achieved_mkeys: mkeys, min_batch }
}

/// Convenience: tune every device of a list (used by benches and the DES).
pub fn tune_devices(
    devices: &[Device],
    tool: Tool,
    algo: HashAlgo,
    model: AchievedModel,
) -> Vec<Tuning> {
    devices.iter().map(|d| tune_device(d, tool, algo, model)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_gpusim::device::DeviceCatalog;

    /// Paper Table VIII, MD5: (device pattern, theoretical, achieved).
    const TABLE8_MD5: [(&str, f64, f64); 5] = [
        ("8600M", 83.0, 71.0),
        ("8800", 568.0, 480.0),
        ("540M", 359.4, 214.0),
        ("550", 962.7, 654.0),
        ("660", 1851.0, 1841.0),
    ];

    #[test]
    fn md5_theoretical_matches_table8_within_three_percent() {
        for (pat, theo, _) in TABLE8_MD5 {
            let d = DeviceCatalog::find(pat).unwrap();
            let t = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
            let rel = (t.theoretical_mkeys - theo).abs() / theo;
            assert!(rel < 0.03, "{pat}: ours {} vs paper {theo}", t.theoretical_mkeys);
        }
    }

    #[test]
    fn md5_achieved_matches_table8_within_fifteen_percent() {
        for (pat, _, ach) in TABLE8_MD5 {
            let d = DeviceCatalog::find(pat).unwrap();
            let t = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
            let rel = (t.achieved_mkeys - ach).abs() / ach;
            assert!(rel < 0.15, "{pat}: ours {} vs paper {ach}", t.achieved_mkeys);
        }
    }

    #[test]
    fn kepler_achieves_nearly_theoretical() {
        let d = DeviceCatalog::find("660").unwrap();
        let t = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
        assert!(t.efficiency() > 0.99, "paper reports 99.46 %");
    }

    #[test]
    fn fermi_leaves_a_third_of_lanes_idle() {
        let d = DeviceCatalog::find("550").unwrap();
        let t = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
        assert!(t.efficiency() > 0.55 && t.efficiency() < 0.75, "eff {}", t.efficiency());
    }

    #[test]
    fn cycle_sim_agrees_with_analytic_model() {
        // The scoreboard simulator should land near the closed form on
        // every architecture class (within 15 %).
        for pat in ["8800", "550", "660"] {
            let d = DeviceCatalog::find(pat).unwrap();
            let a = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
            let s = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::CycleSim);
            let rel = (s.achieved_mkeys - a.achieved_mkeys).abs() / a.achieved_mkeys;
            assert!(
                rel < 0.15,
                "{pat}: sim {} vs analytic {}",
                s.achieved_mkeys,
                a.achieved_mkeys
            );
        }
    }

    #[test]
    fn sha1_is_slower_than_md5_everywhere() {
        for pat in ["8600M", "8800", "540M", "550", "660"] {
            let d = DeviceCatalog::find(pat).unwrap();
            let md5 = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
            let sha = tune_device(&d, Tool::OurApproach, HashAlgo::Sha1, AchievedModel::Analytic);
            assert!(sha.achieved_mkeys < md5.achieved_mkeys, "{pat}");
        }
    }

    #[test]
    fn iterated_md5_tunes_slower_by_its_cost_factor() {
        let d = DeviceCatalog::find("660").unwrap();
        let base = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
        let algo = HashAlgo::Md5Iter { iters: 9 };
        let t = tune_device(&d, Tool::OurApproach, algo, AchievedModel::Analytic);
        let rel =
            (t.achieved_mkeys * algo.cost_factor() - base.achieved_mkeys).abs() / base.achieved_mkeys;
        assert!(rel < 1e-9, "iterated rate should be base / cost_factor, got {t:?} vs {base:?}");
    }

    #[test]
    fn min_batch_scales_with_throughput() {
        let slow = DeviceCatalog::find("8600M").unwrap();
        let fast = DeviceCatalog::find("660").unwrap();
        let ts = tune_device(&slow, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
        let tf = tune_device(&fast, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
        assert!(tf.min_batch > ts.min_batch);
        assert!(ts.min_batch > 0);
    }
}
