//! Multi-tenant cluster entry points: a whole spool of jobs over one
//! dispatch tree.
//!
//! [`plan_job_fleet`] walks the cluster exactly as the runtime's scatter
//! planning does — one leaf executor per simulated GPU and per CPU
//! worker thread, weighted by tuned throughput (`N_j = N_max · X_j /
//! X_max`) — but instead of pre-assigning one search's interval it
//! yields a persistent [`Fleet`] the job service leases keyspace onto,
//! round after round. [`run_cluster_jobs`] drives the service until the
//! spool drains; [`run_dynamic_jobs`] interleaves membership events
//! between fair-share rounds, so a node joining or leaving the network
//! interacts correctly with lease reassignment: membership only changes
//! *between* leases, every lease re-scatters over the then-current
//! members, and coverage accounting lives in the job records — a leaver
//! never takes assigned-but-unscanned keys with it.

use eks_cracker::AutoBackend;
use eks_engine::Backend;
use eks_hashes::HashAlgo;
use eks_jobs::{Fleet, FleetMember, JobError, JobId, JobService};
use eks_telemetry::{names, Telemetry};

use crate::simgpu::SimKernelBackend;
use crate::spec::ClusterNode;
use crate::tuning::tune_cpu;

/// Build the shared job fleet from a cluster description: one member
/// per simulated GPU (label `node/device [simgpu]`) and one per CPU
/// worker thread (all threads of a worker share the `node/cpu
/// [auto:choice]` label, so their credits accumulate per device exactly
/// as in the single-search runtime). Weights are tuned rates for
/// `algo`, the fleet's *reference* algorithm — jobs hashing something
/// else still scan correctly, and stealing absorbs the rate skew.
pub fn plan_job_fleet(root: &ClusterNode, algo: HashAlgo, telemetry: &Telemetry) -> Fleet {
    let mut members = Vec::new();
    collect_members(root, algo, telemetry, &mut members);
    Fleet::new(members)
}

fn collect_members(
    node: &ClusterNode,
    algo: HashAlgo,
    telemetry: &Telemetry,
    out: &mut Vec<FleetMember>,
) {
    for slot in &node.devices {
        let backend = SimKernelBackend::new(slot.device.clone());
        let weight = backend.tuned_rate(algo);
        let label = format!("{}/{} [{}]", node.name, slot.device.name, backend.name());
        if telemetry.is_enabled() {
            telemetry.gauge(names::DEVICE_RATE_MKEYS, &[("device", &label)]).set(weight);
        }
        out.push(FleetMember { label, weight, backend: Box::new(backend) });
    }
    for cpu in &node.cpus {
        let rate = tune_cpu(cpu, algo).achieved_mkeys;
        let backend = AutoBackend::new(telemetry.clone());
        let choice = backend.choice_name(algo);
        let label = format!("{}/{} [auto:{}]", node.name, cpu.name, choice);
        if telemetry.is_enabled() {
            telemetry.gauge(names::DEVICE_RATE_MKEYS, &[("device", &label)]).set(rate);
        }
        // Each thread is its own fleet member (its own deque slot) with
        // an equal slice of the worker's tuned rate; the shared label
        // keeps accounting per device rather than per thread.
        let per_thread = rate / cpu.threads.max(1) as f64;
        let mut backends: Vec<Box<dyn Backend>> = vec![Box::new(backend)];
        for _ in 1..cpu.threads {
            backends.push(Box::new(AutoBackend::new(telemetry.clone())));
        }
        for b in backends {
            out.push(FleetMember { label: label.clone(), weight: per_thread, backend: b });
        }
    }
    for child in &node.children {
        collect_members(child, algo, telemetry, out);
    }
}

/// Plan the fleet and drive the service's fair-share rounds until no
/// runnable job has work left. Returns the number of non-idle rounds.
///
/// # Panics
/// Panics when the cluster holds no device and no CPU worker.
pub fn run_cluster_jobs(
    root: &ClusterNode,
    service: &JobService,
    algo: HashAlgo,
) -> Result<u64, JobError> {
    let fleet = plan_job_fleet(root, algo, service.telemetry());
    service.run_until_idle(&fleet)
}

/// A fleet membership change during a multi-job run.
pub enum FleetEvent {
    /// A device (or remote node's executor) joins the fleet.
    Join {
        /// The joining member.
        member: FleetMember,
    },
    /// The member carrying this label leaves the fleet.
    Leave {
        /// Label of the leaver.
        label: String,
    },
}

/// A [`FleetEvent`] scheduled before a given fair-share round.
pub struct ScheduledFleetEvent {
    /// The event fires before this round index (0-based).
    pub before_round: u64,
    /// What happens.
    pub event: FleetEvent,
}

/// What a multi-job run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiJobReport {
    /// Fair-share rounds that dispatched at least one lease.
    pub rounds: u64,
    /// Rounds preceded by at least one applied membership change.
    pub rebalances: u64,
    /// Keys scanned across all jobs and rounds.
    pub scanned: u128,
    /// Jobs that reached `Completed`, in completion order.
    pub completed: Vec<JobId>,
}

/// Drive fair-share rounds over a mutable fleet, applying scheduled
/// join/leave events between rounds, until no runnable job has work
/// left.
///
/// Lease reassignment across jobs is automatic: a lease taken after the
/// event re-scatters over the then-current members, and a leaver's
/// unfinished coverage never existed — the job frontier only retires
/// intervals whose dispatch actually completed. A leave that would
/// empty the fleet is refused (the remaining member keeps scanning);
/// re-joining a label simply adds a member back.
pub fn run_dynamic_jobs(
    mut fleet: Fleet,
    service: &JobService,
    events: Vec<ScheduledFleetEvent>,
) -> Result<MultiJobReport, JobError> {
    let telemetry = service.telemetry().clone();
    let rebalance_counter = telemetry.counter(names::REBALANCES, &[]);
    let mut events = events;
    let mut report =
        MultiJobReport { rounds: 0, rebalances: 0, scanned: 0, completed: Vec::new() };
    loop {
        let round = report.rounds;
        let mut changed = false;
        let mut rest = Vec::with_capacity(events.len());
        for scheduled in events {
            if scheduled.before_round != round {
                rest.push(scheduled);
                continue;
            }
            match scheduled.event {
                FleetEvent::Join { member } => {
                    telemetry.event(names::EVENT_JOIN).field("member", &member.label).finish();
                    fleet.join(member);
                    changed = true;
                }
                FleetEvent::Leave { label } => {
                    if fleet.leave(&label) {
                        telemetry.event(names::EVENT_LEAVE).field("member", &label).finish();
                        changed = true;
                    }
                }
            }
        }
        events = rest;
        if changed {
            report.rebalances += 1;
            rebalance_counter.inc();
        }

        let r = service.round(&fleet)?;
        let idle = r.is_idle();
        report.scanned += r.scanned;
        report.completed.extend(r.completed);
        if idle {
            return Ok(report);
        }
        report.rounds += 1;
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use eks_gpusim::device::Device;
    use eks_jobs::{JobSpec, JobState, JobStore, ServiceConfig};
    use eks_keyspace::Order;
    use std::path::PathBuf;

    fn small_net() -> ClusterNode {
        ClusterNode::device_node("A", vec![Device::geforce_gtx_660()], 1e-3).with_cpu("cpu0", 2)
    }

    fn spec(name: &str, word: &[u8], priority: u32) -> JobSpec {
        JobSpec {
            name: name.into(),
            algo: HashAlgo::Md5,
            digest: HashAlgo::Md5.hash(word),
            charset: (b'a'..=b'z').collect(),
            min_len: 1,
            max_len: 3,
            order: Order::FirstCharFastest,
            priority,
            first_hit_only: false,
        }
    }

    /// |lowercase|^1 + ^2 + ^3.
    const SPACE: u128 = 26 + 26 * 26 + 26 * 26 * 26;

    fn tmp_spool(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eks-multijob-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn two_jobs_drain_over_the_cluster_fleet() {
        let dir = tmp_spool("static");
        let store = JobStore::open(&dir).unwrap();
        let a = store.submit(spec("a", b"cat", 1)).unwrap();
        let b = store.submit(spec("b", b"zzz", 1)).unwrap();
        let service = JobService::new(
            store,
            ServiceConfig { round_keys: 8192, ..ServiceConfig::default() },
        );
        let rounds = run_cluster_jobs(&small_net(), &service, HashAlgo::Md5).unwrap();
        assert!(rounds >= 2, "two jobs over {SPACE} keys need several rounds, got {rounds}");
        for (id, word) in [(a.id, &b"cat"[..]), (b.id, b"zzz")] {
            let rec = service.store().load(id).unwrap();
            assert_eq!(rec.state, JobState::Completed);
            assert_eq!(rec.tested, SPACE, "exactly-once coverage for {id}");
            assert!(rec.hits.iter().any(|h| h.key == word), "{id} found its key");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn membership_churn_between_rounds_loses_nothing() {
        let dir = tmp_spool("dynamic");
        let store = JobStore::open(&dir).unwrap();
        let a = store.submit(spec("a", b"dog", 1)).unwrap();
        let b = store.submit(spec("b", b"zzz", 2)).unwrap();
        let service = JobService::new(
            store,
            ServiceConfig { round_keys: 8192, ..ServiceConfig::default() },
        );
        let fleet = plan_job_fleet(&small_net(), HashAlgo::Md5, &Telemetry::disabled());
        let joiner = || {
            let backend = SimKernelBackend::new(Device::geforce_gtx_550_ti());
            let weight = backend.tuned_rate(HashAlgo::Md5);
            FleetMember { label: "B/gtx550ti [simgpu]".into(), weight, backend: Box::new(backend) }
        };
        let events = vec![
            ScheduledFleetEvent {
                before_round: 1,
                event: FleetEvent::Join { member: joiner() },
            },
            ScheduledFleetEvent {
                before_round: 3,
                event: FleetEvent::Leave { label: "B/gtx550ti [simgpu]".into() },
            },
        ];
        let report = run_dynamic_jobs(fleet, &service, events).unwrap();
        assert_eq!(report.rebalances, 2, "join and leave each rebalance");
        assert_eq!(report.scanned, 2 * SPACE, "both keyspaces scanned exactly once");
        assert_eq!(report.completed.len(), 2);
        for id in [a.id, b.id] {
            let rec = service.store().load(id).unwrap();
            assert_eq!(rec.state, JobState::Completed);
            assert_eq!(rec.tested, SPACE);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retuned_service_still_completes_with_exact_coverage() {
        let dir = tmp_spool("retune");
        let store = JobStore::open(&dir).unwrap();
        let a = store.submit(spec("a", b"cat", 1)).unwrap();
        let b = store.submit(spec("b", b"zzz", 2)).unwrap();
        let service = JobService::new(
            store,
            ServiceConfig { round_keys: 8192, retune: true, ..ServiceConfig::default() },
        );
        let rounds = run_cluster_jobs(&small_net(), &service, HashAlgo::Md5).unwrap();
        assert!(rounds >= 1);
        for (id, word) in [(a.id, &b"cat"[..]), (b.id, b"zzz")] {
            let rec = service.store().load(id).unwrap();
            assert_eq!(rec.state, JobState::Completed);
            assert_eq!(rec.tested, SPACE, "live-weight leases keep exactly-once for {id}");
            assert!(rec.hits.iter().any(|h| h.key == word), "{id} found its key");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leave_that_would_empty_the_fleet_is_refused() {
        let telemetry = Telemetry::disabled();
        let net = ClusterNode::device_node("A", vec![Device::geforce_gtx_660()], 1e-3);
        let mut fleet = plan_job_fleet(&net, HashAlgo::Md5, &telemetry);
        assert_eq!(fleet.len(), 1);
        let label = fleet.labels()[0].to_string();
        assert!(!fleet.leave(&label), "last member must stay");
        assert_eq!(fleet.len(), 1);
    }
}
