//! Simulated GPUs as first-class cluster devices: the [`Backend`] that
//! drives an `eks-kernels` kernel through the `eks-gpusim` IR.
//!
//! A [`SimKernelBackend`] wraps one simulated [`Device`] and plays the
//! role a CUDA context would on real hardware:
//!
//! * **Tuning** — `tuned_rate` is the device's achieved throughput from
//!   the paper's tuning step ([`tune_device`], analytic model), so the
//!   dispatcher assigns it `N_j = N_max · X_j / X_max` candidates just
//!   like any other worker.
//! * **Fidelity** — before bulk-scanning an interval, the backend builds
//!   the algorithm's *naive* kernel for each key length it encounters and
//!   executes the kernel IR (`KernelIr::evaluate`) on sampled candidates,
//!   checking the IR's digest against `eks-hashes`. A mismatch is a
//!   simulator or kernel-builder bug and panics loudly. Each
//!   `(algo, key length)` pair is verified once per process.
//! * **Bulk scan** — interpreting IR per candidate is ~10⁴× slower than
//!   hashing, so the throughput-bearing sweep runs on the 16-lane SIMD
//!   core, the CPU stand-in for a warp executing that same kernel (the
//!   lockstep structure is identical; the fidelity samples pin the
//!   semantics to the real IR).

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::collections::HashSet;
use std::sync::atomic::AtomicBool;
use std::sync::{Mutex, OnceLock};

use eks_cracker::batch::Lanes;
use eks_cracker::LaneBackend;
use eks_engine::{Backend, ScanMode, ScanReport, TargetSet};
use eks_gpusim::device::Device;
use eks_hashes::padding::{pad_md5_block, pad_sha_block};
use eks_hashes::HashAlgo;
use eks_keyspace::{Interval, Key, KeySpace};
use eks_gpusim::isa::{KernelIr, Reg};
use eks_kernels::md4::ntlm_words_for_key_len;
use eks_kernels::sha1::sha1_words_for_key_len;
use eks_kernels::{
    build_md4, build_md5, build_sha1, words_for_key_len, Md4Variant, Md5Variant, Sha1Variant,
    Tool, WordSource,
};

use crate::tuning::{tune_device, AchievedModel};

/// Candidates IR-executed per scan for the fidelity check.
const FIDELITY_SAMPLES: u128 = 3;

/// A simulated GPU device as an engine-layer backend.
#[derive(Debug, Clone)]
pub struct SimKernelBackend {
    device: Device,
    bulk: LaneBackend,
}

impl SimKernelBackend {
    /// A backend driving kernels on `device`.
    pub fn new(device: Device) -> Self {
        Self { device, bulk: LaneBackend::new(Lanes::L16) }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Backend for SimKernelBackend {
    fn name(&self) -> String {
        "simgpu".into()
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport {
        let clamped = interval.intersect(&space.interval());
        if !clamped.is_empty() {
            // Pin the scan's semantics to the real kernel IR on a few
            // sampled candidates before the lockstep bulk sweep.
            let step = (clamped.len / FIDELITY_SAMPLES).max(1);
            let mut id = clamped.start;
            while id < clamped.end() {
                verify_kernel_ir(targets.algo(), &space.key_at(id));
                id = match id.checked_add(step) {
                    Some(next) => next,
                    None => break,
                };
            }
        }
        self.bulk.scan(space, targets, interval, stop, mode)
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        tune_device(&self.device, Tool::OurApproach, algo, AchievedModel::Analytic).achieved_mkeys
    }
}

/// Execute a kernel's IR with a candidate's runtime words and return the
/// output-register values.
fn eval_ir(ir: &KernelIr, outputs: &[Reg], words: &[WordSource; 16], block: &[u32; 16]) -> Vec<u32> {
    let n_params = words.iter().filter(|s| matches!(s, WordSource::Param(_))).count();
    let regs = ir.evaluate(&block[..n_params]);
    outputs.iter().map(|r| regs[r.0 as usize]).collect()
}

/// Check the naive kernel IR digest for `key` against `eks-hashes`,
/// memoizing per `(algo, key length)` — the kernel is built per length,
/// so one verified candidate pins every candidate of that length.
///
/// # Panics
/// Panics when the kernel IR disagrees with the reference hash — that is
/// a kernel-builder or simulator bug, never a caller error.
fn verify_kernel_ir(algo: HashAlgo, key: &Key) {
    static VERIFIED: OnceLock<Mutex<HashSet<(HashAlgo, usize)>>> = OnceLock::new();
    let verified = VERIFIED.get_or_init(|| Mutex::new(HashSet::new()));
    let len = key.len();
    if verified.lock().expect("fidelity cache").contains(&(algo, len)) {
        return;
    }
    let got: Vec<u8> = match algo {
        HashAlgo::Md5 => {
            let words = words_for_key_len(len);
            let built = build_md5(Md5Variant::Naive, &words);
            let block = pad_md5_block(key.as_bytes());
            let state: [u32; 4] = eval_ir(&built.ir, &built.outputs, &words, &block)
                .try_into()
                .expect("MD5 outputs 4 words");
            eks_hashes::md5::state_to_digest(state).to_vec()
        }
        HashAlgo::Ntlm => {
            let words = ntlm_words_for_key_len(len);
            let built = build_md4(Md4Variant::Naive, &words);
            // NTLM hashes the UTF-16LE expansion of the password.
            let mut utf16 = Vec::with_capacity(len * 2);
            for &b in key.as_bytes() {
                utf16.push(b);
                utf16.push(0);
            }
            let block = pad_md5_block(&utf16);
            let state: [u32; 4] = eval_ir(&built.ir, &built.outputs, &words, &block)
                .try_into()
                .expect("MD4 outputs 4 words");
            // MD4 shares MD5's little-endian serialization.
            eks_hashes::md5::state_to_digest(state).to_vec()
        }
        HashAlgo::Sha1 => {
            let words = sha1_words_for_key_len(len);
            let built = build_sha1(Sha1Variant::Naive, &words);
            let block = pad_sha_block(key.as_bytes());
            let state: [u32; 5] = eval_ir(&built.ir, &built.outputs, &words, &block)
                .try_into()
                .expect("SHA-1 outputs 5 words");
            eks_hashes::sha1::state_to_digest(state).to_vec()
        }
        HashAlgo::Md5Iter { .. } => {
            // The device kernel is the base MD5 compression; the round
            // loop is driver code. Pin the first compression to the IR,
            // then chain the host-side rounds exactly as the driver
            // would.
            let words = words_for_key_len(len);
            let built = build_md5(Md5Variant::Naive, &words);
            let block = pad_md5_block(key.as_bytes());
            let state: [u32; 4] = eval_ir(&built.ir, &built.outputs, &words, &block)
                .try_into()
                .expect("MD5 outputs 4 words");
            let mut digest = eks_hashes::md5::state_to_digest(state);
            for _ in 1..algo.rounds_for(key.as_bytes()) {
                digest = eks_hashes::md5::md5_single_block(&digest);
            }
            digest.to_vec()
        }
    };
    let want = algo.hash(key.as_bytes());
    assert_eq!(
        got, want,
        "kernel IR fidelity failure: {algo:?} kernel for length-{len} keys disagrees with eks-hashes"
    );
    verified.lock().expect("fidelity cache").insert((algo, len));
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_cracker::ScalarBackend;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn backend() -> SimKernelBackend {
        SimKernelBackend::new(Device::geforce_gtx_660())
    }

    #[test]
    fn simgpu_matches_the_scalar_reference() {
        let s = space();
        for algo in [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm] {
            let ds: Vec<Vec<u8>> =
                [&b"a"[..], b"zz", b"cat", b"mnop"].iter().map(|w| algo.hash_long(w)).collect();
            let t = TargetSet::new(algo, &ds);
            let stop = AtomicBool::new(false);
            let want = ScalarBackend.scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
            let got = backend().scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
            assert_eq!(got.hits, want.hits, "{algo:?}");
            assert_eq!(got.tested, want.tested, "{algo:?}");
        }
    }

    #[test]
    fn kernel_ir_fidelity_holds_for_every_algo_and_length() {
        for algo in [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm] {
            for key in [&b"a"[..], b"ab", b"abc", b"dcba", b"qwert", b"zzzzzz"] {
                verify_kernel_ir(algo, &Key::from_bytes(key));
            }
        }
    }

    #[test]
    fn tuned_rate_comes_from_the_device_tuning_step() {
        let b = backend();
        let want = tune_device(
            &Device::geforce_gtx_660(),
            Tool::OurApproach,
            HashAlgo::Md5,
            AchievedModel::Analytic,
        )
        .achieved_mkeys;
        assert_eq!(b.tuned_rate(HashAlgo::Md5), want);
        assert!(want > 0.0);
    }

    #[test]
    fn faster_device_tunes_faster() {
        let fast = SimKernelBackend::new(Device::geforce_gtx_660());
        let slow = SimKernelBackend::new(Device::geforce_8600m_gt());
        assert!(fast.tuned_rate(HashAlgo::Md5) > slow.tuned_rate(HashAlgo::Md5));
    }

    #[test]
    fn backend_name_is_simgpu() {
        assert_eq!(backend().name(), "simgpu");
    }
}
