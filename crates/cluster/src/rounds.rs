//! A round-based threaded runtime: the paper's periodic scatter/gather
//! loop executed for real.
//!
//! Unlike [`crate::runtime`], which splits the whole interval once, this
//! master dispatches bounded rounds, gathers after each one, checks the
//! stop condition (first hit), and — when a worker is marked lost — leaves
//! its round assignment pending so a later round re-covers it. This is
//! the executable counterpart of the DES round model and of the fault
//! path; every identifier is still tested exactly once.

use std::sync::atomic::AtomicBool;

use eks_cracker::batch::{crack_interval_batched, Lanes};
use eks_cracker::resume::Checkpoint;
use eks_cracker::target::TargetSet;
use eks_keyspace::{Interval, Key, KeySpace};

use crate::spec::ClusterNode;
use crate::tuning::{tune_device, AchievedModel};
use eks_kernels::Tool;

/// Configuration of the round-based master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundConfig {
    /// Keys per dispatch round (across the whole cluster).
    pub round_keys: u128,
    /// Stop the search at the first hit.
    pub first_hit_only: bool,
    /// Drop (do not scan) the assignment of the named worker index every
    /// round — fault injection for tests; `None` in normal operation.
    pub lose_worker: Option<usize>,
}

/// Result of a round-based search.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Hits in identifier order.
    pub hits: Vec<(u128, Key, usize)>,
    /// Candidates tested.
    pub tested: u128,
    /// Dispatch rounds executed.
    pub rounds: u32,
    /// Keys requeued after lost workers.
    pub requeued: u128,
    /// Per-device `(label, tested)`.
    pub per_device: Vec<(String, u128)>,
}

/// Flatten the tree into weighted workers (the round master treats the
/// tree as its leaf multiset; hierarchy only matters for latency, which
/// real threads on one host do not exhibit).
fn workers(root: &ClusterNode, algo: eks_hashes::HashAlgo) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        for slot in &n.devices {
            let t = tune_device(&slot.device, Tool::OurApproach, algo, AchievedModel::Analytic);
            out.push((format!("{}/{}", n.name, slot.device.name), t.achieved_mkeys));
        }
        for cpu in &n.cpus {
            let t = crate::tuning::tune_cpu(cpu, algo);
            out.push((format!("{}/{}", n.name, cpu.name), t.achieved_mkeys));
        }
        stack.extend(n.children.iter());
    }
    out
}

/// Run a round-based search over `interval`.
///
/// # Panics
/// Panics when the cluster has no workers or `round_keys == 0`.
pub fn run_rounds(
    root: &ClusterNode,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    config: RoundConfig,
) -> RoundReport {
    assert!(config.round_keys > 0);
    let members = workers(root, targets.algo());
    assert!(!members.is_empty(), "cluster has no workers");
    let weights: Vec<f64> = members.iter().map(|(_, w)| *w).collect();

    let mut checkpoint = Checkpoint::new(interval.intersect(&space.interval()));
    let mut hits: Vec<(u128, Key, usize)> = Vec::new();
    let mut tested: u128 = 0;
    let mut requeued: u128 = 0;
    let mut rounds: u32 = 0;
    let mut per_device: Vec<(String, u128)> =
        members.iter().map(|(n, _)| (n.clone(), 0)).collect();
    let stop = AtomicBool::new(false);

    while let Some(round_iv) = checkpoint.take_work(config.round_keys) {
        rounds += 1;
        // Rotate the part→worker mapping every round so a persistently
        // silent worker cannot pin the same leading interval forever
        // (requeued work lands at the front of the next round); the split
        // weights rotate with it so each slice matches its worker's speed.
        let worker_of = |i: usize| (i + rounds as usize) % members.len();
        let rotated: Vec<f64> = (0..members.len()).map(|i| weights[worker_of(i)]).collect();
        let parts = round_iv.split_weighted(&rotated);
        // Scatter: one thread per worker; gather at the scope end.
        let mut results: Vec<Option<(usize, eks_cracker::CrackOutcome)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, part) in parts.iter().enumerate() {
                let part = *part;
                if Some(worker_of(i)) == config.lose_worker {
                    continue; // the worker went silent: nothing comes back
                }
                let stop = &stop;
                handles.push(scope.spawn(move || {
                    // Batched tested counts stay a contiguous prefix of the
                    // part, which checkpoint completion below relies on.
                    let out = crack_interval_batched(
                        space,
                        targets,
                        part,
                        stop,
                        config.first_hit_only,
                        Lanes::default(),
                    );
                    (i, out)
                }));
            }
            results = handles
                .into_iter()
                .map(|h| Some(h.join().expect("worker panicked")))
                .collect();
        });

        // Gather: account completed intervals; lost assignments stay
        // pending in the checkpoint and are re-dispatched next round.
        for (i, part) in parts.iter().enumerate() {
            let done = results
                .iter()
                .flatten()
                .find(|(wi, _)| *wi == i)
                .map(|(_, out)| out);
            match done {
                Some(out) => {
                    tested += out.tested;
                    per_device[worker_of(i)].1 += out.tested;
                    hits.extend(out.hits.iter().cloned());
                    // With first-hit cancellation a worker may stop early;
                    // only the scanned prefix counts as complete.
                    let scanned = Interval::new(part.start, out.tested.min(part.len));
                    checkpoint.complete(scanned);
                    // A cancelled worker (another thread hit first) leaves
                    // an unscanned suffix; with first-hit we stop anyway,
                    // but requeue keeps the accounting exact.
                    let rest =
                        Interval::new(part.start + scanned.len, part.len - scanned.len);
                    checkpoint.requeue(rest);
                }
                None => {
                    requeued += part.len;
                    checkpoint.requeue(*part);
                }
            }
        }

        if config.first_hit_only && !hits.is_empty() {
            break;
        }
    }

    hits.sort_by_key(|(id, _, _)| *id);
    if config.first_hit_only {
        hits.truncate(1);
    }
    RoundReport { hits, tested, rounds, requeued, per_device }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_network;
    use eks_hashes::HashAlgo;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn rounds_crack_and_stop_early() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"bcd"]);
        let r = run_rounds(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig { round_keys: 50_000, first_hit_only: true, lose_worker: None },
        );
        assert_eq!(r.hits[0].1.as_bytes(), b"bcd");
        assert!(r.tested < s.size(), "stopped before sweeping everything");
    }

    #[test]
    fn full_sweep_in_rounds_covers_exactly_once() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_rounds(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig { round_keys: 60_000, first_hit_only: false, lose_worker: None },
        );
        assert_eq!(r.tested, s.size());
        assert_eq!(r.hits.len(), 1);
        assert!(r.rounds >= (s.size() / 60_000) as u32);
    }

    #[test]
    fn lost_worker_assignments_are_requeued_and_recovered() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        // Worker 0 (the 540M) never reports; its share must be requeued
        // and eventually covered by later rounds... except it is lost
        // EVERY round, so coverage must still complete through the
        // checkpoint re-dispatch to OTHER positions? No: the split is
        // positional, so we lose position 0 of every round — the requeued
        // intervals land at the front of the next round and are re-split
        // across all positions, so they drain.
        let r = run_rounds(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig { round_keys: 60_000, first_hit_only: false, lose_worker: Some(0) },
        );
        assert_eq!(r.tested, s.size(), "lost work is eventually covered");
        assert!(r.requeued > 0);
        assert_eq!(r.hits.len(), 1, "the key in a once-lost interval is still found");
    }

    #[test]
    fn work_split_tracks_throughput() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_rounds(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig { round_keys: 100_000, first_hit_only: false, lose_worker: None },
        );
        let share = |pat: &str| {
            r.per_device
                .iter()
                .find(|(n, _)| n.contains(pat))
                .map(|(_, c)| *c)
                .expect("device present")
        };
        assert!(share("660") > 5 * share("8600M"));
    }
}
