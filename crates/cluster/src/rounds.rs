//! A round-based threaded runtime: the paper's periodic scatter/gather
//! loop executed for real.
//!
//! Unlike [`crate::runtime`], which splits the whole interval once, this
//! master dispatches bounded rounds, gathers after each one, checks the
//! stop condition (first hit), and — when a worker is marked lost — leaves
//! its round assignment pending so a later round re-covers it. This is
//! the executable counterpart of the DES round model and of the fault
//! path; every identifier is still tested exactly once.
//!
//! Workers are [`eks_engine::Backend`] leaves (a [`SimKernelBackend`] per
//! device, a [`LaneBackend`] per CPU worker) and every scan runs through
//! the one [`Dispatcher`] core, which owns the stop flag, the hit merge
//! and the per-device accounting; this module only keeps the round
//! bookkeeping the dispatcher does not know about: the [`Checkpoint`] of
//! un-covered intervals, the rotation, and the requeue counters.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_cracker::resume::Checkpoint;
use eks_cracker::target::TargetSet;
use eks_cracker::{LaneBackend, ObservedLaneBackend};
use eks_engine::{
    Backend, DequeLeaf, Dispatcher, IntervalDeques, RateBook, ScanMode, ScanReport, SchedOptions,
    SchedPolicy, WorkerId, WorkerStats,
};
use eks_keyspace::{Interval, Key, KeySpace};
use eks_telemetry::{names, Telemetry};

use crate::runtime::cluster_efficiency_pct;
use crate::simgpu::SimKernelBackend;
use crate::spec::ClusterNode;
use crate::tuning::tune_cpu;

/// Guided chunk floor inside a stealing round: one poll quantum.
const ROUND_CHUNK: u128 = eks_engine::POLL_CHUNK;

/// Configuration of the round-based master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundConfig {
    /// Keys per dispatch round (across the whole cluster).
    pub round_keys: u128,
    /// Stop the search at the first hit.
    pub first_hit_only: bool,
    /// Drop (do not scan) the assignment of the named worker index every
    /// round — fault injection for tests; `None` in normal operation.
    pub lose_worker: Option<usize>,
    /// How workers are scheduled *within* a round:
    /// [`SchedPolicy::Static`] keeps the classic one-scan-per-assignment
    /// shape, the stealing policies let drained workers rebalance the
    /// round's remaining intervals.
    pub sched: SchedPolicy,
    /// Feed each round's observed per-worker throughput back into the
    /// next round's scatter weights (closed-loop balancing, gated by
    /// the estimator warm-up). Off, every round splits by the frozen
    /// tuned rates — byte-identical to the pre-retune accounting.
    pub retune: bool,
}

/// Result of a round-based search.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Hits in identifier order.
    pub hits: Vec<(u128, Key, usize)>,
    /// Candidates tested.
    pub tested: u128,
    /// Dispatch rounds executed.
    pub rounds: u32,
    /// Keys requeued after lost workers.
    pub requeued: u128,
    /// Per-device `(label, tested)`.
    pub per_device: Vec<(String, u128)>,
    /// Full per-device scheduler stats, same order as `per_device`.
    pub stats: Vec<WorkerStats>,
}

/// A flattened cluster worker: its display label, tuned weight, and the
/// backend that executes its assignments.
struct Member {
    label: String,
    weight: f64,
    backend: Box<dyn Backend>,
}

/// Flatten the tree into weighted workers (the round master treats the
/// tree as its leaf multiset; hierarchy only matters for latency, which
/// real threads on one host do not exhibit).
fn members(root: &ClusterNode, algo: eks_hashes::HashAlgo, telemetry: &Telemetry) -> Vec<Member> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        for slot in &n.devices {
            let backend = SimKernelBackend::new(slot.device.clone());
            out.push(Member {
                label: format!("{}/{} [{}]", n.name, slot.device.name, backend.name()),
                weight: backend.tuned_rate(algo),
                backend: Box::new(backend),
            });
        }
        for cpu in &n.cpus {
            let lanes = LaneBackend::default();
            // The observed batch path routes fill/hash timing and
            // prefilter counters into the shared registry.
            let backend: Box<dyn Backend> = if telemetry.is_enabled() {
                Box::new(ObservedLaneBackend::new(lanes.lanes, telemetry.clone()))
            } else {
                Box::new(lanes)
            };
            out.push(Member {
                label: format!("{}/{} [{}]", n.name, cpu.name, lanes.name()),
                weight: tune_cpu(cpu, algo).achieved_mkeys,
                backend,
            });
        }
        stack.extend(n.children.iter());
    }
    out
}

/// Run a round-based search over `interval`.
///
/// # Panics
/// Panics when the cluster has no workers or `round_keys == 0`.
pub fn run_rounds(
    root: &ClusterNode,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    config: RoundConfig,
) -> RoundReport {
    run_rounds_observed(root, space, targets, interval, config, &Telemetry::disabled())
}

/// [`run_rounds`] with telemetry attached: every dispatch round runs
/// under a [`names::SPAN_ROUND`] span and bumps the
/// [`names::ROUNDS`] counter, every member publishes its tuned rate,
/// and the final whole-network efficiency lands in the
/// [`names::CLUSTER_EFFICIENCY_PCT`] gauge.
///
/// # Panics
/// Panics when the cluster has no workers or `round_keys == 0`.
pub fn run_rounds_observed(
    root: &ClusterNode,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    config: RoundConfig,
    telemetry: &Telemetry,
) -> RoundReport {
    assert!(config.round_keys > 0);
    let members = members(root, targets.algo(), telemetry);
    assert!(!members.is_empty(), "cluster has no workers");
    let weights: Vec<f64> = members.iter().map(|m| m.weight).collect();
    // The feedback ledger: one estimator per member, seeded with the
    // tuned rate so cold rounds split exactly as before. `None` when
    // retuning is off — the frozen-weight path stays untouched.
    let rates = config.retune.then(|| RateBook::new(weights.clone()));
    // Baseline for diffing the dispatcher's cumulative per-worker stats
    // into per-round observations (stealing rounds credit busy time at
    // the scheduler level, not per scan).
    let mut seen: Vec<(u128, u64)> = vec![(0, 0); members.len()];
    if telemetry.is_enabled() {
        for m in &members {
            telemetry.gauge(names::DEVICE_RATE_MKEYS, &[("device", &m.label)]).set(m.weight);
        }
    }
    let rounds_counter = telemetry.counter(names::ROUNDS, &[]);

    let dispatcher = Dispatcher::new(space, targets, ScanMode::from_first_hit(config.first_hit_only))
        .with_telemetry(telemetry.clone());
    let ids: Vec<WorkerId> = members.iter().map(|m| dispatcher.register(&m.label)).collect();

    let mut checkpoint = Checkpoint::new(interval.intersect(&space.interval()));
    let mut requeued: u128 = 0;
    let mut rounds: u32 = 0;

    while let Some(round_iv) = checkpoint.take_work(config.round_keys) {
        rounds += 1;
        rounds_counter.inc();
        // Dropped at the end of this iteration (also on `continue` and
        // `break`), so the span covers scatter, scan, and gather.
        let _round_span =
            telemetry.span(names::SPAN_ROUND).field("round", rounds).field("keys", round_iv.len);
        // Rotate the part→worker mapping every round so a persistently
        // silent worker cannot pin the same leading interval forever
        // (requeued work lands at the front of the next round); the split
        // weights rotate with it so each slice matches its worker's speed.
        let worker_of = |i: usize| (i + rounds as usize) % members.len();
        // Closed loop: once estimators are warm the scatter proportions
        // follow the *observed* rates instead of the tuning step's
        // frozen figures (the paper's `N_j = N_max · X_j / X_max` with
        // a live `X_j`).
        let live: Vec<f64> = rates.as_ref().map_or_else(|| weights.clone(), RateBook::weights);
        let rotated: Vec<f64> = (0..members.len()).map(|i| live[worker_of(i)]).collect();
        let parts = round_iv.split_weighted(&rotated);

        // A lost worker's assignment goes straight back to the
        // checkpoint: it stays pending and is re-dispatched next round.
        let mut live: Vec<usize> = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            if Some(worker_of(i)) == config.lose_worker {
                requeued += part.len;
                checkpoint.requeue(*part);
            } else {
                live.push(i);
            }
        }

        if config.sched.steals() {
            // Stealing round: every live assignment becomes an interval
            // deque its worker owns; drained workers rebalance the
            // round's tail instead of idling at the gather barrier.
            if !live.is_empty() {
                let deques =
                    IntervalDeques::assign(live.iter().map(|&i| parts[i]).collect());
                let leaves: Vec<DequeLeaf<'_>> = live
                    .iter()
                    .map(|&i| DequeLeaf {
                        worker: ids[worker_of(i)],
                        backend: members[worker_of(i)].backend.as_ref(),
                    })
                    .collect();
                dispatcher.run_deques(
                    &leaves,
                    &deques,
                    SchedOptions::for_policy(config.sched, ROUND_CHUNK),
                );
                if let Some(book) = &rates {
                    observe_stat_deltas(book, &dispatcher.worker_stats(), &mut seen);
                    publish_rates(telemetry, book, &members);
                }
                if config.first_hit_only && dispatcher.any_hits() {
                    break; // the search ends here; no completion bookkeeping needed
                }
                // An uncancelled round drains every deque: the live
                // assignments are fully covered (moves never duplicate).
                for &i in &live {
                    checkpoint.complete(parts[i]);
                }
            }
            // Round boundary: let an attached live plane close a window
            // and run its anomaly pass over this round's deltas.
            telemetry.observe_plane();
            continue;
        }

        // Static round: one scan per assignment; the dispatcher gathers
        // hits and accounting as each scan merges, the scope gathers the
        // reports the checkpoint needs.
        let mut results: Vec<(usize, ScanReport, u64)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &i in &live {
                let part = parts[i];
                let member = &members[worker_of(i)];
                let id = ids[worker_of(i)];
                let dispatcher = &dispatcher;
                handles.push(scope.spawn(move || {
                    // Tested counts stay a contiguous prefix of the part,
                    // which checkpoint completion below relies on. The
                    // wall time of the whole assignment is this round's
                    // rate observation for the member.
                    let t0 = std::time::Instant::now();
                    let out = dispatcher.scan_as(id, member.backend.as_ref(), part);
                    (i, out, t0.elapsed().as_nanos() as u64)
                }));
            }
            results =
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        });

        // Gather: account completed intervals and feed the estimators.
        for (i, out, elapsed_ns) in &results {
            if let Some(book) = &rates {
                book.observe(worker_of(*i), out.tested, *elapsed_ns);
            }
            let part = &parts[*i];
            // With first-hit cancellation a worker may stop early; only
            // the scanned prefix counts as complete.
            let scanned = Interval::new(part.start, out.tested.min(part.len));
            checkpoint.complete(scanned);
            // A cancelled worker (another thread hit first) leaves an
            // unscanned suffix; with first-hit we stop anyway, but
            // requeue keeps the accounting exact.
            let rest = Interval::new(part.start + scanned.len, part.len - scanned.len);
            checkpoint.requeue(rest);
        }
        if let Some(book) = &rates {
            publish_rates(telemetry, book, &members);
        }
        // Round boundary: let an attached live plane close a window and
        // run its anomaly pass over this round's deltas.
        telemetry.observe_plane();

        if config.first_hit_only && dispatcher.any_hits() {
            break;
        }
    }

    let merge = telemetry.span(names::SPAN_MERGE);
    let report = dispatcher.finish();
    merge.field("hits", report.hits.len()).finish();
    if telemetry.is_enabled() {
        telemetry
            .gauge(names::CLUSTER_EFFICIENCY_PCT, &[])
            .set(cluster_efficiency_pct(&report.stats));
    }
    RoundReport {
        hits: report.hits,
        tested: report.tested,
        rounds,
        requeued,
        per_device: report.per_worker,
        stats: report.stats,
    }
}

/// Diff a cumulative per-worker stats snapshot against `seen` and feed
/// each worker's `(tested, busy)` delta into its estimator. Stealing
/// rounds credit busy time when each leaf's run loop exits, so this is
/// exactly one observation per member per round.
fn observe_stat_deltas(book: &RateBook, stats: &[WorkerStats], seen: &mut [(u128, u64)]) {
    for (slot, st) in stats.iter().enumerate() {
        let Some(prev) = seen.get_mut(slot) else { continue };
        book.observe(slot, st.tested.saturating_sub(prev.0), st.busy_ns.saturating_sub(prev.1));
        *prev = (st.tested, st.busy_ns);
    }
}

/// Publish the live/tuned gauge pair for every member — the feedstock
/// of the rate-drift column in `eks report`.
fn publish_rates(telemetry: &Telemetry, book: &RateBook, members: &[Member]) {
    if !telemetry.is_enabled() {
        return;
    }
    for (slot, m) in members.iter().enumerate() {
        let labels = [("worker", m.label.as_str())];
        telemetry.gauge(names::WORKER_RATE_EST, &labels).set(book.mkeys(slot));
        telemetry.gauge(names::WORKER_RATE_TUNED, &labels).set(book.tuned_mkeys(slot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_network;
    use eks_hashes::HashAlgo;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn rounds_crack_and_stop_early() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"bcd"]);
        let r = run_rounds(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig { round_keys: 50_000, first_hit_only: true, lose_worker: None, sched: SchedPolicy::Static, retune: false },
        );
        assert_eq!(r.hits[0].1.as_bytes(), b"bcd");
        assert!(r.tested < s.size(), "stopped before sweeping everything");
    }

    #[test]
    fn full_sweep_in_rounds_covers_exactly_once() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_rounds(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig { round_keys: 60_000, first_hit_only: false, lose_worker: None, sched: SchedPolicy::Static, retune: false },
        );
        assert_eq!(r.tested, s.size());
        assert_eq!(r.hits.len(), 1);
        assert!(r.rounds >= (s.size() / 60_000) as u32);
    }

    #[test]
    fn lost_worker_assignments_are_requeued_and_recovered() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        // Worker 0 never reports; the split is positional, so position 0
        // of every round is lost — the requeued intervals land at the
        // front of the next round, are re-split across all positions, and
        // drain through the rotation.
        let r = run_rounds(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig { round_keys: 60_000, first_hit_only: false, lose_worker: Some(0), sched: SchedPolicy::Static, retune: false },
        );
        assert_eq!(r.tested, s.size(), "lost work is eventually covered");
        assert!(r.requeued > 0);
        assert_eq!(r.hits.len(), 1, "the key in a once-lost interval is still found");
    }

    #[test]
    fn work_split_tracks_throughput() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_rounds(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig { round_keys: 100_000, first_hit_only: false, lose_worker: None, sched: SchedPolicy::Static, retune: false },
        );
        let share = |pat: &str| {
            r.per_device
                .iter()
                .find(|(n, _)| n.contains(pat))
                .map(|(_, c)| *c)
                .expect("device present")
        };
        assert!(share("660") > 5 * share("8600M"));
    }

    #[test]
    fn observed_rounds_count_rounds_and_publish_efficiency() {
        let telemetry = Telemetry::enabled();
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_rounds_observed(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig {
                round_keys: 100_000,
                first_hit_only: false,
                lose_worker: None,
                sched: SchedPolicy::Static,
                retune: false,
            },
            &telemetry,
        );
        assert_eq!(r.tested, s.size());
        let text = telemetry.render_prometheus();
        assert!(text.contains(names::ROUNDS), "{text}");
        assert!(text.contains(names::CLUSTER_EFFICIENCY_PCT), "{text}");
        // The ROUNDS counter reconciles exactly with the report.
        let line = text
            .lines()
            .find(|l| l.starts_with(names::ROUNDS) && !l.starts_with('#'))
            .expect("rounds sample");
        let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(value as u32, r.rounds);
        assert!(telemetry.trace_jsonl().contains("\"round\""), "round spans recorded");
    }

    #[test]
    fn retuned_rounds_still_cover_exactly_once() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        for sched in [SchedPolicy::Static, SchedPolicy::Steal] {
            let r = run_rounds(
                &net,
                &s,
                &t,
                s.interval(),
                RoundConfig {
                    round_keys: 60_000,
                    first_hit_only: false,
                    lose_worker: None,
                    sched,
                    retune: true,
                },
            );
            assert_eq!(r.tested, s.size(), "{sched}: live weights never drop or double keys");
            assert_eq!(r.hits.len(), 1, "{sched}");
        }
    }

    #[test]
    fn retuned_rounds_publish_live_rate_gauges() {
        let telemetry = Telemetry::enabled();
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_rounds_observed(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig {
                round_keys: 100_000,
                first_hit_only: false,
                lose_worker: None,
                sched: SchedPolicy::Static,
                retune: true,
            },
            &telemetry,
        );
        assert_eq!(r.tested, s.size());
        let text = telemetry.render_prometheus();
        assert!(text.contains(names::WORKER_RATE_EST), "{text}");
        assert!(text.contains(names::WORKER_RATE_TUNED), "{text}");
    }

    #[test]
    fn round_workers_run_backend_labelled_leaves() {
        let net = paper_network(1e-3).with_cpu("host-cpu", 2);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_rounds(
            &net,
            &s,
            &t,
            s.interval(),
            RoundConfig { round_keys: 80_000, first_hit_only: false, lose_worker: None, sched: SchedPolicy::Static, retune: false },
        );
        assert_eq!(r.tested, s.size());
        assert!(r.per_device.iter().any(|(n, _)| n.contains("[simgpu]")));
        assert!(r.per_device.iter().any(|(n, _)| n.contains("[lanes")));
    }
}
