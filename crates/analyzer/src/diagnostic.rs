//! Diagnostic types: what a lint found, how bad it is, and where.
//!
//! The shape mirrors a compiler diagnostic — a lint identifier, a
//! severity, a span into the analyzed stream and a human message — so
//! that the CLI can render the same data as aligned text or as JSON for
//! CI consumption.

use std::fmt;

/// Version of the JSON report schema emitted by [`Report::to_json`].
///
/// Bump this whenever the field layout changes shape (adding,
/// removing or renaming keys); adding new [`Lint`] names is *not* a
/// schema change. Both `eks analyze --json` and `eks verify --json`
/// stamp this into every object so downstream tooling can dispatch on
/// it, and `tests/diagnostics_schema.rs` pins the full layout.
pub const SCHEMA_VERSION: u32 = 1;

/// The individual checks the analyzer can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    /// A register is read before any operation defines it.
    UseBeforeDef,
    /// An operation's result is never used (transitively) by any output.
    DeadStore,
    /// An operation with all-constant inputs survived to the IR: the
    /// compiler would fold it, so the builder left work on the table.
    ConstFoldable,
    /// A rotate-by-16 was lowered as shifts although the target prefers a
    /// single `PRMT` (`__byte_perm`).
    PrmtMissed,
    /// A rotate was lowered as a shift sequence although the target has a
    /// single-instruction funnel shift (`SHF`, cc 3.5).
    FunnelMissed,
    /// A materialized NOT (`LOP.XOR r, -1`) feeds only logic instructions
    /// and could merge into their operand modifiers.
    NotFoldable,
    /// Register pressure limits occupancy below the architecture maximum.
    RegisterPressure,
    /// Live-range analysis disagrees with the occupancy model — an
    /// internal inconsistency, always a hard error.
    PressureModelMismatch,
    /// A compiled instruction mix drifted from its published Table IV–VI
    /// budget beyond the accepted tolerance.
    BudgetDrift,
    /// A grid-IR load or store whose index cannot be proven in bounds
    /// for every grid shape.
    OutOfBounds,
    /// A grid-IR register read on a path where no definition dominates
    /// it (the must-defined dataflow lattice says "maybe uninitialized").
    UninitRead,
    /// A block barrier inside a branch whose guard varies across the
    /// threads of a block: part of the block can never reach it.
    BarrierDivergence,
}

impl Lint {
    /// Stable kebab-case identifier (used in text and JSON output).
    pub fn name(self) -> &'static str {
        match self {
            Lint::UseBeforeDef => "use-before-def",
            Lint::DeadStore => "dead-store",
            Lint::ConstFoldable => "const-foldable",
            Lint::PrmtMissed => "prmt-missed",
            Lint::FunnelMissed => "funnel-missed",
            Lint::NotFoldable => "not-foldable",
            Lint::RegisterPressure => "register-pressure",
            Lint::PressureModelMismatch => "pressure-model-mismatch",
            Lint::BudgetDrift => "budget-drift",
            Lint::OutOfBounds => "out-of-bounds",
            Lint::UninitRead => "uninit-read",
            Lint::BarrierDivergence => "barrier-divergence",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How seriously a finding should be taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never fails a gate.
    Allow,
    /// Suspicious but not fatal; fails only under `--deny warnings`.
    Warn,
    /// A hard failure: correctness or budget violations.
    Deny,
}

impl Severity {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warning",
            Severity::Deny => "error",
        }
    }
}

/// A half-open range of instruction (or operation) indices in the
/// analyzed stream. `len == 0` marks a kernel-level finding with no
/// specific location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Index of the first instruction involved.
    pub start: usize,
    /// Number of instructions involved (0 = whole kernel).
    pub len: usize,
}

impl Span {
    /// A span covering a single instruction.
    pub fn at(index: usize) -> Self {
        Span { start: index, len: 1 }
    }

    /// A kernel-level span (no specific instruction).
    pub fn kernel() -> Self {
        Span { start: 0, len: 0 }
    }
}

/// One finding: a lint, its severity, where it points and a message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which check fired.
    pub lint: Lint,
    /// How bad it is.
    pub severity: Severity,
    /// Where in the analyzed stream it points.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Construct a warning-level diagnostic.
    pub fn warn(lint: Lint, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { lint, severity: Severity::Warn, span, message: message.into() }
    }

    /// Construct a deny-level diagnostic.
    pub fn deny(lint: Lint, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { lint, severity: Severity::Deny, span, message: message.into() }
    }
}

/// All findings for one analyzed kernel on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Kernel name (e.g. `md5/optimized`).
    pub kernel: String,
    /// Architecture label (e.g. `3.0`), or `-` for IR-level analyses.
    pub cc: String,
    /// The findings, in stream order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for a kernel/architecture pair.
    pub fn new(kernel: impl Into<String>, cc: impl Into<String>) -> Self {
        Report { kernel: kernel.into(), cc: cc.into(), diagnostics: Vec::new() }
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append many findings.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Number of warning-level findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn).count()
    }

    /// Number of deny-level findings.
    pub fn denials(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Deny).count()
    }

    /// Escalate every warning to deny (the `--deny warnings` gate).
    pub fn deny_warnings(&mut self) {
        for d in &mut self.diagnostics {
            if d.severity == Severity::Warn {
                d.severity = Severity::Deny;
            }
        }
    }

    /// Render as aligned text, one line per finding.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let loc = if d.span.len == 0 {
                "*".to_string()
            } else if d.span.len == 1 {
                format!("{}", d.span.start)
            } else {
                format!("{}..{}", d.span.start, d.span.start + d.span.len)
            };
            writeln!(
                out,
                "{}: [{}] {} (cc {}, at {}): {}",
                d.severity.name(),
                d.lint,
                self.kernel,
                self.cc,
                loc,
                d.message
            )
            .expect("write to string");
        }
        out
    }

    /// Render as a JSON object (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        write!(
            out,
            "{{\"schema\":{},\"kernel\":{},\"cc\":{},\"warnings\":{},\"errors\":{},\"diagnostics\":[",
            SCHEMA_VERSION,
            json_str(&self.kernel),
            json_str(&self.cc),
            self.warnings(),
            self.denials()
        )
        .expect("write to string");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"lint\":{},\"severity\":{},\"span\":{{\"start\":{},\"len\":{}}},\"message\":{}}}",
                json_str(d.lint.name()),
                json_str(d.severity.name()),
                d.span.start,
                d.span.len,
                json_str(&d.message)
            )
            .expect("write to string");
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string as a JSON string literal (shared by every hand-rolled
/// JSON emitter in the workspace — there is no serde).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_matches_gates() {
        assert!(Severity::Deny > Severity::Warn);
        assert!(Severity::Warn > Severity::Allow);
    }

    #[test]
    fn deny_warnings_escalates() {
        let mut r = Report::new("k", "3.0");
        r.push(Diagnostic::warn(Lint::DeadStore, Span::at(3), "unused"));
        r.push(Diagnostic::deny(Lint::UseBeforeDef, Span::at(0), "bad"));
        assert_eq!((r.warnings(), r.denials()), (1, 1));
        r.deny_warnings();
        assert_eq!((r.warnings(), r.denials()), (0, 2));
    }

    #[test]
    fn json_escapes_and_structure() {
        let mut r = Report::new("md5/\"quoted\"", "1.*");
        r.push(Diagnostic::warn(Lint::PrmtMissed, Span { start: 2, len: 2 }, "line1\nline2"));
        let j = r.to_json();
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.contains("line1\\nline2"), "{j}");
        assert!(j.contains("\"span\":{\"start\":2,\"len\":2}"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn text_rendering_includes_location() {
        let mut r = Report::new("k", "3.0");
        r.push(Diagnostic::warn(Lint::FunnelMissed, Span { start: 4, len: 2 }, "m"));
        r.push(Diagnostic::deny(Lint::BudgetDrift, Span::kernel(), "drift"));
        let t = r.render_text();
        assert!(t.contains("at 4..6"), "{t}");
        assert!(t.contains("at *"), "{t}");
        assert!(t.contains("warning: [funnel-missed]"), "{t}");
        assert!(t.contains("error: [budget-drift]"), "{t}");
    }
}
