//! # eks-analyzer — static analysis over kernel IR
//!
//! The paper's methodology (Section V) is static analysis of kernel
//! code: count the source operations (Table III), inspect the compiled
//! instruction mix per architecture (Tables IV–VI via `cuobjdump
//! -sass`), and hand-apply the lowerings the compiler missed
//! (`__byte_perm` → `PRMT`, the cc 3.5 funnel shift, NOT-merging). This
//! crate mechanizes those inspections as a lint pipeline:
//!
//! * [`dataflow`] — def-use chains, use-before-def, dead-store and
//!   constant-propagation lints on abstract [`KernelIr`] programs;
//! * [`peephole`] — per-architecture lowering lints on
//!   [`MachineInstr`](eks_gpusim::isa::MachineInstr) streams (missed
//!   `PRMT`, missed funnel shift, foldable NOT);
//! * [`pressure`] — live-range register-pressure estimation,
//!   cross-checked against `eks_gpusim::occupancy`;
//! * [`budget`] — the published Table III–VI counts as hard pass/fail
//!   assertions with per-class deltas;
//! * [`grid`] — soundness passes over the grid-level kernel IR
//!   ([`eks_gpusim::gridir`]): symbolic bounds proofs for every
//!   load/store, must-defined register dataflow, and a
//!   barrier-divergence lint (surfaced by `eks verify`).
//!
//! Findings surface as [`Diagnostic`] values inside [`Report`]s that
//! render as text or JSON; the `eks analyze` subcommand exposes the
//! whole pipeline with a `--deny warnings` exit-code gate for CI.

#![warn(missing_docs)]

pub mod budget;
pub mod dataflow;
pub mod diagnostic;
pub mod grid;
pub mod peephole;
pub mod pressure;

pub use budget::{check_md5_budget, md5_budget_report, DEFAULT_TOLERANCE};
pub use dataflow::{check_ir, eliminate_dead_stores, DefUse};
pub use diagnostic::{Diagnostic, Lint, Report, Severity, Span, SCHEMA_VERSION};
pub use grid::{analyze_grid, check_bounds, check_divergence, check_must_defined};
pub use peephole::check_compiled;
pub use pressure::check_pressure;

use eks_gpusim::codegen::CompiledKernel;
use eks_gpusim::isa::{KernelIr, Reg};

/// Run the IR-level (dataflow) analyses on an abstract kernel.
///
/// `roots` are the registers whose values the kernel's comparison
/// consumes (`BuiltKernel::outputs`); without them the dead-store lint
/// is skipped.
pub fn analyze_ir(ir: &KernelIr, roots: Option<&[Reg]>) -> Report {
    let mut report = Report::new(ir.name.clone(), "-");
    report.extend(dataflow::check_ir(ir, roots));
    report
}

/// Run the machine-level analyses (peephole lints and register
/// pressure) on a lowered kernel.
pub fn analyze_compiled(kernel: &CompiledKernel) -> Report {
    let mut report = Report::new(kernel.name.clone(), kernel.cc.label());
    report.extend(peephole::check_compiled(kernel));
    report.extend(pressure::check_pressure(kernel));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_gpusim::arch::ComputeCapability;
    use eks_gpusim::codegen::{lower, LoweringOptions};
    use eks_gpusim::isa::KernelBuilder;

    #[test]
    fn pipeline_on_a_tiny_kernel() {
        let mut b = KernelBuilder::new("tiny");
        let x = b.param(0);
        let y = b.rotl(x, 16);
        let out = b.add(x, y);
        let ir = b.build();
        assert_eq!(analyze_ir(&ir, Some(&[out])).diagnostics.len(), 0);

        let plain = lower(&ir, LoweringOptions::plain(ComputeCapability::Sm30));
        let r = analyze_compiled(&plain);
        assert_eq!(r.warnings(), 1, "{}", r.render_text());
        assert_eq!(r.diagnostics[0].lint, Lint::PrmtMissed);

        let tuned = lower(&ir, LoweringOptions::for_cc(ComputeCapability::Sm30));
        assert_eq!(analyze_compiled(&tuned).diagnostics.len(), 0);
    }
}
