//! Register-pressure estimation, cross-checked against the occupancy
//! model in `eks-gpusim`.
//!
//! The analyzer recomputes the maximum number of simultaneously-live
//! registers from the live ranges (an O(n·r) reference count, deliberately
//! independent of the simulator's linear sweep) and compares it with
//! [`eks_gpusim::occupancy::live_registers`]. A mismatch is an internal
//! model error and reported at deny level; agreement plus an over-budget
//! register file yields the pre-simulation warning the paper's occupancy
//! reasoning (Section VI, Volkov's bound) calls for.

use eks_gpusim::codegen::CompiledKernel;
use eks_gpusim::liveness::{live_ranges, LiveRange};
use eks_gpusim::occupancy;

use crate::diagnostic::{Diagnostic, Lint, Span};

/// The analyzer's independent register-pressure estimate.
#[derive(Debug, Clone)]
pub struct PressureEstimate {
    /// Live range per register.
    pub ranges: Vec<LiveRange>,
    /// Maximum simultaneously-live registers (per-thread footprint).
    pub max_live: u32,
    /// Resident warps after clamping by the register file.
    pub resident_warps: u32,
    /// Architecture maximum resident warps.
    pub max_warps: u32,
}

/// Estimate pressure by brute force over the live ranges: at every
/// instruction index, count the ranges covering it.
pub fn estimate(kernel: &CompiledKernel) -> PressureEstimate {
    let ranges = live_ranges(&kernel.instrs);
    let max_live = (0..kernel.instrs.len())
        .map(|i| ranges.iter().filter(|r| r.contains(i)).count() as u32)
        .max()
        .unwrap_or(0);
    PressureEstimate {
        ranges,
        max_live,
        resident_warps: occupancy::resident_warps(kernel),
        max_warps: kernel.cc.mp_spec().max_warps,
    }
}

/// Run the pressure checks against a lowered kernel.
pub fn check_pressure(kernel: &CompiledKernel) -> Vec<Diagnostic> {
    let est = estimate(kernel);
    let mut out = Vec::new();

    // Cross-check: the occupancy model's linear sweep must agree with the
    // reference count. Divergence means one of the models is wrong.
    let model = occupancy::live_registers(kernel);
    if model != est.max_live {
        out.push(Diagnostic::deny(
            Lint::PressureModelMismatch,
            Span::kernel(),
            format!(
                "occupancy model reports {model} live registers, live-range reference says {}",
                est.max_live
            ),
        ));
    }

    if est.resident_warps < est.max_warps {
        let volkov = occupancy::latency_hiding_warps(kernel.cc);
        let severity_note = if est.resident_warps < volkov {
            format!(" — below the {volkov}-warp latency-hiding bound")
        } else {
            String::new()
        };
        out.push(Diagnostic::warn(
            Lint::RegisterPressure,
            Span::kernel(),
            format!(
                "{} registers/thread limit occupancy to {}/{} warps on cc {}{}",
                est.max_live,
                est.resident_warps,
                est.max_warps,
                kernel.cc.label(),
                severity_note
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_gpusim::arch::ComputeCapability;
    use eks_gpusim::codegen::{lower, LoweringOptions};
    use eks_gpusim::isa::KernelBuilder;

    fn hog(n: u32) -> CompiledKernel {
        let mut b = KernelBuilder::new("hog");
        let inputs: Vec<_> = (0..n).map(|i| b.param(i)).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = b.xor(acc, x);
        }
        for &x in &inputs {
            acc = b.add(acc, x);
        }
        lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30))
    }

    #[test]
    fn lean_kernel_is_clean() {
        let mut b = KernelBuilder::new("lean");
        let x = b.param(0);
        let y = b.rotl(x, 7);
        let _ = b.add(x, y);
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30));
        assert!(check_pressure(&k).is_empty());
    }

    #[test]
    fn register_hog_warns() {
        let k = hog(200);
        let diags = check_pressure(&k);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, Lint::RegisterPressure);
        assert!(diags[0].message.contains("warps"), "{}", diags[0].message);
    }

    #[test]
    fn estimate_agrees_with_occupancy_model() {
        for n in [4, 16, 64, 200] {
            let k = hog(n);
            let est = estimate(&k);
            assert_eq!(est.max_live, occupancy::live_registers(&k), "hog({n})");
        }
    }
}
