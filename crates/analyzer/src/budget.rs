//! Budget assertions: the published Table III–VI instruction counts as
//! hard pass/fail checks.
//!
//! `eks-kernels::counts` carries the paper's numbers as constants and the
//! kernels' own counts through the simulator codegen; this module turns
//! the comparison into deny-level diagnostics whenever a per-class delta
//! exceeds the documented tolerance (12 % by default — the bound the
//! repository's own tests hold today, dominated by the add/logic rows
//! where our builder folds slightly differently than `nvcc` did).

use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::InstrCounts;
use eks_kernels::counts::{
    count_deltas, our_md5_counts, our_md5_source_counts, PaperInstrCounts,
    PAPER_TABLE3_MD5_SOURCE, PAPER_TABLE4_MD5_CC1X, PAPER_TABLE4_MD5_CC2X, PAPER_TABLE5_MD5_CC2X,
    PAPER_TABLE6_MD5_CC1X, PAPER_TABLE6_MD5_CC2X,
};
use eks_kernels::md5::Md5Variant;

use crate::diagnostic::{Diagnostic, Lint, Report, Span};

/// The documented tolerance on per-class deltas (fraction of the paper
/// value). Matches the bound asserted by `eks-kernels`' own count tests.
pub const DEFAULT_TOLERANCE: f64 = 0.12;

/// The published budget for an MD5 variant on an architecture, and which
/// table it comes from. `None` when the paper prints no column for the
/// combination (the reversed-only variant has no exact table — Table V
/// includes the early exit — and cc 3.5 postdates the measurements).
pub fn md5_paper_budget(
    variant: Md5Variant,
    cc: ComputeCapability,
) -> Option<(&'static str, PaperInstrCounts)> {
    use ComputeCapability::*;
    match (variant, cc) {
        (Md5Variant::Naive, Sm1x) => Some(("Table IV cc 1.x", PAPER_TABLE4_MD5_CC1X)),
        (Md5Variant::Naive, Sm20 | Sm21 | Sm30 | Sm35) => {
            Some(("Table IV cc 2.x/3.0", PAPER_TABLE4_MD5_CC2X))
        }
        (Md5Variant::Reversed, _) => None,
        (Md5Variant::Optimized, Sm1x) => Some(("Table VI cc 1.x", PAPER_TABLE6_MD5_CC1X)),
        (Md5Variant::Optimized, Sm20 | Sm21) => {
            Some(("Table V cc 2.x/3.0", PAPER_TABLE5_MD5_CC2X))
        }
        (Md5Variant::Optimized, Sm30) => Some(("Table VI cc 3.0", PAPER_TABLE6_MD5_CC2X)),
        (Md5Variant::Optimized, Sm35) => None,
    }
}

/// Compare one compiled count column against its published budget,
/// producing a deny-level diagnostic per class whose relative delta
/// exceeds `tolerance`.
pub fn budget_diagnostics(
    table: &str,
    paper: &PaperInstrCounts,
    ours: &InstrCounts,
    tolerance: f64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (class, delta) in count_deltas(paper, ours) {
        let drifted = if delta.is_finite() {
            delta.abs() > tolerance
        } else {
            // Paper publishes zero for the class but we emit some.
            true
        };
        if drifted {
            out.push(Diagnostic::deny(
                Lint::BudgetDrift,
                Span::kernel(),
                format!(
                    "{table}: {class} drifts {:+.1}% from the published budget \
                     (tolerance {:.0}%)",
                    delta * 100.0,
                    tolerance * 100.0
                ),
            ));
        }
    }
    out
}

/// Check one MD5 variant's compiled counts on one architecture.
/// Returns an empty list when the paper has no budget for the pair.
pub fn check_md5_budget(
    variant: Md5Variant,
    cc: ComputeCapability,
    tolerance: f64,
) -> Vec<Diagnostic> {
    match md5_paper_budget(variant, cc) {
        Some((table, paper)) => {
            let ours = our_md5_counts(variant, cc);
            budget_diagnostics(table, &paper, &ours, tolerance)
        }
        None => Vec::new(),
    }
}

/// Check the source-level counts against Table III. The NOT row is
/// excluded: the paper counts 160 macro-expanded complements where the
/// canonical RFC 1321 source has 48 (47 after the step-0 fold) — a
/// documented presentation difference, not a kernel defect.
pub fn check_md5_source_budget(tolerance: f64) -> Vec<Diagnostic> {
    let ours = our_md5_source_counts();
    let paper = PAPER_TABLE3_MD5_SOURCE;
    let mut out = Vec::new();
    let rows = [
        ("add", paper.add, ours.add),
        ("logic", paper.logic, ours.logic),
        ("shift", paper.shift, ours.shift),
    ];
    for (class, p, o) in rows {
        let delta = (o as f64 - p as f64) / p as f64;
        if delta.abs() > tolerance {
            out.push(Diagnostic::deny(
                Lint::BudgetDrift,
                Span::kernel(),
                format!(
                    "Table III: source {class} count {o} drifts {:+.1}% from {p} \
                     (tolerance {:.0}%)",
                    delta * 100.0,
                    tolerance * 100.0
                ),
            ));
        }
    }
    out
}

/// Budget report over every MD5 variant × architecture the paper covers,
/// plus the Table III source check.
pub fn md5_budget_report(tolerance: f64) -> Report {
    let mut report = Report::new("md5/budgets", "-");
    report.extend(check_md5_source_budget(tolerance));
    for variant in [Md5Variant::Naive, Md5Variant::Reversed, Md5Variant::Optimized] {
        for cc in ComputeCapability::ALL {
            report.extend(check_md5_budget(variant, cc, tolerance));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_pass_at_documented_tolerance() {
        let r = md5_budget_report(DEFAULT_TOLERANCE);
        assert_eq!(r.denials(), 0, "{}", r.render_text());
    }

    #[test]
    fn zero_tolerance_fails() {
        // Our counts track the paper's within a few percent, not exactly;
        // a zero tolerance must therefore trip the gate.
        let r = md5_budget_report(0.0);
        assert!(r.denials() > 0);
    }

    #[test]
    fn synthetic_drift_is_denied() {
        let paper = PAPER_TABLE6_MD5_CC2X;
        // Real counts pass...
        let ours = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm30);
        assert!(budget_diagnostics("t", &paper, &ours, DEFAULT_TOLERANCE).is_empty());
        // ...but a stream with doubled shift work does not.
        use eks_gpusim::isa::{MachineClass, MachineInstr, Reg};
        let mut instrs = Vec::new();
        for i in 0..(paper.shift * 2) {
            instrs.push(MachineInstr::new(MachineClass::Shift, Reg(i), vec![]));
        }
        let drifted = InstrCounts::of(&instrs);
        let diags = budget_diagnostics("t", &paper, &drifted, DEFAULT_TOLERANCE);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.lint == Lint::BudgetDrift));
    }

    #[test]
    fn unpublished_pairs_have_no_budget() {
        assert!(md5_paper_budget(Md5Variant::Reversed, ComputeCapability::Sm30).is_none());
        assert!(md5_paper_budget(Md5Variant::Optimized, ComputeCapability::Sm35).is_none());
        assert!(check_md5_budget(Md5Variant::Reversed, ComputeCapability::Sm30, 0.0).is_empty());
    }
}
