//! Dataflow analysis over abstract (source-level) kernel programs.
//!
//! The kernels are straight-line single-assignment-ish programs, so
//! def-use chains come out of one forward scan and liveness out of one
//! backward scan. The lints encode the properties the paper's authors
//! checked by hand: no operation reads garbage, nothing computes a value
//! the comparison never consumes, and nothing runtime-computes what the
//! compiler would fold.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::collections::{HashMap, HashSet};

use eks_gpusim::isa::{AbstractOp, KernelIr, Operand, Reg};

use crate::diagnostic::{Diagnostic, Lint, Span};

/// Def-use chains for a straight-line abstract program.
#[derive(Debug, Clone, Default)]
pub struct DefUse {
    /// First defining operation index per register.
    pub defs: HashMap<Reg, usize>,
    /// Operation indices reading each register, in order.
    pub uses: HashMap<Reg, Vec<usize>>,
}

impl DefUse {
    /// Build the chains with one forward scan.
    pub fn of(ir: &KernelIr) -> Self {
        let mut du = DefUse::default();
        for (i, op) in ir.ops.iter().enumerate() {
            for r in op.src_regs() {
                du.uses.entry(r).or_default().push(i);
            }
            du.defs.entry(op.dst()).or_insert(i);
        }
        du
    }

    /// The operations reading `r` (empty slice if never read).
    pub fn uses_of(&self, r: Reg) -> &[usize] {
        self.uses.get(&r).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Registers read before any operation defines them — in abstract IR
/// every input arrives through `LoadParam`, so any such read is a bug.
pub fn use_before_def(ir: &KernelIr) -> Vec<(Reg, usize)> {
    let mut defined: HashSet<Reg> = HashSet::new();
    let mut bad = Vec::new();
    for (i, op) in ir.ops.iter().enumerate() {
        for r in op.src_regs() {
            if !defined.contains(&r) {
                bad.push((r, i));
            }
        }
        defined.insert(op.dst());
    }
    bad
}

/// Indices of operations whose results never (transitively) reach a root
/// register — classic backward-liveness dead-code detection.
///
/// `roots` are the registers the kernel's comparison reads (the
/// `BuiltKernel::outputs`); everything feeding them stays, the rest is a
/// dead store.
pub fn dead_stores(ir: &KernelIr, roots: &[Reg]) -> Vec<usize> {
    let mut live: HashSet<Reg> = roots.iter().copied().collect();
    let mut dead = Vec::new();
    for (i, op) in ir.ops.iter().enumerate().rev() {
        if live.remove(&op.dst()) {
            live.extend(op.src_regs());
        } else {
            dead.push(i);
        }
    }
    dead.reverse();
    dead
}

/// Rebuild the kernel with dead stores removed. Register numbering and
/// semantics of the remaining operations are untouched, so evaluating
/// the result with the same parameters produces identical values in
/// every live register.
pub fn eliminate_dead_stores(ir: &KernelIr, roots: &[Reg]) -> KernelIr {
    let dead: HashSet<usize> = dead_stores(ir, roots).into_iter().collect();
    KernelIr {
        name: ir.name.clone(),
        ops: ir
            .ops
            .iter()
            .enumerate()
            .filter(|(i, _)| !dead.contains(i))
            .map(|(_, op)| *op)
            .collect(),
        keys_per_iteration: ir.keys_per_iteration,
        reg_count: ir.reg_count,
    }
}

/// Indices of non-load operations whose inputs are all compile-time
/// constants: a compiler folds them, so their presence means the builder
/// emitted avoidable runtime work.
pub fn const_foldable(ir: &KernelIr) -> Vec<usize> {
    let mut konst: HashSet<Reg> = HashSet::new();
    let mut foldable = Vec::new();
    for (i, op) in ir.ops.iter().enumerate() {
        match op {
            AbstractOp::Const { dst, .. } => {
                konst.insert(*dst);
            }
            AbstractOp::LoadParam { .. } => {}
            _ => {
                let all_const = op.operands().into_iter().flatten().all(|o| match o {
                    Operand::Imm(_) => true,
                    Operand::R(r) => konst.contains(&r),
                });
                if all_const {
                    konst.insert(op.dst());
                    foldable.push(i);
                }
            }
        }
    }
    foldable
}

/// Run every IR-level check and return the findings.
///
/// `roots` enables the dead-store lint; pass `None` when the kernel's
/// output registers are unknown (e.g. baseline tool models) and the
/// check is skipped.
pub fn check_ir(ir: &KernelIr, roots: Option<&[Reg]>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (r, i) in use_before_def(ir) {
        out.push(Diagnostic::deny(
            Lint::UseBeforeDef,
            Span::at(i),
            format!("operation {i} reads {r} before any definition"),
        ));
    }
    if let Some(roots) = roots {
        for i in dead_stores(ir, roots) {
            out.push(Diagnostic::warn(
                Lint::DeadStore,
                Span::at(i),
                format!("result {} of operation {i} never reaches an output", ir.ops[i].dst()),
            ));
        }
    }
    for i in const_foldable(ir) {
        out.push(Diagnostic::warn(
            Lint::ConstFoldable,
            Span::at(i),
            format!("operation {i} has all-constant inputs; the compiler would fold it"),
        ));
    }
    out.sort_by_key(|d| d.span.start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_gpusim::isa::KernelBuilder;

    #[test]
    fn def_use_chains() {
        let mut b = KernelBuilder::new("t");
        let x = b.param(0);
        let y = b.add(x, 1u32);
        let _ = b.xor(x, y);
        let ir = b.build();
        let du = DefUse::of(&ir);
        assert_eq!(du.defs[&x], 0);
        assert_eq!(du.uses_of(x), &[1, 2]);
        assert_eq!(du.uses_of(y), &[2]);
    }

    #[test]
    fn use_before_def_detected() {
        let mut b = KernelBuilder::new("t");
        let x = b.param(0);
        let ghost = Reg(99);
        let dst = b.fresh();
        // Hand-build an op reading a never-defined register.
        let mut ir = b.build();
        ir.ops.push(AbstractOp::Add { dst, a: Operand::R(x), b: Operand::R(ghost) });
        ir.reg_count = 100;
        let bad = use_before_def(&ir);
        assert_eq!(bad, vec![(ghost, 1)]);
        let diags = check_ir(&ir, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, Lint::UseBeforeDef);
    }

    #[test]
    fn dead_store_found_and_eliminated() {
        let mut b = KernelBuilder::new("t");
        let x = b.param(0);
        let live = b.add(x, 1u32);
        let dead = b.xor(x, 0xffu32); // never consumed
        let out = b.add(live, 2u32);
        let _ = dead;
        let ir = b.build();
        let d = dead_stores(&ir, &[out]);
        assert_eq!(d, vec![2]);
        let slim = eliminate_dead_stores(&ir, &[out]);
        assert_eq!(slim.ops.len(), ir.ops.len() - 1);
        // Values of live registers unchanged.
        let a = ir.evaluate(&[7]);
        let bvals = slim.evaluate(&[7]);
        assert_eq!(a[out.0 as usize], bvals[out.0 as usize]);
    }

    #[test]
    fn transitively_dead_chain_eliminated() {
        let mut b = KernelBuilder::new("t");
        let x = b.param(0);
        let d1 = b.add(x, 1u32);
        let d2 = b.add(d1, 2u32); // both dead: d2 unread
        let out = b.xor(x, 3u32);
        let _ = d2;
        let ir = b.build();
        assert_eq!(dead_stores(&ir, &[out]), vec![1, 2]);
    }

    #[test]
    fn const_foldable_found() {
        let mut b = KernelBuilder::new("t");
        let c1 = b.constant(5);
        let c2 = b.constant(7);
        let s = b.add(c1, c2); // foldable
        let x = b.param(0);
        let _ = b.add(x, s);
        let ir = b.build();
        assert_eq!(const_foldable(&ir), vec![2]);
        // Transitive: a shift of the folded sum is foldable too.
        let mut b = KernelBuilder::new("t2");
        let c = b.constant(5);
        let s = b.add(c, 1u32);
        let _ = b.shl(s, 2);
        assert_eq!(const_foldable(&b.build()), vec![1, 2]);
    }

    #[test]
    fn clean_kernel_reports_nothing() {
        let mut b = KernelBuilder::new("clean");
        let x = b.param(0);
        let y = b.rotl(x, 7);
        let out = b.add(x, y);
        let ir = b.build();
        assert!(check_ir(&ir, Some(&[out])).is_empty());
    }
}
