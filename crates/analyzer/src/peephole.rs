//! Peephole lints over lowered machine-instruction streams.
//!
//! These encode exactly the hand-optimizations of Section V-B: on cc 3.0
//! a rotate-by-16 should be one `PRMT` (`__byte_perm`), on cc 3.5 every
//! rotate should be one `SHF` funnel shift, and a materialized NOT
//! (`LOP.XOR r, -1`) feeding only logic instructions should merge into
//! its consumers' operand modifiers. Each lint recognizes the rotate
//! emulation sequences the compiler emits — `SHL+IMAD.HI` on cc ≥ 2.0,
//! `SHL+SHR+ADD` on cc 1.x — from the instruction stream alone, the way
//! the authors read `cuobjdump -sass` listings.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_gpusim::codegen::CompiledKernel;
use eks_gpusim::isa::{MachineClass, MachineInstr};

use crate::diagnostic::{Diagnostic, Lint, Span};

/// A rotate-emulation sequence recognized in a lowered stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotateSeq {
    /// Index of the first instruction of the sequence.
    pub start: usize,
    /// Index of the combining instruction (`IMAD` or `IADD`).
    pub end: usize,
    /// The left-rotate amount.
    pub amount: u32,
}

/// Recognize rotate-emulation sequences: `SHL t,r,n ; IMAD.HI d,r,t`
/// (cc ≥ 2.0) and `SHL t1,r,n ; SHR t2,r,32-n ; IADD d,t1,t2` (cc 1.x).
pub fn rotate_sequences(instrs: &[MachineInstr]) -> Vec<RotateSeq> {
    // Def index per register (streams are single-assignment after
    // lowering, where every temporary is fresh).
    let def = |reg, before: usize| -> Option<usize> {
        (0..before).rev().find(|&j| instrs[j].dst == reg)
    };
    let mut seqs = Vec::new();
    for (i, ins) in instrs.iter().enumerate() {
        match ins.class {
            MachineClass::Imad if ins.srcs.len() == 2 => {
                // IMAD.HI d, r, 2^(32-n), t — operands [r, t].
                let (r, t) = (ins.srcs[0], ins.srcs[1]);
                if let Some(j) = def(t, i) {
                    let s = &instrs[j];
                    if s.class == MachineClass::Shift && s.srcs == [r] {
                        if let Some(n) = s.imm {
                            seqs.push(RotateSeq { start: j, end: i, amount: n });
                        }
                    }
                }
            }
            MachineClass::IAdd if ins.srcs.len() == 2 => {
                let (t1, t2) = (ins.srcs[0], ins.srcs[1]);
                if let (Some(j1), Some(j2)) = (def(t1, i), def(t2, i)) {
                    let (s1, s2) = (&instrs[j1], &instrs[j2]);
                    if s1.class == MachineClass::Shift
                        && s2.class == MachineClass::Shift
                        && s1.srcs.len() == 1
                        && s1.srcs == s2.srcs
                    {
                        if let (Some(n), Some(m)) = (s1.imm, s2.imm) {
                            if n + m == 32 {
                                seqs.push(RotateSeq {
                                    start: j1.min(j2),
                                    end: i,
                                    amount: n,
                                });
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    seqs
}

/// Whether an instruction is a materialized NOT: `LOP.XOR r, -1`.
fn is_materialized_not(ins: &MachineInstr) -> bool {
    ins.class == MachineClass::Lop && ins.srcs.len() == 1 && ins.imm == Some(u32::MAX)
}

/// Run every peephole lint against a lowered kernel.
pub fn check_compiled(kernel: &CompiledKernel) -> Vec<Diagnostic> {
    let cc = kernel.cc;
    let instrs = &kernel.instrs;
    let mut out = Vec::new();

    for seq in rotate_sequences(instrs) {
        let span = Span { start: seq.start, len: seq.end - seq.start + 1 };
        if cc.has_funnel_shift() {
            out.push(Diagnostic::warn(
                Lint::FunnelMissed,
                span,
                format!(
                    "rotate-by-{} emulated with {} instructions; cc {} has the SHF funnel shift",
                    seq.amount,
                    seq.end - seq.start + 1,
                    cc.label()
                ),
            ));
        } else if seq.amount == 16 && cc.prefers_prmt_rot16() {
            out.push(Diagnostic::warn(
                Lint::PrmtMissed,
                span,
                format!(
                    "rotate-by-16 emulated with shifts; __byte_perm lowers it to one PRMT on cc {}",
                    cc.label()
                ),
            ));
        }
    }

    for (i, ins) in instrs.iter().enumerate() {
        if !is_materialized_not(ins) {
            continue;
        }
        let uses: Vec<usize> = (i + 1..instrs.len())
            .filter(|&j| instrs[j].srcs.contains(&ins.dst))
            .collect();
        if !uses.is_empty() && uses.iter().all(|&j| instrs[j].class == MachineClass::Lop) {
            out.push(Diagnostic::warn(
                Lint::NotFoldable,
                Span::at(i),
                format!(
                    "NOT materialized as LOP.XOR {}, -1 feeds only logic instructions; \
                     it folds into their operand modifiers",
                    ins.dst
                ),
            ));
        }
    }

    out.sort_by_key(|d| d.span.start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_gpusim::arch::ComputeCapability;
    use eks_gpusim::codegen::{lower, LoweringOptions};
    use eks_gpusim::isa::{KernelBuilder, Reg};

    fn rotate_kernel(n: u32) -> eks_gpusim::isa::KernelIr {
        let mut b = KernelBuilder::new("rot");
        let x = b.param(0);
        let y = b.rotl(x, n);
        let _ = b.add(x, y);
        b.build()
    }

    #[test]
    fn recognizes_cc2x_rotate_sequence() {
        let k = lower(&rotate_kernel(7), LoweringOptions::plain(ComputeCapability::Sm30));
        let seqs = rotate_sequences(&k.instrs);
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].amount, 7);
    }

    #[test]
    fn recognizes_cc1x_rotate_sequence() {
        let k = lower(&rotate_kernel(11), LoweringOptions::plain(ComputeCapability::Sm1x));
        let seqs = rotate_sequences(&k.instrs);
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].amount, 11);
        assert_eq!(seqs[0].end - seqs[0].start, 2, "SHL+SHR+ADD spans three instructions");
    }

    #[test]
    fn prmt_missed_on_sm30_plain() {
        let k = lower(&rotate_kernel(16), LoweringOptions::plain(ComputeCapability::Sm30));
        let diags = check_compiled(&k);
        assert!(diags.iter().any(|d| d.lint == Lint::PrmtMissed), "{diags:?}");
        // Non-16 rotates do not trigger the PRMT lint.
        let k7 = lower(&rotate_kernel(7), LoweringOptions::plain(ComputeCapability::Sm30));
        assert!(check_compiled(&k7).is_empty());
    }

    #[test]
    fn funnel_missed_on_sm35_plain() {
        let k = lower(&rotate_kernel(7), LoweringOptions::plain(ComputeCapability::Sm35));
        let diags = check_compiled(&k);
        assert!(diags.iter().any(|d| d.lint == Lint::FunnelMissed), "{diags:?}");
    }

    #[test]
    fn optimized_lowering_is_clean() {
        for n in [7, 16, 23] {
            for cc in [ComputeCapability::Sm30, ComputeCapability::Sm35] {
                let k = lower(&rotate_kernel(n), LoweringOptions::for_cc(cc));
                assert!(check_compiled(&k).is_empty(), "rot{n} on {cc:?}");
            }
        }
    }

    #[test]
    fn foldable_not_flagged() {
        // Hand-built stream: a materialized NOT feeding a LOP.
        let instrs = vec![
            MachineInstr::new(MachineClass::Lop, Reg(1), vec![Reg(0)]).with_imm(u32::MAX),
            MachineInstr::new(MachineClass::Lop, Reg(2), vec![Reg(1), Reg(0)]),
        ];
        let k = CompiledKernel {
            name: "t".into(),
            cc: ComputeCapability::Sm30,
            counts: eks_gpusim::codegen::InstrCounts::of(&instrs),
            instrs,
            keys_per_iteration: 1,
            reg_count: 3,
        };
        let diags = check_compiled(&k);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, Lint::NotFoldable);
    }

    #[test]
    fn not_feeding_arithmetic_not_flagged() {
        // The lowering materializes NOTs only for non-logic consumers;
        // those must stay unflagged.
        let mut b = KernelBuilder::new("n");
        let x = b.param(0);
        let nx = b.not(x);
        let _ = b.add(nx, 1u32);
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30));
        assert!(check_compiled(&k).is_empty());
    }
}
