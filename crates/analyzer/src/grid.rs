//! Soundness passes over the grid-level kernel IR.
//!
//! Three passes, each a small abstract interpretation over
//! [`eks_gpusim::gridir::GridKernel`], each reporting through the same
//! [`Diagnostic`] types as the scalar-IR passes:
//!
//! 1. **Bounds** — value-range abstract interpretation in a symbolic
//!    *linear-expression domain*: every register is mapped to
//!    `c + a·tid + b·bid + d·blockDim + e·gridDim + f·nKeys + g·(bid·blockDim)
//!    + h·(blockDim·gridDim)` or ⊤. A load/store index is in bounds only
//!    if both `index ≥ 0` and `extent − 1 − index ≥ 0` are provable for
//!    **all** grid shapes, using only the execution-model facts
//!    `0 ≤ tid < blockDim`, `0 ≤ bid < gridDim`, `blockDim ≥ 1`,
//!    `gridDim ≥ 1`, `nKeys ≥ 0` — mechanized as variable elimination
//!    (substitute each bounded variable's worst end, fail on any
//!    remaining negative coefficient). Branch guards `a < b` refine the
//!    range of `a` inside the taken arm, which is what proves the
//!    canonical `if gid < nKeys` tail guard safe.
//! 2. **Must-defined** — forward dataflow on the powerset lattice of
//!    registers with set-intersection at branch joins: a register read
//!    is rejected unless *every* path to it contains a definition
//!    (generalizing the PR 1 dead-rotl bug class to branchy code).
//! 3. **Divergence** — a taint lattice `uniform < varying` seeded at
//!    `tid`: a block barrier under a branch whose guard is
//!    thread-varying can never be reached by the whole block and is
//!    rejected. `bid` is uniform *within* a block, so block-uniform
//!    guards (e.g. `bid < k`) keep barriers legal.
//!
//! All three passes share one pre-order statement numbering, so their
//! spans agree and point into the same statement stream.

use crate::diagnostic::{Diagnostic, Lint, Report, Span};
use eks_gpusim::gridir::{Extent, GOp, GReg, GStmt, GridKernel, Pred, Sym};

/// A symbolic linear expression over the launch quantities. The two
/// product terms (`bxb = bid·blockDim`, `thr = blockDim·gridDim`) are
/// tracked as opaque variables with the derived bounds
/// `0 ≤ bxb ≤ thr − blockDim` and `thr ≥ 1` — enough to prove the
/// global-thread-index patterns without a full polynomial domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lin {
    c: i128,
    tid: i128,
    bid: i128,
    bdim: i128,
    gdim: i128,
    nkeys: i128,
    /// Coefficient of `bid·blockDim`.
    bxb: i128,
    /// Coefficient of `blockDim·gridDim` (total threads).
    thr: i128,
}

impl Lin {
    const ZERO: Lin =
        Lin { c: 0, tid: 0, bid: 0, bdim: 0, gdim: 0, nkeys: 0, bxb: 0, thr: 0 };

    fn constant(v: i128) -> Lin {
        Lin { c: v, ..Lin::ZERO }
    }

    fn sym(s: Sym) -> Lin {
        match s {
            Sym::Tid => Lin { tid: 1, ..Lin::ZERO },
            Sym::Bid => Lin { bid: 1, ..Lin::ZERO },
            Sym::BlockDim => Lin { bdim: 1, ..Lin::ZERO },
            Sym::GridDim => Lin { gdim: 1, ..Lin::ZERO },
            Sym::NKeys => Lin { nkeys: 1, ..Lin::ZERO },
        }
    }

    fn add(self, o: Lin) -> Lin {
        Lin {
            c: self.c + o.c,
            tid: self.tid + o.tid,
            bid: self.bid + o.bid,
            bdim: self.bdim + o.bdim,
            gdim: self.gdim + o.gdim,
            nkeys: self.nkeys + o.nkeys,
            bxb: self.bxb + o.bxb,
            thr: self.thr + o.thr,
        }
    }

    fn sub(self, o: Lin) -> Lin {
        self.add(o.scale(-1))
    }

    fn scale(self, k: i128) -> Lin {
        Lin {
            c: self.c * k,
            tid: self.tid * k,
            bid: self.bid * k,
            bdim: self.bdim * k,
            gdim: self.gdim * k,
            nkeys: self.nkeys * k,
            bxb: self.bxb * k,
            thr: self.thr * k,
        }
    }

    fn as_const(self) -> Option<i128> {
        if (Lin { c: 0, ..self }) == Lin::ZERO {
            Some(self.c)
        } else {
            None
        }
    }

    /// Multiplication stays in the domain when one side is constant or
    /// the product is one of the two tracked launch products.
    fn mul(self, o: Lin) -> Option<Lin> {
        if let Some(k) = self.as_const() {
            return Some(o.scale(k));
        }
        if let Some(k) = o.as_const() {
            return Some(self.scale(k));
        }
        let pure = |l: Lin, s: Sym| l == Lin::sym(s);
        let is = |a: Lin, b: Lin, x: Sym, y: Sym| {
            (pure(a, x) && pure(b, y)) || (pure(a, y) && pure(b, x))
        };
        if is(self, o, Sym::Bid, Sym::BlockDim) {
            return Some(Lin { bxb: 1, ..Lin::ZERO });
        }
        if is(self, o, Sym::BlockDim, Sym::GridDim) {
            return Some(Lin { thr: 1, ..Lin::ZERO });
        }
        None
    }

    /// Prove `self ≥ 0` for every grid shape, by eliminating each
    /// bounded variable at its adversarial end:
    /// `tid ↦ blockDim − 1`, `bid ↦ gridDim − 1`,
    /// `bxb ↦ thr − blockDim` when their coefficients are negative
    /// (their maxima), else `0` (their minima); then any negative
    /// coefficient on the unbounded-above survivors means unprovable,
    /// and otherwise the minimum is reached with every survivor at its
    /// floor (`blockDim, gridDim, thr ≥ 1`, `nKeys ≥ 0`).
    fn prove_nonneg(self) -> bool {
        let mut l = self;
        if l.tid < 0 {
            l.bdim += l.tid;
            l.c -= l.tid;
        }
        l.tid = 0;
        if l.bid < 0 {
            l.gdim += l.bid;
            l.c -= l.bid;
        }
        l.bid = 0;
        if l.bxb < 0 {
            l.thr += l.bxb;
            l.bdim -= l.bxb;
        }
        l.bxb = 0;
        if l.bdim < 0 || l.gdim < 0 || l.nkeys < 0 || l.thr < 0 {
            return false;
        }
        l.c + l.bdim + l.gdim + l.thr >= 0
    }

    fn render(self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if self.c != 0 {
            parts.push(self.c.to_string());
        }
        for (coef, name) in [
            (self.tid, "tid"),
            (self.bid, "bid"),
            (self.bdim, "blockDim"),
            (self.gdim, "gridDim"),
            (self.nkeys, "nKeys"),
            (self.bxb, "bid*blockDim"),
            (self.thr, "blockDim*gridDim"),
        ] {
            match coef {
                0 => {}
                1 => parts.push(name.to_string()),
                _ => parts.push(format!("{coef}*{name}")),
            }
        }
        if parts.is_empty() {
            "0".to_string()
        } else {
            parts.join(" + ")
        }
    }
}

/// `extent − 1` as a [`Lin`], the inclusive upper bound of valid
/// indices.
fn extent_minus_one(e: Extent) -> Lin {
    match e {
        Extent::Const(k) => Lin::constant(k as i128 - 1),
        Extent::NKeys => Lin { c: -1, nkeys: 1, ..Lin::ZERO },
        Extent::BlockDim => Lin { c: -1, bdim: 1, ..Lin::ZERO },
        Extent::Threads => Lin { c: -1, thr: 1, ..Lin::ZERO },
    }
}

fn reg_value(env: &[Option<Lin>], r: GReg) -> Option<Lin> {
    env.get(r.0 as usize).copied().flatten()
}

struct BoundsPass<'k> {
    kernel: &'k GridKernel,
    report: Vec<Diagnostic>,
}

impl BoundsPass<'_> {
    /// Check `buf[index]` at statement `at`. `refines` carries the
    /// guards active on this path as `(value, exclusive upper bound)`
    /// pairs keyed by the guarded value's linear form.
    fn check_access(
        &mut self,
        at: usize,
        kind: &str,
        buf: eks_gpusim::gridir::BufId,
        index: GReg,
        env: &[Option<Lin>],
        refines: &[(Lin, Lin)],
    ) {
        let b = self.kernel.buffer(buf);
        let Some(idx) = reg_value(env, index) else {
            self.report.push(Diagnostic::deny(
                Lint::OutOfBounds,
                Span::at(at),
                format!(
                    "{kind} to `{}[{index}]`: index is not a linear function of the \
                     grid dims, so no bound can be proven",
                    b.name
                ),
            ));
            return;
        };
        if !idx.prove_nonneg() {
            self.report.push(Diagnostic::deny(
                Lint::OutOfBounds,
                Span::at(at),
                format!(
                    "{kind} to `{}[{}]`: cannot prove index ≥ 0 for all grid shapes",
                    b.name,
                    idx.render()
                ),
            ));
            return;
        }
        let upper = extent_minus_one(b.extent);
        let direct = upper.sub(idx).prove_nonneg();
        // A guard `idx < ub` on this path proves the access when the
        // whole guarded range fits: `ub ≤ extent`.
        let guarded = refines.iter().any(|(val, ub)| {
            *val == idx && upper.sub(*ub).add(Lin::constant(1)).prove_nonneg()
        });
        if !direct && !guarded {
            self.report.push(Diagnostic::deny(
                Lint::OutOfBounds,
                Span::at(at),
                format!(
                    "{kind} to `{}[{}]`: cannot prove index < extent ({}) for all \
                     grid shapes (no dominating guard bounds it)",
                    b.name,
                    idx.render(),
                    upper.add(Lin::constant(1)).render()
                ),
            ));
        }
    }

    fn walk(
        &mut self,
        stmts: &[GStmt],
        env: &mut [Option<Lin>],
        refines: &[(Lin, Lin)],
        at: &mut usize,
    ) {
        for s in stmts {
            let here = *at;
            *at += 1;
            match s {
                GStmt::Op { dst, op } => {
                    let v = match *op {
                        GOp::ReadSym(sym) => Some(Lin::sym(sym)),
                        GOp::Const(k) => Some(Lin::constant(k as i128)),
                        GOp::Add(a, b) => match (reg_value(env, a), reg_value(env, b)) {
                            (Some(x), Some(y)) => Some(x.add(y)),
                            _ => None,
                        },
                        GOp::Mul(a, b) => match (reg_value(env, a), reg_value(env, b)) {
                            (Some(x), Some(y)) => x.mul(y),
                            _ => None,
                        },
                        GOp::Load { buf, index } => {
                            self.check_access(here, "load", buf, index, env, refines);
                            None
                        }
                    };
                    if let Some(slot) = env.get_mut(dst.0 as usize) {
                        *slot = v;
                    }
                }
                GStmt::Store { buf, index, .. } => {
                    self.check_access(here, "store", *buf, *index, env, refines);
                }
                GStmt::If { pred, then_, else_ } => {
                    let Pred::Lt(a, b) = *pred;
                    let mut then_env = env.to_vec();
                    let mut then_ref = refines.to_vec();
                    if let (Some(va), Some(vb)) = (reg_value(env, a), reg_value(env, b)) {
                        then_ref.push((va, vb));
                    }
                    self.walk(then_, &mut then_env, &then_ref, at);
                    let mut else_env = env.to_vec();
                    self.walk(else_, &mut else_env, refines, at);
                    // Join: keep only register values the arms agree on.
                    for (slot, (t, e)) in
                        env.iter_mut().zip(then_env.iter().zip(else_env.iter()))
                    {
                        *slot = if t == e { *t } else { None };
                    }
                }
                GStmt::Barrier => {}
                GStmt::Body { writes, .. } => {
                    // The opaque body's outputs are unconstrained.
                    for w in writes {
                        if let Some(slot) = env.get_mut(w.0 as usize) {
                            *slot = None;
                        }
                    }
                }
            }
        }
    }
}

/// Value-range bounds pass: prove every load/store in bounds for all
/// grid shapes.
pub fn check_bounds(kernel: &GridKernel) -> Vec<Diagnostic> {
    let mut pass = BoundsPass { kernel, report: Vec::new() };
    let mut env = vec![None; kernel.regs as usize];
    pass.walk(&kernel.body, &mut env, &[], &mut 0);
    pass.report
}

fn must_defined_walk(
    stmts: &[GStmt],
    defined: &mut [bool],
    at: &mut usize,
    report: &mut Vec<Diagnostic>,
) {
    let read = |r: GReg, what: &str, here: usize, defined: &[bool], report: &mut Vec<Diagnostic>| {
        if !defined.get(r.0 as usize).copied().unwrap_or(false) {
            report.push(Diagnostic::deny(
                Lint::UninitRead,
                Span::at(here),
                format!("{what} reads {r}, which is not defined on every path to here"),
            ));
        }
    };
    for s in stmts {
        let here = *at;
        *at += 1;
        match s {
            GStmt::Op { dst, op } => {
                match *op {
                    GOp::ReadSym(_) | GOp::Const(_) => {}
                    GOp::Add(a, b) | GOp::Mul(a, b) => {
                        read(a, "operation", here, defined, report);
                        read(b, "operation", here, defined, report);
                    }
                    GOp::Load { index, .. } => {
                        read(index, "load index", here, defined, report)
                    }
                }
                if let Some(slot) = defined.get_mut(dst.0 as usize) {
                    *slot = true;
                }
            }
            GStmt::Store { index, value, .. } => {
                read(*index, "store index", here, defined, report);
                read(*value, "store value", here, defined, report);
            }
            GStmt::If { pred, then_, else_ } => {
                let Pred::Lt(a, b) = *pred;
                read(a, "branch guard", here, defined, report);
                read(b, "branch guard", here, defined, report);
                let mut t = defined.to_vec();
                must_defined_walk(then_, &mut t, at, report);
                let mut e = defined.to_vec();
                must_defined_walk(else_, &mut e, at, report);
                // The join is set intersection: defined after the
                // branch only if defined on both arms.
                for (slot, (td, ed)) in defined.iter_mut().zip(t.iter().zip(e.iter())) {
                    *slot = *td && *ed;
                }
            }
            GStmt::Barrier => {}
            GStmt::Body { reads, writes } => {
                for r in reads {
                    read(*r, "kernel body", here, defined, report);
                }
                for w in writes {
                    if let Some(slot) = defined.get_mut(w.0 as usize) {
                        *slot = true;
                    }
                }
            }
        }
    }
}

/// Must-defined dataflow pass: reject reads of registers that some path
/// reaches without a definition.
pub fn check_must_defined(kernel: &GridKernel) -> Vec<Diagnostic> {
    let mut report = Vec::new();
    let mut defined = vec![false; kernel.regs as usize];
    must_defined_walk(&kernel.body, &mut defined, &mut 0, &mut report);
    report
}

fn divergence_walk(
    stmts: &[GStmt],
    varying: &mut Vec<bool>,
    divergent: usize,
    at: &mut usize,
    report: &mut Vec<Diagnostic>,
) {
    let is_varying =
        |v: &[bool], r: GReg| v.get(r.0 as usize).copied().unwrap_or(true);
    for s in stmts {
        let here = *at;
        *at += 1;
        match s {
            GStmt::Op { dst, op } => {
                let v = match *op {
                    // `tid` is the taint source; `bid`, the dims and
                    // the key count are uniform across a block.
                    GOp::ReadSym(Sym::Tid) => true,
                    GOp::ReadSym(_) | GOp::Const(_) => false,
                    GOp::Add(a, b) | GOp::Mul(a, b) => {
                        is_varying(varying, a) || is_varying(varying, b)
                    }
                    // A uniform index loads the same element in every
                    // thread; a varying index does not.
                    GOp::Load { index, .. } => is_varying(varying, index),
                };
                if let Some(slot) = varying.get_mut(dst.0 as usize) {
                    *slot = v;
                }
            }
            GStmt::Store { .. } => {}
            GStmt::If { pred, then_, else_ } => {
                let Pred::Lt(a, b) = *pred;
                let div = is_varying(varying, a) || is_varying(varying, b);
                let depth = divergent + usize::from(div);
                divergence_walk(then_, varying, depth, at, report);
                divergence_walk(else_, varying, depth, at, report);
            }
            GStmt::Barrier => {
                if divergent > 0 {
                    report.push(Diagnostic::deny(
                        Lint::BarrierDivergence,
                        Span::at(here),
                        "block barrier inside a thread-divergent branch: threads \
                         failing the guard can never reach it"
                            .to_string(),
                    ));
                }
            }
            GStmt::Body { reads, writes } => {
                let v = reads.iter().any(|r| is_varying(varying, *r));
                for w in writes {
                    if let Some(slot) = varying.get_mut(w.0 as usize) {
                        *slot = v;
                    }
                }
            }
        }
    }
}

/// Barrier-divergence lint: reject block barriers under thread-varying
/// guards.
pub fn check_divergence(kernel: &GridKernel) -> Vec<Diagnostic> {
    let mut report = Vec::new();
    let mut varying = vec![false; kernel.regs as usize];
    divergence_walk(&kernel.body, &mut varying, 0, &mut 0, &mut report);
    report
}

/// Run all three grid-IR soundness passes over `kernel`.
pub fn analyze_grid(kernel: &GridKernel) -> Report {
    let mut report = Report::new(kernel.name.clone(), "grid");
    report.extend(check_bounds(kernel));
    report.extend(check_must_defined(kernel));
    report.extend(check_divergence(kernel));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_gpusim::gridir::{
        mutant_divergent_barrier, mutant_unguarded_store, mutant_uninit_read,
        search_wrapper, GridBuilder,
    };

    #[test]
    fn lin_proves_the_global_thread_index_bounds() {
        // gid = bid·blockDim + tid < blockDim·gridDim
        let gid = Lin { tid: 1, bxb: 1, ..Lin::ZERO };
        assert!(gid.prove_nonneg());
        let slack = extent_minus_one(Extent::Threads).sub(gid);
        assert!(slack.prove_nonneg(), "thr-1-gid must be provable");
        // …but gid < nKeys is NOT provable without the tail guard.
        assert!(!extent_minus_one(Extent::NKeys).sub(gid).prove_nonneg());
    }

    #[test]
    fn canonical_wrapper_is_clean() {
        let r = analyze_grid(&search_wrapper("md5/optimized"));
        assert_eq!(r.denials(), 0, "{}", r.render_text());
        assert_eq!(r.warnings(), 0, "{}", r.render_text());
    }

    #[test]
    fn unguarded_store_is_out_of_bounds() {
        let r = analyze_grid(&mutant_unguarded_store("md5/mutant"));
        assert!(
            r.diagnostics.iter().any(|d| d.lint == Lint::OutOfBounds),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn uninit_read_is_flagged() {
        let r = analyze_grid(&mutant_uninit_read("md5/mutant"));
        assert!(
            r.diagnostics.iter().any(|d| d.lint == Lint::UninitRead),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn divergent_barrier_is_flagged() {
        let r = analyze_grid(&mutant_divergent_barrier("md5/mutant"));
        assert!(
            r.diagnostics.iter().any(|d| d.lint == Lint::BarrierDivergence),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn block_uniform_guard_keeps_barriers_legal() {
        // if bid < gridDim { barrier } — every thread of a block takes
        // the same arm, so the barrier is fine.
        let mut b = GridBuilder::new("uniform-guard");
        let bid = b.sym(Sym::Bid);
        let gdim = b.sym(Sym::GridDim);
        b.if_lt(bid, gdim, |b| b.barrier(), |_| {});
        let r = analyze_grid(&b.finish());
        assert_eq!(r.denials(), 0, "{}", r.render_text());
    }

    #[test]
    fn guard_must_actually_dominate_the_access() {
        // if gid < nKeys { } ... out[gid] — the guard closed before the
        // store, so the bounds pass must still reject it.
        let mut b = GridBuilder::new("guard-out-of-scope");
        let out = b.buffer("out", Extent::NKeys);
        let tid = b.sym(Sym::Tid);
        let bid = b.sym(Sym::Bid);
        let bdim = b.sym(Sym::BlockDim);
        let base = b.mul(bid, bdim);
        let gid = b.add(base, tid);
        let nkeys = b.sym(Sym::NKeys);
        b.if_lt(gid, nkeys, |_| {}, |_| {});
        b.store(out, gid, tid);
        let r = analyze_grid(&b.finish());
        assert!(
            r.diagnostics.iter().any(|d| d.lint == Lint::OutOfBounds),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn constant_extent_indices_fold() {
        let mut b = GridBuilder::new("const-extent");
        let tab = b.buffer("tab", Extent::Const(16));
        let i = b.constant(15);
        let v = b.load(tab, i);
        let j = b.constant(16);
        b.store(tab, j, v);
        let r = analyze_grid(&b.finish());
        // load tab[15] fine; store tab[16] out of bounds.
        let oob: Vec<_> =
            r.diagnostics.iter().filter(|d| d.lint == Lint::OutOfBounds).collect();
        assert_eq!(oob.len(), 1, "{}", r.render_text());
        let d = oob.first().unwrap();
        assert!(d.message.contains("store"), "{}", d.message);
    }

    #[test]
    fn spans_use_preorder_statement_numbering() {
        let r = analyze_grid(&mutant_unguarded_store("m"));
        let k = mutant_unguarded_store("m");
        let d =
            r.diagnostics.iter().find(|d| d.lint == Lint::OutOfBounds).unwrap();
        assert!(d.span.start < k.stmt_count());
        assert_eq!(d.span.len, 1);
    }
}
