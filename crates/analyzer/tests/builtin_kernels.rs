//! The full lint pipeline over every built-in kernel variant — the
//! tentpole's end-to-end contract. Optimized variants must come out of
//! the per-architecture peephole pass clean; naive variants must show
//! exactly the missed lowerings the paper fixes by hand (`__byte_perm`
//! on cc 3.0, the funnel shift on cc 3.5); nothing may produce a
//! deny-level diagnostic at the documented budget tolerance.

use eks_analyzer::{analyze_compiled, analyze_ir, md5_budget_report, Lint, DEFAULT_TOLERANCE};
use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::{lower, LoweringOptions};
use eks_gpusim::isa::{KernelIr, Reg};
use eks_kernels::baseline::{Tool, ToolKernel};
use eks_kernels::host::HashAlgo;
use eks_kernels::md4::{build_md4, ntlm_words_for_key_len, Md4Variant};
use eks_kernels::md5::{build_md5, Md5Variant};
use eks_kernels::sha1::{build_sha1, sha1_words_for_key_len, Sha1Variant};
use eks_kernels::words_for_key_len;

/// Dead-store roots: comparison outputs plus loop-carried registers.
fn roots(outputs: &[Reg], carried: &[Reg]) -> Vec<Reg> {
    let mut r = outputs.to_vec();
    r.extend_from_slice(carried);
    r
}

fn lint_counts(ir: &KernelIr, opts: LoweringOptions) -> std::collections::BTreeMap<Lint, usize> {
    let report = analyze_compiled(&lower(ir, opts));
    let mut by = std::collections::BTreeMap::new();
    for d in &report.diagnostics {
        *by.entry(d.lint).or_insert(0usize) += 1;
    }
    by
}

#[test]
fn every_builtin_ir_is_dataflow_clean() {
    let mut built = Vec::new();
    for v in [Md5Variant::Naive, Md5Variant::Reversed, Md5Variant::Optimized] {
        built.push(build_md5(v, &words_for_key_len(4)));
    }
    for v in [Sha1Variant::Naive, Sha1Variant::Optimized] {
        let b = build_sha1(v, &sha1_words_for_key_len(4));
        built.push(eks_kernels::md5::BuiltKernel {
            ir: b.ir,
            outputs: b.outputs,
            carried: b.carried,
        });
    }
    for v in [Md4Variant::Naive, Md4Variant::Reversed, Md4Variant::Optimized] {
        let b = build_md4(v, &ntlm_words_for_key_len(4));
        built.push(eks_kernels::md5::BuiltKernel {
            ir: b.ir,
            outputs: b.outputs,
            carried: b.carried,
        });
    }
    for b in &built {
        let report = analyze_ir(&b.ir, Some(&roots(&b.outputs, &b.carried)));
        assert!(
            report.diagnostics.is_empty(),
            "{} should be dataflow-clean:\n{}",
            b.ir.name,
            report.render_text()
        );
    }
}

#[test]
fn optimized_md5_is_lint_clean_on_every_architecture() {
    let b = build_md5(Md5Variant::Optimized, &words_for_key_len(4));
    for cc in ComputeCapability::ALL {
        let report = analyze_compiled(&lower(&b.ir, LoweringOptions::for_cc(cc)));
        assert!(
            report.diagnostics.is_empty(),
            "optimized md5 on cc {} must be clean:\n{}",
            cc.label(),
            report.render_text()
        );
    }
}

#[test]
fn naive_md5_shows_the_papers_missed_lowerings() {
    let b = build_md5(Md5Variant::Naive, &words_for_key_len(4));

    // cc 3.0: round 3's four rotate-by-16s should have been `PRMT`
    // (`__byte_perm`) — the Table VI optimization.
    let by = lint_counts(&b.ir, LoweringOptions::plain(ComputeCapability::Sm30));
    assert_eq!(by.get(&Lint::PrmtMissed), Some(&4), "{by:?}");
    assert_eq!(by.get(&Lint::FunnelMissed), None);

    // cc 3.5: every rotate should have been a funnel shift.
    let by = lint_counts(&b.ir, LoweringOptions::plain(ComputeCapability::Sm35));
    assert_eq!(by.get(&Lint::FunnelMissed), Some(&64), "{by:?}");

    // cc 2.0 has neither instruction; nothing to flag.
    let by = lint_counts(&b.ir, LoweringOptions::plain(ComputeCapability::Sm20));
    assert!(by.is_empty(), "{by:?}");
}

#[test]
fn reversed_md5_flags_fewer_rotates_than_naive() {
    // The 15-step reversal removes rotates along with everything else, so
    // the funnel lint count drops with it (64 -> 49 rotates).
    let naive = build_md5(Md5Variant::Naive, &words_for_key_len(4));
    let reversed = build_md5(Md5Variant::Reversed, &words_for_key_len(4));
    let opts = LoweringOptions::plain(ComputeCapability::Sm35);
    let n = lint_counts(&naive.ir, opts)[&Lint::FunnelMissed];
    let r = lint_counts(&reversed.ir, opts)[&Lint::FunnelMissed];
    assert!(r < n, "reversal must shrink the rotate count ({r} vs {n})");
}

#[test]
fn sha1_and_ntlm_variants_behave_like_md5() {
    // SHA-1 rotates by 1, 5 and 30 — never 16 — so the PRMT lint stays
    // silent even on the naive variant; the funnel lint does not.
    let naive = build_sha1(Sha1Variant::Naive, &sha1_words_for_key_len(4));
    let by = lint_counts(&naive.ir, LoweringOptions::plain(ComputeCapability::Sm30));
    assert_eq!(by.get(&Lint::PrmtMissed), None, "{by:?}");
    let by = lint_counts(&naive.ir, LoweringOptions::plain(ComputeCapability::Sm35));
    assert!(by[&Lint::FunnelMissed] > 0);

    let opt = build_sha1(Sha1Variant::Optimized, &sha1_words_for_key_len(4));
    for cc in ComputeCapability::ALL {
        let report = analyze_compiled(&lower(&opt.ir, LoweringOptions::for_cc(cc)));
        for d in &report.diagnostics {
            // Register pressure warnings are expected on the older parts
            // (SHA-1 holds the whole schedule live); missed-lowering lints
            // are not.
            assert_eq!(d.lint, Lint::RegisterPressure, "{}", report.render_text());
        }
    }

    // NTLM (MD4): optimized lowering is clean everywhere.
    let opt = build_md4(Md4Variant::Optimized, &ntlm_words_for_key_len(4));
    for cc in ComputeCapability::ALL {
        let report = analyze_compiled(&lower(&opt.ir, LoweringOptions::for_cc(cc)));
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }
    let naive = build_md4(Md4Variant::Naive, &ntlm_words_for_key_len(4));
    let by = lint_counts(&naive.ir, LoweringOptions::plain(ComputeCapability::Sm35));
    assert!(by[&Lint::FunnelMissed] > 0);
}

#[test]
fn baseline_tool_kernels_never_deny() {
    // The Table VIII baselines (BarsWF, Cryptohaze) lower with their own
    // option sets; the analyzer may warn about what they leave on the
    // table but must not produce deny-level diagnostics.
    for tool in [Tool::OurApproach, Tool::BarsWf, Tool::Cryptohaze] {
        for algo in [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm] {
            for cc in ComputeCapability::ALL {
                let tk = ToolKernel::build(tool, algo, cc);
                let report = analyze_compiled(&lower(&tk.ir, tk.options));
                assert_eq!(
                    report.denials(),
                    0,
                    "{:?}/{:?} on cc {}:\n{}",
                    tool,
                    algo,
                    cc.label(),
                    report.render_text()
                );
            }
        }
    }
}

#[test]
fn budgets_hold_at_documented_tolerance_and_trip_at_zero() {
    let ok = md5_budget_report(DEFAULT_TOLERANCE);
    assert_eq!(ok.denials(), 0, "{}", ok.render_text());
    // Our builder tracks the published mixes within a few percent, not
    // exactly; a zero tolerance therefore must fail the gate.
    let strict = md5_budget_report(0.0);
    assert!(strict.denials() > 0);
    assert!(strict.diagnostics.iter().all(|d| d.lint == Lint::BudgetDrift));
}
