//! Property tests for the analyzer's two semantic claims:
//!
//! 1. Dead-store elimination never changes the values a kernel computes
//!    at its roots — checked on random straight-line IR and on the real
//!    MD5 kernels against the host hash implementation.
//! 2. The reported live-register count is a sound upper bound on the
//!    true number of simultaneously-needed values, checked against an
//!    independent brute-force reference on random lowered streams.

use eks_analyzer::eliminate_dead_stores;
use eks_core::prop::{forall, Rng};
use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::{lower, LoweringOptions};
use eks_gpusim::isa::{KernelBuilder, KernelIr, MachineInstr, Reg};
use eks_gpusim::liveness;
use eks_hashes::md5::{md5_compress, IV};
use eks_hashes::padding::pad_md5_block;
use eks_kernels::md5::{build_md5, BuiltKernel, Md5Variant};
use eks_kernels::{words_for_key_len, WordSource};

/// A random straight-line program over `n_params` parameters. Returns
/// the IR and every register in definition order.
fn random_ir(rng: &mut Rng) -> (KernelIr, Vec<Reg>, usize) {
    let mut b = KernelBuilder::new("random");
    let n_params = rng.range(1, 3) as usize;
    let mut regs: Vec<Reg> = (0..n_params).map(|i| b.param(i as u32)).collect();
    let n_ops = rng.range(5, 40);
    for _ in 0..n_ops {
        let a = regs[rng.index(regs.len())];
        let c = regs[rng.index(regs.len())];
        let r = match rng.below(8) {
            0 => b.add(a, c),
            1 => b.and(a, c),
            2 => b.or(a, c),
            3 => b.xor(a, c),
            4 => b.not(a),
            5 => b.shl(a, rng.range(0, 31) as u32),
            6 => b.shr(a, rng.range(0, 31) as u32),
            _ => b.rotl(a, rng.range(1, 31) as u32),
        };
        regs.push(r);
    }
    (b.build(), regs, n_params)
}

/// DSE preserves every root's value on arbitrary programs, arbitrary
/// root choices and arbitrary inputs — even though it may remove a large
/// fraction of the operations.
#[test]
fn dse_preserves_roots_on_random_programs() {
    forall("dse_preserves_roots_on_random_programs", 256, |rng| {
        let (ir, regs, n_params) = random_ir(rng);
        // Roots: the final register plus a few random earlier ones.
        let mut roots = vec![*regs.last().unwrap()];
        for _ in 0..rng.index(3) {
            roots.push(regs[rng.index(regs.len())]);
        }
        let pruned = eliminate_dead_stores(&ir, &roots);
        assert!(pruned.ops.len() <= ir.ops.len());

        let params: Vec<u32> = (0..n_params).map(|_| rng.u32()).collect();
        let full = ir.evaluate(&params);
        let small = pruned.evaluate(&params);
        for r in &roots {
            assert_eq!(
                full[r.0 as usize], small[r.0 as usize],
                "root {r:?} changed after DSE"
            );
        }
    });
}

/// DSE on the real MD5 kernels: the pruned naive kernel still computes
/// the exact digest the host implementation computes, and every variant
/// keeps its comparison outputs bit-identical.
#[test]
fn dse_preserves_md5_digests() {
    forall("dse_preserves_md5_digests", 64, |rng| {
        let key_len = rng.range(1, 12) as usize;
        let key: Vec<u8> = rng.vec(key_len, |r| r.range(0x21, 0x7e) as u8);
        let words = words_for_key_len(key.len());
        let block = pad_md5_block(&key);
        let n_params = words.iter().filter(|s| matches!(s, WordSource::Param(_))).count();
        let params: Vec<u32> = block[..n_params].to_vec();

        for variant in [Md5Variant::Naive, Md5Variant::Reversed, Md5Variant::Optimized] {
            let BuiltKernel { ir, outputs, carried } = build_md5(variant, &words);
            let mut roots = outputs.clone();
            roots.extend_from_slice(&carried);
            let pruned = eliminate_dead_stores(&ir, &roots);

            let full = ir.evaluate(&params);
            let small = pruned.evaluate(&params);
            for r in &roots {
                assert_eq!(full[r.0 as usize], small[r.0 as usize], "{variant:?}");
            }
            if variant == Md5Variant::Naive {
                let want = md5_compress(IV, &block);
                let got: Vec<u32> = outputs.iter().map(|r| small[r.0 as usize]).collect();
                assert_eq!(got, want.to_vec(), "pruned naive kernel must still be MD5");
            }
        }
    });
}

/// Independent brute-force reference: at each instruction, count the
/// registers whose value is already produced (or enters as a parameter)
/// and is still read at or after this point, plus the register being
/// written here. The analyzer's figure must never be below this.
fn brute_force_max_live(instrs: &[MachineInstr]) -> u32 {
    let mut regs: Vec<Reg> = Vec::new();
    for ins in instrs {
        for r in std::iter::once(ins.dst).chain(ins.srcs.iter().copied()) {
            if !regs.contains(&r) {
                regs.push(r);
            }
        }
    }
    let mut max = 0u32;
    for i in 0..instrs.len() {
        let mut live = 0u32;
        for &r in &regs {
            let born = instrs
                .iter()
                .position(|ins| ins.dst == r || ins.srcs.contains(&r))
                .unwrap();
            let param = instrs[born].dst != r || instrs[born].srcs.contains(&r);
            let available = born <= i || param;
            let read_later = instrs[i..].iter().any(|ins| ins.srcs.contains(&r));
            if (available && read_later) || instrs[i].dst == r {
                live += 1;
            }
        }
        max = max.max(live);
    }
    max
}

/// The live-range analysis is sound: its maximum is an upper bound on
/// the true simultaneous-live count for arbitrary programs under every
/// lowering option set, and its ranges cover every actual use.
#[test]
fn reported_pressure_bounds_true_pressure() {
    forall("reported_pressure_bounds_true_pressure", 128, |rng| {
        let (ir, _, _) = random_ir(rng);
        let cc = ComputeCapability::ALL[rng.index(ComputeCapability::ALL.len())];
        let opts = if rng.below(2) == 0 {
            LoweringOptions::plain(cc)
        } else {
            LoweringOptions::for_cc(cc)
        };
        let kernel = lower(&ir, opts);

        let reported = liveness::max_live(&kernel.instrs);
        let truth = brute_force_max_live(&kernel.instrs);
        assert!(
            reported >= truth,
            "reported {reported} < true simultaneous-live {truth}"
        );

        // Every read and write position falls inside the register's range.
        let ranges = liveness::live_ranges(&kernel.instrs);
        for (i, ins) in kernel.instrs.iter().enumerate() {
            for r in std::iter::once(ins.dst).chain(ins.srcs.iter().copied()) {
                let range = ranges.iter().find(|lr| lr.reg == r).unwrap();
                assert!(range.contains(i), "{r:?} used at {i} outside its range");
            }
        }

        // And the occupancy model agrees with the analyzer's estimate.
        let report = eks_analyzer::check_pressure(&kernel);
        assert!(!report
            .iter()
            .any(|d| d.lint == eks_analyzer::Lint::PressureModelMismatch));
    });
}
