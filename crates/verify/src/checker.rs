//! Bounded exhaustive exploration of the scheduler model.
//!
//! A plain depth-first search over [`Model::enabled`] /
//! [`Model::apply`], with three standard moves to keep small configs
//! tractable without giving up soundness for the state-local properties
//! we check:
//!
//! * **State hashing** — every generated [`ModelState`] lands in a
//!   visited table; a state is re-explored only when it can now be
//!   entered with *fewer* sleeping actions than any earlier visit (see
//!   below), so the search is linear in distinct states, not in paths.
//! * **Sleep sets** (Godefroid) — after exploring action `a` from a
//!   state, every sibling branch puts `a` to sleep for as long as only
//!   actions independent of `a` execute; the interleaving `b·a` is then
//!   pruned because `a·b` already covered its destination. Sleep sets
//!   prune *transitions*, never states, so every reachable state is
//!   still generated and checked.
//! * **Invisible-action priority** — `Exit` only flips a private done
//!   flag and `Merge` is only enabled once all workers are done; both
//!   commute with every concurrently enabled action and stay enabled
//!   until taken, so exploring them alone (a singleton ample set) is
//!   sound and collapses the factorial tail of exit orders.
//!
//! Soundness caveat for sleep sets + state caching: skipping a visited
//! state is only safe when the earlier visit explored at least as much,
//! i.e. its sleep set was a subset of the current one. The visited table
//! therefore stores the sleep sets each state was entered with.
//!
//! Every generated state is checked against [`Model::check_invariants`]
//! the moment it is created; a violation aborts the search and carries
//! the full DFS path — the schedule plus a deque-state summary per step
//! — as a counterexample trace.

use std::collections::{BTreeSet, HashMap};

use crate::model::{Action, Fault, Model, ModelConfig, ModelState, Property};

/// Exploration bounds and switches.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Maximum schedule length (DFS depth). Deeper paths mark the
    /// outcome truncated instead of being followed.
    pub max_depth: usize,
    /// Maximum number of distinct states to store before giving up.
    pub max_states: u64,
    /// Enable the sleep-set + invisible-action reduction. Turn off to
    /// force the checker through every raw interleaving — the mutant
    /// tests do, so a reduction bug cannot mask a protocol bug.
    pub reduction: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { max_depth: 256, max_states: 2_000_000, reduction: true }
    }
}

/// One step of a counterexample: the action taken and a one-line
/// summary of the state it produced.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The scheduled action.
    pub action: Action,
    /// `ModelState::summary()` of the successor.
    pub state: String,
}

/// A checked property that failed, with the schedule that falsifies it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which property broke.
    pub property: Property,
    /// Human-readable description of the broken invariant.
    pub message: String,
    /// The DFS path from the initial state to the violating state.
    pub trace: Vec<TraceStep>,
}

impl Violation {
    /// Render the violation with its full counterexample trace.
    pub fn render(&self) -> String {
        let mut out = format!("violation of {}: {}\n", self.property, self.message);
        out.push_str(&format!("counterexample schedule ({} steps):\n", self.trace.len()));
        for (i, step) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {:>3}. {:<16} {}\n", i + 1, step.action.to_string(), step.state));
        }
        out
    }
}

/// What a bounded exploration found.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Distinct states generated (including the initial state).
    pub states: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Longest schedule explored.
    pub deepest: usize,
    /// True when a bound (`max_depth` / `max_states`) cut exploration
    /// short: the verdict is then only valid up to the bound.
    pub truncated: bool,
    /// Every distinct merge result reached on some complete schedule.
    pub outcomes: BTreeSet<Vec<u128>>,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
}

impl CheckOutcome {
    /// True when the exploration completed with no violation.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

struct Search<'m> {
    model: &'m Model,
    opts: CheckOptions,
    /// Visited states, each with the sleep sets it was explored under.
    visited: HashMap<ModelState, Vec<Vec<Action>>>,
    states: u64,
    transitions: u64,
    deepest: usize,
    truncated: bool,
    outcomes: BTreeSet<Vec<u128>>,
    trace: Vec<TraceStep>,
    violation: Option<Violation>,
}

impl Search<'_> {
    fn fault(&mut self, (property, message): Fault) {
        if self.violation.is_none() {
            self.violation =
                Some(Violation { property, message, trace: self.trace.clone() });
        }
    }

    fn dfs(&mut self, s: &ModelState, sleep: Vec<Action>, depth: usize) {
        if self.violation.is_some() {
            return;
        }
        self.deepest = self.deepest.max(depth);
        if let Some(m) = s.merged() {
            self.outcomes.insert(m.to_vec());
            return;
        }
        let enabled = self.model.enabled(s);
        if enabled.is_empty() {
            return;
        }
        if depth >= self.opts.max_depth {
            self.truncated = true;
            return;
        }
        // Invisible-action priority: explore a pending Exit/Merge alone.
        let candidates: Vec<Action> = if self.opts.reduction {
            match enabled
                .iter()
                .copied()
                .find(|a| matches!(a, Action::Exit { .. } | Action::Merge))
            {
                Some(a) => vec![a],
                None => enabled,
            }
        } else {
            enabled
        };
        let mut sleep_acc = sleep;
        for a in candidates {
            if self.opts.reduction && sleep_acc.binary_search(&a).is_ok() {
                continue;
            }
            let next = match self.model.apply(s, a) {
                Ok(next) => next,
                Err(fault) => {
                    self.trace.push(TraceStep { action: a, state: "<fault>".into() });
                    self.fault(fault);
                    self.trace.pop();
                    return;
                }
            };
            self.transitions += 1;
            self.trace.push(TraceStep { action: a, state: next.summary() });
            if let Err(fault) = self.model.check_invariants(&next) {
                self.fault(fault);
                self.trace.pop();
                return;
            }
            // The sibling sleep set survives into the child only where
            // independent of the action just taken.
            let child_sleep: Vec<Action> = sleep_acc
                .iter()
                .copied()
                .filter(|b| self.model.independent(s, a, *b))
                .collect();
            let explore = match self.visited.get(&next) {
                None => true,
                Some(prior) if self.opts.reduction => {
                    // Re-explore unless some earlier visit slept on a
                    // subset of what we would sleep on now.
                    !prior.iter().any(|p| {
                        p.iter().all(|x| child_sleep.binary_search(x).is_ok())
                    })
                }
                Some(_) => false,
            };
            if explore {
                if self.states >= self.opts.max_states {
                    self.truncated = true;
                    self.trace.pop();
                    return;
                }
                let entry = self.visited.entry(next.clone()).or_default();
                if entry.is_empty() {
                    self.states += 1;
                }
                entry.push(child_sleep.clone());
                self.dfs(&next, child_sleep, depth + 1);
            }
            self.trace.pop();
            if self.violation.is_some() {
                return;
            }
            if let Err(pos) = sleep_acc.binary_search(&a) {
                sleep_acc.insert(pos, a);
            }
        }
    }
}

/// Exhaustively explore every interleaving of `cfg` up to `opts`'
/// bounds, checking all four protocol properties at every generated
/// state.
pub fn check(cfg: ModelConfig, opts: CheckOptions) -> CheckOutcome {
    let first_hit = cfg.first_hit;
    let model = Model::new(cfg);
    let initial = model.initial();
    let mut search = Search {
        model: &model,
        opts,
        visited: HashMap::new(),
        states: 1,
        transitions: 0,
        deepest: 0,
        truncated: false,
        outcomes: BTreeSet::new(),
        trace: Vec::new(),
        violation: None,
    };
    if let Err(fault) = model.check_invariants(&initial) {
        search.fault(fault);
    } else {
        search.visited.insert(initial.clone(), vec![Vec::new()]);
        search.dfs(&initial, Vec::new(), 0);
    }
    let mut outcome = CheckOutcome {
        states: search.states,
        transitions: search.transitions,
        deepest: search.deepest,
        truncated: search.truncated,
        outcomes: search.outcomes,
        violation: search.violation,
    };
    // Exhaustive mode must be schedule-deterministic: every complete
    // interleaving reaches the same merge result. (First-hit outcomes
    // legitimately depend on the race — there the per-state merge rule
    // is what check_invariants pins.)
    if outcome.violation.is_none() && !first_hit && outcome.outcomes.len() > 1 {
        let rendered: Vec<String> =
            outcome.outcomes.iter().map(|o| format!("{o:?}")).collect();
        outcome.violation = Some(Violation {
            property: Property::MergeDeterminism,
            message: format!(
                "exhaustive merge is schedule-dependent: saw outcomes {}",
                rendered.join(" vs ")
            ),
            trace: Vec::new(),
        });
    }
    outcome
}

/// A named model-checking configuration, as surfaced by `eks verify`.
#[derive(Debug, Clone)]
pub struct NamedCheck {
    /// Stable check name (`scheduler/<shape>`).
    pub name: &'static str,
    /// What the check claims when green.
    pub claim: &'static str,
    /// The configuration to explore.
    pub config: ModelConfig,
}

/// The standard scheduler-protocol check suite for a given worker
/// count and number of two-key work intervals: exhaustive + first-hit
/// stealing, guided chunk sizing, the cancellation-bound prober, and a
/// no-steal static baseline.
pub fn standard_checks(workers: usize, intervals: u128) -> Vec<NamedCheck> {
    use eks_engine::ChunkPolicy;
    let keys = intervals.max(1) * 2;
    vec![
        NamedCheck {
            name: "scheduler/exhaustive-steal",
            claim: "exactly-once coverage and schedule-independent merge under steal-half",
            config: ModelConfig::steal_intervals(workers, intervals.max(1)),
        },
        NamedCheck {
            name: "scheduler/exhaustive-guided",
            claim: "guided chunk sizing preserves the lease partition",
            config: ModelConfig {
                chunk: ChunkPolicy::Guided { min: 1 },
                quantum: 2,
                ..ModelConfig::exhaustive(workers, keys)
            },
        },
        NamedCheck {
            name: "scheduler/first-hit",
            claim: "lowest-id merge rule holds on every racing schedule",
            config: ModelConfig::first_hit(workers, keys),
        },
        NamedCheck {
            name: "scheduler/cancel-bound",
            claim: "post-cancel overshoot stays within K + workers x quantum",
            config: ModelConfig::cancel_bound(workers, keys),
        },
        NamedCheck {
            name: "scheduler/static-no-steal",
            claim: "the static scatter needs no steals to cover the keyspace",
            config: ModelConfig {
                steal: false,
                ..ModelConfig::exhaustive(workers, keys)
            },
        },
        NamedCheck {
            name: "scheduler/rescatter-steal",
            claim: "live-rate re-scatter at arbitrary points preserves all four properties under steal-half",
            config: ModelConfig::exhaustive(workers, keys)
                .with_rescatter(rescatter_weights(workers)),
        },
        NamedCheck {
            name: "scheduler/rescatter-static",
            claim: "re-scatter alone (no steals, drained workers waiting) still covers the keyspace exactly once",
            config: ModelConfig { steal: false, ..ModelConfig::exhaustive(workers, keys) }
                .with_rescatter(rescatter_weights(workers)),
        },
        NamedCheck {
            name: "scheduler/rescatter-first-hit",
            claim: "the lowest-id merge rule survives re-scatters racing the stop flag",
            config: ModelConfig::first_hit(workers, keys)
                .with_rescatter(rescatter_weights(workers)),
        },
    ]
}

/// The canonical live-weight vectors the re-scatter checks explore: a
/// first-worker-heavy skew and its mirror — enough to move work both
/// directions at any reachable remainder shape.
fn rescatter_weights(workers: usize) -> Vec<Vec<f64>> {
    let mut head_heavy = vec![1.0; workers];
    *head_heavy.first_mut().expect("workers >= 1") = 3.0;
    let mut tail_heavy = vec![1.0; workers];
    *tail_heavy.last_mut().expect("workers >= 1") = 3.0;
    vec![head_heavy, tail_heavy]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mutation;

    #[test]
    fn exhaustive_two_workers_eight_intervals_is_clean_and_nontrivial() {
        // The acceptance config: 2 workers, 8 two-key work intervals.
        let out = check(ModelConfig::steal_intervals(2, 8), CheckOptions::default());
        assert!(out.clean(), "{}", out.violation.unwrap().render());
        assert!(!out.truncated);
        assert!(out.states > 1_000, "only {} states explored", out.states);
        assert_eq!(out.outcomes.len(), 1, "exhaustive merge must be deterministic");
        assert_eq!(out.outcomes.iter().next().unwrap(), &vec![1, 15]);
    }

    #[test]
    fn reduction_preserves_the_verdict_and_outcomes() {
        let full = check(
            ModelConfig::exhaustive(2, 4),
            CheckOptions { reduction: false, ..CheckOptions::default() },
        );
        let reduced = check(ModelConfig::exhaustive(2, 4), CheckOptions::default());
        assert!(full.clean() && reduced.clean());
        assert_eq!(full.outcomes, reduced.outcomes);
        assert!(
            reduced.transitions <= full.transitions,
            "reduction explored more transitions ({} > {})",
            reduced.transitions,
            full.transitions
        );
    }

    #[test]
    fn first_hit_merges_lowest_on_every_schedule() {
        let out = check(ModelConfig::first_hit(2, 6), CheckOptions::default());
        assert!(out.clean(), "{}", out.violation.unwrap().render());
        // Racing schedules may report either planted hit, but every
        // outcome is a single lowest-of-reported identifier.
        for o in &out.outcomes {
            assert_eq!(o.len(), 1);
            assert!(o == &vec![1] || o == &vec![5], "unexpected outcome {o:?}");
        }
    }

    #[test]
    fn cancel_bound_holds_for_the_big_chunk_prober() {
        let out = check(ModelConfig::cancel_bound(2, 8), CheckOptions::default());
        assert!(out.clean(), "{}", out.violation.unwrap().render());
    }

    #[test]
    fn standard_suite_is_clean_for_small_configs() {
        for workers in 1..=2 {
            for c in standard_checks(workers, 6) {
                let out = check(c.config, CheckOptions::default());
                assert!(
                    out.clean(),
                    "{} violated:\n{}",
                    c.name,
                    out.violation.unwrap().render()
                );
                assert!(!out.truncated, "{} truncated", c.name);
            }
        }
    }

    #[test]
    fn dropped_lease_mutant_is_flagged_with_a_trace() {
        let out = check(
            ModelConfig::exhaustive(2, 8).with_mutation(Mutation::DropStolenLease),
            CheckOptions { reduction: false, ..CheckOptions::default() },
        );
        let v = out.violation.expect("mutant must be flagged");
        assert_eq!(v.property, Property::NoLostLease);
        assert!(!v.trace.is_empty(), "counterexample must carry a schedule");
        assert!(v.render().contains("steal("), "trace must show the faulty steal");
    }

    #[test]
    fn double_count_mutant_breaks_exactly_once() {
        let out = check(
            ModelConfig::exhaustive(2, 8).with_mutation(Mutation::DoubleCountSteal),
            CheckOptions::default(),
        );
        let v = out.violation.expect("mutant must be flagged");
        assert_eq!(v.property, Property::ExactlyOnce);
    }

    #[test]
    fn merge_highest_mutant_breaks_the_merge_rule() {
        let out = check(
            ModelConfig::first_hit(2, 6).with_mutation(Mutation::MergeHighestFirst),
            CheckOptions::default(),
        );
        let v = out.violation.expect("mutant must be flagged");
        assert_eq!(v.property, Property::MergeDeterminism);
        assert!(v.trace.iter().any(|s| s.action == Action::Merge));
    }

    #[test]
    fn ignore_cancel_mutant_breaks_the_cancellation_bound() {
        let out = check(
            ModelConfig::cancel_bound(2, 8).with_mutation(Mutation::IgnoreCancelPoll),
            CheckOptions::default(),
        );
        let v = out.violation.expect("mutant must be flagged");
        assert_eq!(v.property, Property::CancellationBound);
    }

    #[test]
    fn depth_bound_marks_truncation() {
        let out = check(
            ModelConfig::exhaustive(2, 8),
            CheckOptions { max_depth: 4, ..CheckOptions::default() },
        );
        assert!(out.truncated);
        assert!(out.clean(), "a truncated run without violations is still clean");
    }
}
