//! An explicit-state model of the work-stealing scheduler protocol.
//!
//! The live scheduler (`eks_engine::steal::IntervalDeques` driven by
//! `Dispatcher::run_deques`) is a handful of per-worker loops over
//! shared state: pop a chunk off your own deque, scan it one poll
//! quantum at a time, steal the back half of a remote deque when
//! drained, exit when the stop flag is up or everything is empty, merge
//! at the end. This module restates those transitions over a cloneable,
//! hashable [`ModelState`] so the checker in [`crate::checker`] can
//! enumerate *every* interleaving instead of sampling a few.
//!
//! ## Fidelity
//!
//! The model does not re-implement the arithmetic it verifies — it calls
//! the same [`ChunkPolicy::next_len`], [`Interval::take_front`] and
//! [`steal_split`] the live deques use, so the verified transition
//! relation cannot drift from the shipped code. The scan loop is split
//! into two atomic actions ([`Action::ScanBegin`] / [`Action::ScanEnd`])
//! so a stop flag raised *between* them reproduces the real
//! one-quantum-per-worker cancellation overshoot, and the
//! [`Action::Steal`] transition permits *any* nonempty remote victim —
//! the stale-snapshot nondeterminism `IntervalDeques::largest_remote`
//! documents is therefore inside the verified state space, not abstracted
//! away.
//!
//! ## Mutations
//!
//! [`Mutation`] seeds deliberate protocol bugs (lost lease, double
//! count, highest-id merge, ignored cancel poll) used by the
//! negative-path tests: a checker that does not flag every mutant is
//! vacuous.

use std::fmt;

use eks_engine::{rescatter_plan, steal_split, ChunkPolicy};
use eks_keyspace::Interval;

/// A deliberately broken transition relation, for negative-path tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// A steal removes the back half from the victim but never hands it
    /// to the thief: the lease is lost mid-flight.
    DropStolenLease,
    /// A steal hands the back half to the thief while the victim keeps
    /// its full interval: the range is now leased twice.
    DoubleCountSteal,
    /// The merge keeps the *highest*-identifier hit under first-hit
    /// instead of the lowest.
    MergeHighestFirst,
    /// The scan loop never polls the stop flag between quanta, so a
    /// cancelled worker drains its whole popped chunk.
    IgnoreCancelPoll,
}

/// One scheduler configuration to check: the scatter shape, the chunk
/// and poll arithmetic, the planted hits and the optional seeded bug.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Number of workers (deque slots).
    pub workers: usize,
    /// Keyspace size; identifiers are `0..keys`.
    pub keys: u128,
    /// How owners size their pops — the live [`ChunkPolicy`].
    pub chunk: ChunkPolicy,
    /// Whether drained workers steal (false models `SchedPolicy::Static`).
    pub steal: bool,
    /// First-hit mode: a reported hit raises the stop flag.
    pub first_hit: bool,
    /// Identifiers that test positive (the planted keys).
    pub hits: Vec<u128>,
    /// Keys per poll quantum: the model's `poll_quantum`, scaled down so
    /// bounded exploration stays tractable.
    pub quantum: u128,
    /// Canonical live-weight vectors the retune controller may re-scatter
    /// with ([`Action::Rescatter`] indexes into this list). Empty
    /// disables the transition; each vector must have one weight per
    /// worker. The checker explores a re-scatter at *every* point where
    /// the live controller could fire one, so "arbitrary re-scatter
    /// timing" is inside the verified state space.
    pub rescatter: Vec<Vec<f64>>,
    /// Seeded protocol bug, if any.
    pub mutation: Option<Mutation>,
}

impl ModelConfig {
    /// An exhaustive-mode stealing config with two planted hits.
    pub fn exhaustive(workers: usize, keys: u128) -> Self {
        let hits = if keys >= 2 { vec![1, keys - 1] } else { vec![0] };
        ModelConfig {
            workers,
            keys,
            chunk: ChunkPolicy::Fixed(1),
            steal: true,
            first_hit: false,
            hits,
            quantum: 1,
            rescatter: Vec::new(),
            mutation: None,
        }
    }

    /// An exhaustive-mode stealing config whose keyspace is popped as
    /// `intervals` two-key work intervals — the shape the acceptance
    /// bar fixes ("2 workers / 8 intervals"), with enough interleaving
    /// surface that the checker demonstrably explores a nontrivial
    /// state space.
    pub fn steal_intervals(workers: usize, intervals: u128) -> Self {
        ModelConfig {
            chunk: ChunkPolicy::Fixed(2),
            ..Self::exhaustive(workers, intervals * 2)
        }
    }

    /// A first-hit stealing config with hits planted at both ends, so
    /// different interleavings race to report different keys and the
    /// lowest-id merge rule actually has work to do.
    pub fn first_hit(workers: usize, keys: u128) -> Self {
        ModelConfig { first_hit: true, ..Self::exhaustive(workers, keys) }
    }

    /// The cancellation-bound prober: one big pop per worker (the chunk
    /// spans the whole share) scanned one key per quantum, with a hit at
    /// identifier 0 — the worst case for post-cancel overshoot.
    pub fn cancel_bound(workers: usize, keys: u128) -> Self {
        ModelConfig {
            workers,
            keys,
            chunk: ChunkPolicy::Fixed(keys.max(1)),
            steal: true,
            first_hit: true,
            hits: vec![0],
            quantum: 1,
            rescatter: Vec::new(),
            mutation: None,
        }
    }

    /// Attach a seeded bug.
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = Some(mutation);
        self
    }

    /// Enable the re-scatter transition with these canonical live-weight
    /// vectors (one weight per worker in each).
    pub fn with_rescatter(mut self, weights: Vec<Vec<f64>>) -> Self {
        self.rescatter = weights;
        self
    }
}

/// One atomic step of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Action {
    /// `worker` pops the next chunk off the front of its own deque.
    Pop {
        /// The popping worker.
        worker: usize,
    },
    /// `worker` starts the next poll quantum of its popped chunk —
    /// checking the stop flag first, exactly like `PollCursor`.
    ScanBegin {
        /// The scanning worker.
        worker: usize,
    },
    /// `worker` finishes the quantum: keys are counted and covered,
    /// hits reported, and (first-hit mode) the stop flag raised.
    ScanEnd {
        /// The scanning worker.
        worker: usize,
    },
    /// Drained `worker` steals the back half of `victim`'s deque.
    Steal {
        /// The thief.
        worker: usize,
        /// The victim slot (any nonempty remote slot — the model keeps
        /// the live victim-selection race nondeterministic).
        victim: usize,
    },
    /// `worker` leaves the run loop (stop flag up, or nothing left).
    Exit {
        /// The exiting worker.
        worker: usize,
    },
    /// The retune controller re-scatters every deque remainder using
    /// the live-weight vector `ModelConfig::rescatter[plan]` — the same
    /// [`rescatter_plan`] arithmetic `IntervalDeques::rescatter` runs,
    /// with exited workers masked to weight zero the way retired slots
    /// are live.
    Rescatter {
        /// Index into [`ModelConfig::rescatter`].
        plan: usize,
    },
    /// The gather/merge step, once every worker has exited.
    Merge,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::Pop { worker } => write!(f, "pop(w{worker})"),
            Action::ScanBegin { worker } => write!(f, "scan-begin(w{worker})"),
            Action::ScanEnd { worker } => write!(f, "scan-end(w{worker})"),
            Action::Steal { worker, victim } => write!(f, "steal(w{worker}<-w{victim})"),
            Action::Exit { worker } => write!(f, "exit(w{worker})"),
            Action::Rescatter { plan } => write!(f, "rescatter(#{plan})"),
            Action::Merge => write!(f, "merge"),
        }
    }
}

/// The property a violation is charged against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// Some identifier was scanned (or leased) more than once.
    ExactlyOnce,
    /// Some identifier fell out of every lease: the union of deques,
    /// in-flight chunks, scanned and abandoned coverage no longer tiles
    /// the keyspace.
    NoLostLease,
    /// The merge broke its contract: not the lowest reported identifier
    /// under first-hit, or exhaustive outcomes differ across
    /// interleavings.
    MergeDeterminism,
    /// Post-cancel work exceeded `K + workers x quantum`.
    CancellationBound,
}

impl Property {
    /// Stable kebab-case identifier.
    pub fn name(self) -> &'static str {
        match self {
            Property::ExactlyOnce => "exactly-once",
            Property::NoLostLease => "no-lost-lease",
            Property::MergeDeterminism => "merge-determinism",
            Property::CancellationBound => "cancellation-bound",
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A property violation, raised while applying an action or checking a
/// freshly generated state.
pub type Fault = (Property, String);

/// The empty interval, normalized so hashing/equality cannot tell two
/// drained slots apart by their stale start offsets.
const EMPTY: Interval = Interval { start: 0, len: 0 };

fn norm(iv: Interval) -> Interval {
    if iv.len == 0 {
        EMPTY
    } else {
        iv
    }
}

/// A complete snapshot of the protocol: cloneable, hashable, and small
/// enough that millions fit in a visited set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelState {
    /// Per-worker deque slots (the stealable leases).
    slots: Vec<Interval>,
    /// Per-worker popped-but-unscanned chunk remainders.
    in_flight: Vec<Interval>,
    /// Per-worker quantum currently being scanned.
    scanning: Vec<Interval>,
    /// Which workers have left their run loop.
    done: Vec<bool>,
    /// The shared stop flag.
    stop: bool,
    /// Per-worker tested-key counters (the live `WorkerStats.keys`
    /// accounting: part of the observable protocol state because the
    /// dispatch report and utilization figures are computed from it).
    tested: Vec<u128>,
    /// Total keys counted (scanned) so far.
    counted: u128,
    /// `counted` at the moment the stop flag was first raised.
    stop_at: Option<u128>,
    /// Hit identifiers reported so far, sorted.
    reported: Vec<u128>,
    /// Scanned coverage: disjoint, sorted, coalesced intervals.
    scanned: Vec<Interval>,
    /// Coverage abandoned by cancellation: disjoint, sorted, coalesced.
    abandoned: Vec<Interval>,
    /// The merge result, once [`Action::Merge`] ran.
    merged: Option<Vec<u128>>,
}

impl ModelState {
    fn get(v: &[Interval], w: usize) -> Interval {
        *v.get(w).expect("worker index in range")
    }

    fn get_mut(v: &mut [Interval], w: usize) -> &mut Interval {
        v.get_mut(w).expect("worker index in range")
    }

    /// The merge result, if the protocol has reached it.
    pub fn merged(&self) -> Option<&[u128]> {
        self.merged.as_deref()
    }

    /// Total keys counted (scanned) so far.
    pub fn counted(&self) -> u128 {
        self.counted
    }

    /// `worker`'s deque slot.
    pub fn slot(&self, worker: usize) -> Interval {
        Self::get(&self.slots, worker)
    }

    /// Insert `iv` into a normalized coverage list, keeping it sorted
    /// and coalesced. Returns the identifier of the first overlapping
    /// key when `iv` intersects existing coverage.
    fn insert_coverage(list: &mut Vec<Interval>, iv: Interval) -> Result<(), u128> {
        if iv.is_empty() {
            return Ok(());
        }
        let pos = list.partition_point(|c| c.start < iv.start);
        if let Some(prev) = pos.checked_sub(1).and_then(|p| list.get(p)) {
            if prev.end() > iv.start {
                return Err(iv.start);
            }
        }
        if let Some(next) = list.get(pos) {
            if iv.end() > next.start {
                return Err(next.start);
            }
        }
        list.insert(pos, iv);
        // Coalesce around the insertion point so equal coverage always
        // has equal representation (state dedup depends on it).
        let mut i = pos.saturating_sub(1);
        while i + 1 < list.len() {
            let (a, b) = (
                *list.get(i).expect("coalesce index"),
                *list.get(i + 1).expect("coalesce index"),
            );
            if a.end() == b.start {
                *list.get_mut(i).expect("coalesce index") =
                    Interval { start: a.start, len: a.len + b.len };
                list.remove(i + 1);
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// One-line rendering for counterexample traces.
    pub fn summary(&self) -> String {
        fn ivs(list: &[Interval]) -> String {
            let parts: Vec<String> = list
                .iter()
                .map(|iv| {
                    if iv.is_empty() {
                        "-".to_string()
                    } else {
                        format!("{}+{}", iv.start, iv.len)
                    }
                })
                .collect();
            parts.join("|")
        }
        let done: String =
            self.done.iter().map(|d| if *d { 'x' } else { '.' }).collect();
        let stop = match (self.stop, self.stop_at) {
            (true, Some(k)) => format!(" stop@{k}"),
            (true, None) => " stop".to_string(),
            _ => String::new(),
        };
        let merged = match &self.merged {
            Some(m) => format!(" merged={m:?}"),
            None => String::new(),
        };
        let tested: Vec<String> = self.tested.iter().map(|t| t.to_string()).collect();
        format!(
            "deques=[{}] popped=[{}] scanning=[{}] done=[{done}] tested=[{}] counted={}{stop} hits={:?}{merged}",
            ivs(&self.slots),
            ivs(&self.in_flight),
            ivs(&self.scanning),
            tested.join("|"),
            self.counted,
            self.reported,
        )
    }
}

/// The transition relation for one [`ModelConfig`].
#[derive(Debug, Clone)]
pub struct Model {
    cfg: ModelConfig,
}

impl Model {
    /// A model over `cfg`.
    ///
    /// # Panics
    /// Panics when the config has no workers or an empty keyspace —
    /// there is no protocol to check.
    pub fn new(cfg: ModelConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.keys >= 1, "need a nonempty keyspace");
        assert!(cfg.hits.iter().all(|h| *h < cfg.keys), "hits must be inside the keyspace");
        Model { cfg }
    }

    /// The checked configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The initial state: the even scatter the dispatcher performs
    /// (`IntervalDeques::scatter` with equal weights reduces to
    /// `split_even`).
    pub fn initial(&self) -> ModelState {
        let slots: Vec<Interval> = Interval::new(0, self.cfg.keys)
            .split_even(self.cfg.workers)
            .into_iter()
            .map(norm)
            .collect();
        ModelState {
            slots,
            in_flight: vec![EMPTY; self.cfg.workers],
            scanning: vec![EMPTY; self.cfg.workers],
            done: vec![false; self.cfg.workers],
            stop: false,
            tested: vec![0; self.cfg.workers],
            counted: 0,
            stop_at: None,
            reported: Vec::new(),
            scanned: Vec::new(),
            abandoned: Vec::new(),
            merged: None,
        }
    }

    /// Every action enabled in `s`. Per-worker control flow is
    /// deterministic (it mirrors `Dispatcher::drive_leaf` exactly);
    /// nondeterminism comes from worker interleaving and victim choice.
    pub fn enabled(&self, s: &ModelState) -> Vec<Action> {
        if s.merged.is_some() {
            return Vec::new();
        }
        if s.done.iter().all(|d| *d) {
            return vec![Action::Merge];
        }
        let mut out = Vec::new();
        // The retune controller may fire between any two worker steps —
        // but only while the stop flag is down (drive_chunk checks it
        // before electing a re-scatter) and only when the plan actually
        // moves work (a proportional fleet yields no transition).
        if !s.stop {
            for plan in 0..self.cfg.rescatter.len() {
                if self.rescatter_plan_for(s, plan).is_some() {
                    out.push(Action::Rescatter { plan });
                }
            }
        }
        for worker in 0..self.cfg.workers {
            if *s.done.get(worker).expect("worker index") {
                continue;
            }
            if !ModelState::get(&s.scanning, worker).is_empty() {
                out.push(Action::ScanEnd { worker });
                continue;
            }
            if !ModelState::get(&s.in_flight, worker).is_empty() {
                out.push(Action::ScanBegin { worker });
                continue;
            }
            // The run-loop head: check the stop flag before popping,
            // like `drive_leaf`.
            if s.stop {
                out.push(Action::Exit { worker });
                continue;
            }
            if !ModelState::get(&s.slots, worker).is_empty() {
                out.push(Action::Pop { worker });
                continue;
            }
            let mut victims = false;
            if self.cfg.steal {
                for victim in 0..self.cfg.workers {
                    if victim != worker && !ModelState::get(&s.slots, victim).is_empty() {
                        out.push(Action::Steal { worker, victim });
                        victims = true;
                    }
                }
            }
            if !victims {
                // Static scatter with the retune controller on: a
                // drained worker waits for a re-scatter to refill it
                // (drive_leaf's wait-for-refill loop) and only exits
                // once the whole fleet is drained. The wait itself is
                // not a transition — the worker simply has no enabled
                // action until another worker or the controller moves.
                let waiting = !self.cfg.steal
                    && !self.cfg.rescatter.is_empty()
                    && s.slots.iter().any(|iv| !iv.is_empty());
                if !waiting {
                    out.push(Action::Exit { worker });
                }
            }
        }
        out
    }

    /// The plan `Action::Rescatter { plan }` would apply from `s`, if it
    /// changes anything: the live [`rescatter_plan`] over the current
    /// deque remainders, with exited workers' weights masked to zero
    /// exactly as `IntervalDeques::rescatter` masks retired slots.
    fn rescatter_plan_for(&self, s: &ModelState, plan: usize) -> Option<Vec<Interval>> {
        let weights = self.cfg.rescatter.get(plan)?;
        assert_eq!(weights.len(), self.cfg.workers, "one weight per worker");
        let masked: Vec<f64> = weights
            .iter()
            .zip(&s.done)
            .map(|(&w, &done)| if done { 0.0 } else { w })
            .collect();
        rescatter_plan(&s.slots, &masked)
    }

    /// Apply `a` to `s`. Returns the successor state, or the fault when
    /// the transition itself exposes a violation (an overlapping scan).
    /// The caller must only pass enabled actions.
    pub fn apply(&self, s: &ModelState, a: Action) -> Result<ModelState, Fault> {
        let mut n = s.clone();
        match a {
            Action::Pop { worker } => {
                let slot = ModelState::get_mut(&mut n.slots, worker);
                let len = self.cfg.chunk.next_len(slot.len);
                let chunk = slot.take_front(len);
                *slot = norm(*slot);
                *ModelState::get_mut(&mut n.in_flight, worker) = norm(chunk);
            }
            Action::ScanBegin { worker } => {
                let ignore_cancel =
                    self.cfg.mutation == Some(Mutation::IgnoreCancelPoll);
                let fly = ModelState::get_mut(&mut n.in_flight, worker);
                if n.stop && !ignore_cancel {
                    // PollCursor sees the flag: the chunk remainder is
                    // abandoned, not scanned.
                    let rest = std::mem::replace(fly, EMPTY);
                    ModelState::insert_coverage(&mut n.abandoned, rest).map_err(|id| {
                        (
                            Property::ExactlyOnce,
                            format!("abandoned chunk re-covers identifier {id}"),
                        )
                    })?;
                } else {
                    let q = fly.take_front(self.cfg.quantum.max(1));
                    *fly = norm(*fly);
                    *ModelState::get_mut(&mut n.scanning, worker) = norm(q);
                }
            }
            Action::ScanEnd { worker } => {
                let q = std::mem::replace(
                    ModelState::get_mut(&mut n.scanning, worker),
                    EMPTY,
                );
                *n.tested.get_mut(worker).expect("worker index") += q.len;
                n.counted += q.len;
                ModelState::insert_coverage(&mut n.scanned, q).map_err(|id| {
                    (
                        Property::ExactlyOnce,
                        format!(
                            "quantum [{}, {}) scans identifier {id} a second time",
                            q.start,
                            q.end()
                        ),
                    )
                })?;
                let mut hit_here = false;
                for &h in &self.cfg.hits {
                    if q.contains(h) {
                        hit_here = true;
                        if let Err(pos) = n.reported.binary_search(&h) {
                            n.reported.insert(pos, h);
                        }
                    }
                }
                if self.cfg.first_hit && hit_here && !n.stop {
                    n.stop = true;
                    n.stop_at = Some(n.counted);
                }
            }
            Action::Steal { worker, victim } => {
                let v = ModelState::get(&n.slots, victim);
                let (keep, stolen) = steal_split(v);
                match self.cfg.mutation {
                    Some(Mutation::DropStolenLease) => {
                        // The bug: the victim is trimmed but the thief
                        // never receives the back half.
                        *ModelState::get_mut(&mut n.slots, victim) = norm(keep);
                    }
                    Some(Mutation::DoubleCountSteal) => {
                        // The bug: the victim keeps everything while the
                        // thief also takes the back half.
                        *ModelState::get_mut(&mut n.slots, worker) = norm(stolen);
                    }
                    _ => {
                        *ModelState::get_mut(&mut n.slots, victim) = norm(keep);
                        *ModelState::get_mut(&mut n.slots, worker) = norm(stolen);
                    }
                }
            }
            Action::Exit { worker } => {
                *n.done.get_mut(worker).expect("worker index") = true;
            }
            Action::Rescatter { plan } => {
                let new_slots = self
                    .rescatter_plan_for(s, plan)
                    .expect("caller only applies enabled actions");
                n.slots = new_slots.into_iter().map(norm).collect();
            }
            Action::Merge => {
                let merged = if self.cfg.first_hit {
                    let pick = if self.cfg.mutation == Some(Mutation::MergeHighestFirst) {
                        n.reported.last()
                    } else {
                        n.reported.first()
                    };
                    pick.copied().into_iter().collect()
                } else {
                    n.reported.clone()
                };
                n.merged = Some(merged);
            }
        }
        Ok(n)
    }

    /// Check every state-local property on `s`: the lease partition
    /// (exactly-once + no-lost-lease), the cancellation bound, and the
    /// merge contract once merged.
    pub fn check_invariants(&self, s: &ModelState) -> Result<(), Fault> {
        // The partition invariant: deque slots, in-flight chunks,
        // scanning quanta, scanned coverage and abandoned coverage must
        // tile [0, keys) exactly — at *every* state, not just the end.
        let mut pieces: Vec<Interval> = Vec::new();
        for list in [&s.slots, &s.in_flight, &s.scanning, &s.scanned, &s.abandoned] {
            pieces.extend(list.iter().copied().filter(|iv| !iv.is_empty()));
        }
        pieces.sort_by_key(|iv| (iv.start, iv.len));
        let mut cursor = 0u128;
        for p in &pieces {
            if p.start < cursor {
                return Err((
                    Property::ExactlyOnce,
                    format!("identifier {} is leased twice", p.start),
                ));
            }
            if p.start > cursor {
                return Err((
                    Property::NoLostLease,
                    format!("identifiers [{cursor}, {}) fell out of every lease", p.start),
                ));
            }
            cursor = p.end();
        }
        if cursor != self.cfg.keys {
            return Err((
                Property::NoLostLease,
                format!(
                    "identifiers [{cursor}, {}) fell out of every lease",
                    self.cfg.keys
                ),
            ));
        }
        // The cancellation bound: after the flag went up at count K, the
        // total can grow by at most one quantum per worker.
        if let Some(k) = s.stop_at {
            let bound = k + self.cfg.workers as u128 * self.cfg.quantum.max(1);
            if s.counted > bound {
                return Err((
                    Property::CancellationBound,
                    format!(
                        "counted {} keys after stop at {k}: exceeds K + workers x quantum = {bound}",
                        s.counted
                    ),
                ));
            }
        }
        // The merge contract.
        if let Some(m) = &s.merged {
            if self.cfg.first_hit {
                let want: Vec<u128> = s.reported.first().copied().into_iter().collect();
                if *m != want {
                    return Err((
                        Property::MergeDeterminism,
                        format!(
                            "first-hit merge kept {m:?}, not the lowest reported of {:?}",
                            s.reported
                        ),
                    ));
                }
            } else {
                // Exhaustive: the stop flag never rises, so termination
                // means full coverage and the merge must report every
                // planted hit.
                let mut want = self.cfg.hits.clone();
                want.sort_unstable();
                want.dedup();
                if *m != want {
                    return Err((
                        Property::MergeDeterminism,
                        format!("exhaustive merge reported {m:?}, expected {want:?}"),
                    ));
                }
                if s.scanned != vec![Interval::new(0, self.cfg.keys)] {
                    return Err((
                        Property::ExactlyOnce,
                        format!(
                            "exhaustive run terminated with partial coverage {:?}",
                            s.scanned
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whether `ScanEnd {worker}` would raise the stop flag from `s` —
    /// the one transition that is dependent with every stop-flag reader.
    fn raises_stop(&self, s: &ModelState, worker: usize) -> bool {
        if !self.cfg.first_hit || s.stop {
            return false;
        }
        let q = ModelState::get(&s.scanning, worker);
        self.cfg.hits.iter().any(|h| q.contains(*h))
    }

    /// Conservative independence relation for the sleep-set reduction:
    /// two actions are independent when, from `s`, they touch disjoint
    /// workers/slots and neither can write state the other reads.
    /// Dependent-by-default keeps the reduction sound.
    pub fn independent(&self, s: &ModelState, a: Action, b: Action) -> bool {
        fn touched(a: Action) -> (usize, Option<usize>) {
            match a {
                Action::Pop { worker }
                | Action::ScanBegin { worker }
                | Action::ScanEnd { worker }
                | Action::Exit { worker } => (worker, None),
                Action::Steal { worker, victim } => (worker, Some(victim)),
                Action::Rescatter { .. } | Action::Merge => (usize::MAX, None),
            }
        }
        // A re-scatter reads and writes every deque slot: globally
        // dependent, like the merge.
        if matches!(a, Action::Merge | Action::Rescatter { .. })
            || matches!(b, Action::Merge | Action::Rescatter { .. })
        {
            return false;
        }
        let (aw, av) = touched(a);
        let (bw, bv) = touched(b);
        if aw == bw || Some(aw) == bv || Some(bw) == av || (av.is_some() && av == bv) {
            return false;
        }
        // A stop-raising scan end invalidates every other worker's
        // stop-flag read (pop/steal/exit enabledness, scan-begin's
        // abandon decision): treat it as globally dependent.
        for (x, other) in [(a, b), (b, a)] {
            if let Action::ScanEnd { worker } = x {
                if self.raises_stop(s, worker) {
                    let _ = other;
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_engine::IntervalDeques;

    #[test]
    fn initial_state_partitions_the_keyspace() {
        let m = Model::new(ModelConfig::exhaustive(3, 10));
        let s = m.initial();
        assert!(m.check_invariants(&s).is_ok());
        let total: u128 = (0..3).map(|w| s.slot(w).len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn pop_scan_sequence_counts_and_covers() {
        let m = Model::new(ModelConfig::exhaustive(1, 3));
        let mut s = m.initial();
        for _ in 0..3 {
            s = m.apply(&s, Action::Pop { worker: 0 }).unwrap();
            s = m.apply(&s, Action::ScanBegin { worker: 0 }).unwrap();
            s = m.apply(&s, Action::ScanEnd { worker: 0 }).unwrap();
            m.check_invariants(&s).unwrap();
        }
        assert_eq!(s.counted(), 3);
        s = m.apply(&s, Action::Exit { worker: 0 }).unwrap();
        s = m.apply(&s, Action::Merge).unwrap();
        m.check_invariants(&s).unwrap();
        assert_eq!(s.merged(), Some(&[1, 2][..]));
    }

    /// The model's pop and steal transitions replay the *live*
    /// `IntervalDeques` arithmetic step for step: same chunk sizes, same
    /// split points. This pins the model to the shipped code — if the
    /// engine's arithmetic changes, this test drifts red before the
    /// checker silently verifies the wrong protocol.
    #[test]
    fn model_transitions_mirror_live_interval_deques() {
        let cfg = ModelConfig {
            workers: 2,
            keys: 12,
            chunk: ChunkPolicy::Guided { min: 1 },
            steal: true,
            first_hit: false,
            hits: vec![],
            quantum: 4,
            rescatter: Vec::new(),
            mutation: None,
        };
        let m = Model::new(cfg.clone());
        let mut s = m.initial();
        let live = IntervalDeques::scatter(Interval::new(0, 12), &[1.0, 1.0]);

        // Worker 0 pops twice, then worker 1 drains and steals from 0;
        // with two workers the victim choice is forced, so the live
        // scheduler and the model must agree exactly.
        for _ in 0..2 {
            let chunk = live.pop(0, cfg.chunk).unwrap();
            s = m.apply(&s, Action::Pop { worker: 0 }).unwrap();
            let fly = ModelState::get(&s.in_flight, 0);
            assert_eq!((fly.start, fly.len), (chunk.start, chunk.len));
            // Drain the chunk through scan quanta so the next pop sees
            // the same deque shape the live side does.
            while !ModelState::get(&s.in_flight, 0).is_empty() {
                s = m.apply(&s, Action::ScanBegin { worker: 0 }).unwrap();
                s = m.apply(&s, Action::ScanEnd { worker: 0 }).unwrap();
            }
            assert_eq!(s.slot(0).len, live.remaining(0));
        }
        while live.pop(1, cfg.chunk).is_some() {}
        while !s.slot(1).is_empty() {
            s = m.apply(&s, Action::Pop { worker: 1 }).unwrap();
            while !ModelState::get(&s.in_flight, 1).is_empty() {
                s = m.apply(&s, Action::ScanBegin { worker: 1 }).unwrap();
                s = m.apply(&s, Action::ScanEnd { worker: 1 }).unwrap();
            }
        }
        assert_eq!(live.steal_into(1), Some(0));
        s = m.apply(&s, Action::Steal { worker: 1, victim: 0 }).unwrap();
        assert_eq!(s.slot(0).len, live.remaining(0), "victim keeps the same front half");
        assert_eq!(s.slot(1).len, live.remaining(1), "thief holds the same back half");
        m.check_invariants(&s).unwrap();
    }

    /// The model's re-scatter replays the live `IntervalDeques::rescatter`
    /// step for step: same plan arithmetic, same retirement masking.
    #[test]
    fn rescatter_transition_mirrors_live_interval_deques() {
        let weights = vec![vec![3.0, 1.0]];
        let m = Model::new(
            ModelConfig::exhaustive(2, 12).with_rescatter(weights.clone()),
        );
        let mut s = m.initial();
        let live = IntervalDeques::scatter(Interval::new(0, 12), &[1.0, 1.0]);

        // From the even initial scatter no single-interval plan can move
        // work (every slot already holds its one range), so the
        // transition is disabled — on both sides.
        let a = Action::Rescatter { plan: 0 };
        assert!(!m.enabled(&s).contains(&a), "even fleet has nothing to move");
        assert!(!live.rescatter(&weights[0]), "live agrees: no-op plan");

        // Drain most of worker 0's share: now worker 0 (the 3x-weighted
        // slot) holds the small remainder and the plan swaps ranges.
        for _ in 0..4 {
            s = m.apply(&s, Action::Pop { worker: 0 }).unwrap();
            s = m.apply(&s, Action::ScanBegin { worker: 0 }).unwrap();
            s = m.apply(&s, Action::ScanEnd { worker: 0 }).unwrap();
            live.pop(0, ChunkPolicy::Fixed(1)).unwrap();
        }
        assert!(m.enabled(&s).contains(&a), "skewed remainders enable the re-scatter");
        s = m.apply(&s, a).unwrap();
        assert!(live.rescatter(&weights[0]), "live deques rebalance too");
        for w in 0..2 {
            assert_eq!(s.slot(w).len, live.remaining(w), "slot {w} remainder");
        }
        m.check_invariants(&s).unwrap();
        // Immediately re-applying the same weights is a no-op, so the
        // transition is disabled — the controller cannot livelock.
        assert!(!m.enabled(&s).contains(&a), "rebalanced fleet disables the plan");
    }

    #[test]
    fn static_workers_wait_for_a_rescatter_instead_of_exiting() {
        let cfg = ModelConfig {
            steal: false,
            ..ModelConfig::exhaustive(2, 8)
        }
        .with_rescatter(vec![vec![1.0, 1.0]]);
        let m = Model::new(cfg);
        let mut s = m.initial();
        // Drain worker 1's share.
        while !s.slot(1).is_empty() {
            s = m.apply(&s, Action::Pop { worker: 1 }).unwrap();
            while !ModelState::get(&s.in_flight, 1).is_empty() {
                s = m.apply(&s, Action::ScanBegin { worker: 1 }).unwrap();
                s = m.apply(&s, Action::ScanEnd { worker: 1 }).unwrap();
            }
        }
        // Worker 0 still holds keys: the drained worker has no Exit —
        // it waits for the controller, exactly like the live
        // wait-for-refill loop.
        let enabled = m.enabled(&s);
        assert!(
            !enabled.contains(&Action::Exit { worker: 1 }),
            "drained static worker must wait while the fleet holds keys: {enabled:?}"
        );
        assert!(
            enabled.iter().any(|a| matches!(a, Action::Rescatter { .. })),
            "the even-weight plan can refill the drained slot: {enabled:?}"
        );
        // After the re-scatter the waiter owns work again.
        s = m.apply(&s, Action::Rescatter { plan: 0 }).unwrap();
        assert!(!s.slot(1).is_empty(), "re-scatter refilled the waiter");
        m.check_invariants(&s).unwrap();
    }

    #[test]
    fn drop_stolen_lease_breaks_the_partition() {
        let m = Model::new(
            ModelConfig::exhaustive(2, 8).with_mutation(Mutation::DropStolenLease),
        );
        let mut s = m.initial();
        // Drain worker 1's share so it becomes a thief.
        while !s.slot(1).is_empty() {
            s = m.apply(&s, Action::Pop { worker: 1 }).unwrap();
            s = m.apply(&s, Action::ScanBegin { worker: 1 }).unwrap();
            s = m.apply(&s, Action::ScanEnd { worker: 1 }).unwrap();
        }
        s = m.apply(&s, Action::Steal { worker: 1, victim: 0 }).unwrap();
        let (prop, _) = m.check_invariants(&s).unwrap_err();
        assert_eq!(prop, Property::NoLostLease);
    }

    #[test]
    fn summary_renders_compactly() {
        let m = Model::new(ModelConfig::exhaustive(2, 8));
        let s = m.initial();
        let line = s.summary();
        assert!(line.contains("deques=[0+4|4+4]"), "{line}");
        assert!(line.contains("done=[..]"), "{line}");
    }
}
