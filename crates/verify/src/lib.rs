//! # eks-verify — proof-up-to-bound for the scheduler protocol
//!
//! The workspace's scheduler tests sample interleavings; this crate
//! replaces sampling with *bounded exhaustive* exploration. The
//! work-stealing protocol (pop / scan-quantum / steal-half / cancel /
//! merge, as implemented by `eks_engine::steal::IntervalDeques` and
//! `Dispatcher::run_deques`) is restated as an explicit-state
//! transition system in [`model`], and [`checker`] enumerates **every**
//! interleaving of every worker up to a configurable bound, checking
//! four properties at each generated state:
//!
//! 1. **exactly-once** — no identifier is scanned or leased twice;
//! 2. **no-lost-lease** — deques ∪ in-flight ∪ scanned ∪ abandoned
//!    always tiles the keyspace exactly;
//! 3. **merge-determinism** — exhaustive runs reach one merge result on
//!    every schedule, and first-hit merges keep the lowest reported
//!    identifier;
//! 4. **cancellation-bound** — `counted ≤ K + workers × quantum` after
//!    the stop flag rises at count `K`.
//!
//! The model shares its arithmetic ([`eks_engine::steal_split`],
//! [`eks_engine::ChunkPolicy::next_len`],
//! [`eks_keyspace::Interval::take_front`]) with the live scheduler, so
//! what is verified is the shipped code's transition relation, not a
//! transliteration of it. On violation the checker emits a
//! counterexample trace: the schedule plus a deque-state summary after
//! every step. Seeded [`Mutation`]s provide known-broken relations the
//! checker must flag, guarding against a vacuously green verifier.
//!
//! Everything here is std-only, like the rest of the workspace.

#![warn(missing_docs)]

pub mod checker;
pub mod model;

pub use checker::{
    check, standard_checks, CheckOptions, CheckOutcome, NamedCheck, TraceStep, Violation,
};
pub use model::{Action, Model, ModelConfig, ModelState, Mutation, Property};
