//! Instruction-level interleaving of two independent candidate hashes.
//!
//! Section V-B: "A better ILP factor, that is achievable interleaving the
//! production of the hash of two strings at a time, is nevertheless a good
//! choice on Fermi, since that architecture is limited by addition/logical
//! instructions." Dual-issue pairs *consecutive* independent instructions
//! of one warp, so the two hash computations must be zipped
//! instruction-by-instruction, not concatenated.

use eks_gpusim::isa::{AbstractOp, KernelIr, Operand, Reg};

/// Interleave two kernel bodies into one, renumbering the second body's
/// registers and parameters so the streams are fully independent.
///
/// The result tests `a.keys_per_iteration + b.keys_per_iteration`
/// candidates per iteration.
pub fn interleave(a: &KernelIr, b: &KernelIr) -> KernelIr {
    let reg_offset = a.reg_count;
    let param_offset = max_param(a).map_or(0, |p| p + 1);
    let remapped: Vec<AbstractOp> = b
        .ops
        .iter()
        .map(|op| remap(*op, reg_offset, param_offset))
        .collect();

    // Zip the two streams op-by-op; the tail of the longer one follows.
    let mut ops = Vec::with_capacity(a.ops.len() + b.ops.len());
    let mut ia = a.ops.iter().copied();
    let mut ib = remapped.into_iter();
    loop {
        match (ia.next(), ib.next()) {
            (Some(x), Some(y)) => {
                ops.push(x);
                ops.push(y);
            }
            (Some(x), None) => ops.push(x),
            (None, Some(y)) => ops.push(y),
            (None, None) => break,
        }
    }
    KernelIr {
        name: format!("{}+x2", a.name),
        ops,
        keys_per_iteration: a.keys_per_iteration + b.keys_per_iteration,
        reg_count: a.reg_count + b.reg_count,
    }
}

/// Interleave a kernel with a register-renamed copy of itself.
pub fn interleave_self(a: &KernelIr) -> KernelIr {
    interleave(a, a)
}

fn max_param(ir: &KernelIr) -> Option<u32> {
    ir.ops
        .iter()
        .filter_map(|op| match op {
            AbstractOp::LoadParam { index, .. } => Some(*index),
            _ => None,
        })
        .max()
}

fn remap(op: AbstractOp, dr: u32, dp: u32) -> AbstractOp {
    let r = |x: Reg| Reg(x.0 + dr);
    let o = |x: Operand| match x {
        Operand::R(reg) => Operand::R(Reg(reg.0 + dr)),
        imm => imm,
    };
    match op {
        AbstractOp::Add { dst, a, b } => AbstractOp::Add { dst: r(dst), a: o(a), b: o(b) },
        AbstractOp::And { dst, a, b } => AbstractOp::And { dst: r(dst), a: o(a), b: o(b) },
        AbstractOp::Or { dst, a, b } => AbstractOp::Or { dst: r(dst), a: o(a), b: o(b) },
        AbstractOp::Xor { dst, a, b } => AbstractOp::Xor { dst: r(dst), a: o(a), b: o(b) },
        AbstractOp::Not { dst, a } => AbstractOp::Not { dst: r(dst), a: o(a) },
        AbstractOp::Shl { dst, a, n } => AbstractOp::Shl { dst: r(dst), a: o(a), n },
        AbstractOp::Shr { dst, a, n } => AbstractOp::Shr { dst: r(dst), a: o(a), n },
        AbstractOp::Rotl { dst, a, n } => AbstractOp::Rotl { dst: r(dst), a: o(a), n },
        AbstractOp::Const { dst, value } => AbstractOp::Const { dst: r(dst), value },
        AbstractOp::LoadParam { dst, index } => {
            AbstractOp::LoadParam { dst: r(dst), index: index + dp }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5::{build_md5, Md5Variant};
    use crate::words_for_key_len;
    use eks_gpusim::arch::ComputeCapability;
    use eks_gpusim::codegen::{lower, LoweringOptions};
    use eks_gpusim::isa::KernelBuilder;
    use eks_gpusim::sched::{simulate, SimConfig};

    fn chain(n: u32) -> KernelIr {
        let mut b = KernelBuilder::new("chain");
        let mut acc = b.param(0);
        for _ in 0..n {
            acc = b.add(acc, 1u32);
        }
        b.build()
    }

    #[test]
    fn interleaved_counts_double() {
        let a = chain(10);
        let x2 = interleave_self(&a);
        assert_eq!(x2.ops.len(), 2 * a.ops.len());
        assert_eq!(x2.keys_per_iteration, 2);
        assert_eq!(x2.reg_count, 2 * a.reg_count);
    }

    #[test]
    fn interleaving_preserves_semantics() {
        let words = words_for_key_len(4);
        let built = build_md5(Md5Variant::Optimized, &words);
        let x2 = interleave_self(&built.ir);
        // Evaluate with two different candidate words; the two streams
        // must produce their own results independently.
        let w_a = 0x6162_6364u32;
        let w_b = 0x7172_7374u32;
        let single_a = built.ir.evaluate(&[w_a]);
        let single_b = built.ir.evaluate(&[w_b]);
        let both = x2.evaluate(&[w_a, w_b]);
        let out = built.outputs[0].0 as usize;
        assert_eq!(both[out], single_a[out]);
        assert_eq!(both[built.ir.reg_count as usize + out], single_b[out]);
    }

    #[test]
    fn interleaving_raises_dual_issue_on_fermi() {
        let words = words_for_key_len(4);
        let built = build_md5(Md5Variant::Optimized, &words);
        let single = lower(&built.ir, LoweringOptions::plain(ComputeCapability::Sm21));
        let doubled = lower(
            &interleave_self(&built.ir),
            LoweringOptions::plain(ComputeCapability::Sm21),
        );
        let cfg = SimConfig { warps: 48, iterations: 6, max_cycles: 100_000_000 };
        let r1 = simulate(&single, cfg);
        let r2 = simulate(&doubled, cfg);
        assert!(
            r2.dual_issue_rate() > r1.dual_issue_rate() + 0.2,
            "x2 dual-issue {} vs single {}",
            r2.dual_issue_rate(),
            r1.dual_issue_rate()
        );
        // The win is bounded by the shared-port contention the model
        // captures (≈ +9 % keys/cycle on cc 2.1); any regression below a
        // 5 % improvement means interleaving stopped helping.
        assert!(
            r2.keys_per_cycle() > r1.keys_per_cycle() * 1.05,
            "x2 keys/cycle {} vs {}",
            r2.keys_per_cycle(),
            r1.keys_per_cycle()
        );
    }

    #[test]
    fn uneven_streams_zip_with_tail() {
        let a = chain(3);
        let b = chain(6);
        let z = interleave(&a, &b);
        assert_eq!(z.ops.len(), 9 + 2, "3+1 params… ops: 4 + 7 = 11");
    }
}
