//! MD4 cracking kernels (the NTLM GPU path).
//!
//! MD4 inherits the reversal property the paper exploits in MD5: the
//! schedule uses `w[0]` at steps 0, 16 and 32 but never in the final 15
//! steps, so the target can be reverted through steps 47..=33 once and
//! each candidate pays only 33 forward steps — or 30 with the early exit
//! (the state component produced at step 29 is the first to stabilize in
//! the step-32 comparison state).

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_gpusim::isa::{KernelBuilder, KernelIr, Operand, Reg};
use eks_hashes::md4::{step_k, IV, ROT, WORD_INDEX};

use crate::WordSource;

/// Which MD4 kernel to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Md4Variant {
    /// Full 48 steps + chaining per candidate.
    Naive,
    /// 15-step reversal: 33 forward steps, compare after step 32.
    Reversed,
    /// Reversed + early exit: 30-step average trace.
    Optimized,
}

impl Md4Variant {
    /// Forward steps in the average-case per-candidate trace.
    pub fn steps(self) -> usize {
        match self {
            Md4Variant::Naive => 48,
            Md4Variant::Reversed => 33,
            Md4Variant::Optimized => 30,
        }
    }
}

/// NTLM message-word layout for an ASCII password of `key_len`
/// characters: UTF-16LE doubles the byte length, so each 32-bit word
/// holds two characters (each followed by a zero byte).
pub fn ntlm_words_for_key_len(key_len: usize) -> [WordSource; 16] {
    assert!(key_len <= 20, "paper caps keys at 20 characters");
    let byte_len = key_len * 2;
    assert!(byte_len <= 55, "UTF-16LE password must fit one block");
    let mut words = [WordSource::Const(0); 16];
    let full_words = byte_len / 4; // = key_len / 2
    let mut param = 0u32;
    for w in words.iter_mut().take(full_words) {
        *w = WordSource::Param(param);
        param += 1;
    }
    if !byte_len.is_multiple_of(4) {
        // Odd password length: the last char's low byte shares a word with
        // the 0x80 terminator — still runtime.
        words[full_words] = WordSource::Param(param);
    } else {
        words[full_words] = WordSource::Const(0x80);
    }
    words[14] = WordSource::Const((byte_len as u32) * 8);
    words
}

/// A built kernel plus the registers holding its comparison outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltKernel {
    /// The executable IR.
    pub ir: KernelIr,
    /// Output state words, in comparison order.
    pub outputs: Vec<Reg>,
    /// Loop-carried registers (the advanced candidate word): roots for
    /// dead-store analysis alongside `outputs`.
    pub carried: Vec<Reg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V {
    C(u32),
    R(Reg),
}

impl V {
    fn op(self) -> Operand {
        match self {
            V::C(c) => Operand::Imm(c),
            V::R(r) => Operand::R(r),
        }
    }
}

struct Fold<'a>(&'a mut KernelBuilder);

impl Fold<'_> {
    fn add(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x.wrapping_add(y)),
            _ => V::R(self.0.add(a.op(), b.op())),
        }
    }

    fn and(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x & y),
            _ => V::R(self.0.and(a.op(), b.op())),
        }
    }

    fn or(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x | y),
            _ => V::R(self.0.or(a.op(), b.op())),
        }
    }

    fn xor(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x ^ y),
            _ => V::R(self.0.xor(a.op(), b.op())),
        }
    }

    fn not(&mut self, a: V) -> V {
        match a {
            V::C(x) => V::C(!x),
            V::R(_) => V::R(self.0.not(a.op())),
        }
    }

    fn rotl(&mut self, a: V, n: u32) -> V {
        match a {
            V::C(x) => V::C(x.rotate_left(n)),
            V::R(_) => V::R(self.0.rotl(a.op(), n)),
        }
    }

    fn sum(&mut self, terms: &[V]) -> V {
        let mut konst: u32 = 0;
        let mut acc: Option<V> = None;
        for &t in terms {
            match t {
                V::C(c) => konst = konst.wrapping_add(c),
                V::R(_) => {
                    acc = Some(match acc {
                        None => t,
                        Some(prev) => self.add(prev, t),
                    })
                }
            }
        }
        match acc {
            None => V::C(konst),
            Some(v) if konst == 0 => v,
            Some(v) => self.add(v, V::C(konst)),
        }
    }

    fn materialize(&mut self, v: V) -> Reg {
        match v {
            V::C(c) => self.0.constant(c),
            V::R(r) => r,
        }
    }
}

fn round_fn(f: &mut Fold, i: usize, b: V, c: V, d: V) -> V {
    match i / 16 {
        0 => {
            let bc = f.and(b, c);
            let nb = f.not(b);
            let nbd = f.and(nb, d);
            f.or(bc, nbd)
        }
        1 => {
            let bc = f.and(b, c);
            let bd = f.and(b, d);
            let cd = f.and(c, d);
            let o = f.or(bc, bd);
            f.or(o, cd)
        }
        _ => {
            let bc = f.xor(b, c);
            f.xor(bc, d)
        }
    }
}

/// Build an MD4 kernel for the given message-word layout.
pub fn build_md4(variant: Md4Variant, words: &[WordSource; 16]) -> BuiltKernel {
    let name = format!("md4/{variant:?}").to_ascii_lowercase();
    let mut b = KernelBuilder::new(name);
    let w: Vec<V> = words
        .iter()
        .map(|s| match *s {
            WordSource::Const(c) => V::C(c),
            WordSource::Param(i) => V::R(b.param(i)),
        })
        .collect();
    let mut f = Fold(&mut b);
    let mut state = [V::C(IV[0]), V::C(IV[1]), V::C(IV[2]), V::C(IV[3])];

    for i in 0..variant.steps() {
        let [a, bb, c, d] = state;
        let fv = round_fn(&mut f, i, bb, c, d);
        let sum = f.sum(&[a, fv, V::C(step_k(i)), w[WORD_INDEX[i]]]);
        let new = f.rotl(sum, ROT[i]);
        state = [d, new, bb, c];
    }

    let outputs: Vec<Reg> = match variant {
        Md4Variant::Naive => {
            let chained = [
                f.add(state[0], V::C(IV[0])),
                f.add(state[1], V::C(IV[1])),
                f.add(state[2], V::C(IV[2])),
                f.add(state[3], V::C(IV[3])),
            ];
            chained.into_iter().map(|v| f.materialize(v)).collect()
        }
        Md4Variant::Reversed => state.into_iter().map(|v| f.materialize(v)).collect(),
        // The `new` produced at step 29 is the first component of the
        // step-32 comparison state to stabilize.
        Md4Variant::Optimized => vec![f.materialize(state[1])],
    };

    let mut carried = Vec::new();
    if let Some(&V::R(w0)) = w.first() {
        let advanced = f.add(V::R(w0), V::C(1));
        carried.push(f.materialize(advanced));
    }

    BuiltKernel { ir: b.build(), outputs, carried }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_hashes::md4::{md4_compress, step};
    use eks_hashes::padding::pad_md5_block;

    /// UTF-16LE-expand an ASCII password and pad it like the kernel sees.
    fn ntlm_block(password: &[u8]) -> [u32; 16] {
        let mut utf16 = Vec::with_capacity(password.len() * 2);
        for &b in password {
            utf16.push(b);
            utf16.push(0);
        }
        pad_md5_block(&utf16)
    }

    fn eval(built: &BuiltKernel, password: &[u8]) -> Vec<u32> {
        let block = ntlm_block(password);
        let n_params = ntlm_words_for_key_len(password.len())
            .iter()
            .filter(|s| matches!(s, WordSource::Param(_)))
            .count();
        let params: Vec<u32> = block[..n_params].to_vec();
        let regs = built.ir.evaluate(&params);
        built.outputs.iter().map(|r| regs[r.0 as usize]).collect()
    }

    #[test]
    fn naive_kernel_computes_real_ntlm() {
        for pw in [&b"pass"[..], b"a", b"hunter2"] {
            let words = ntlm_words_for_key_len(pw.len());
            let built = build_md4(Md4Variant::Naive, &words);
            let got = eval(&built, pw);
            let want = md4_compress(IV, &ntlm_block(pw));
            assert_eq!(got, want.to_vec(), "password {pw:?}");
        }
    }

    #[test]
    fn reversed_kernel_computes_state_after_step_32() {
        let pw = b"pass";
        let built = build_md4(Md4Variant::Reversed, &ntlm_words_for_key_len(pw.len()));
        let got = eval(&built, pw);
        let block = ntlm_block(pw);
        let mut s = IV;
        for i in 0..33 {
            s = step(i, s, &block);
        }
        assert_eq!(got, s.to_vec());
    }

    #[test]
    fn optimized_kernel_early_exit_identity() {
        let pw = b"pass";
        let built = build_md4(Md4Variant::Optimized, &ntlm_words_for_key_len(pw.len()));
        let got = eval(&built, pw);
        let block = ntlm_block(pw);
        let mut s = IV;
        for i in 0..30 {
            s = step(i, s, &block);
        }
        assert_eq!(got, vec![s[1]], "output is new_29");
        // new_29 equals a-component of the step-32 comparison state.
        let mut s32 = s;
        for i in 30..33 {
            s32 = step(i, s32, &block);
        }
        assert_eq!(s[1], s32[0], "early-exit identity");
    }

    #[test]
    fn ntlm_word_layout() {
        let w = ntlm_words_for_key_len(4); // 8 bytes UTF-16
        assert_eq!(w[0], WordSource::Param(0));
        assert_eq!(w[1], WordSource::Param(1));
        assert_eq!(w[2], WordSource::Const(0x80));
        assert_eq!(w[14], WordSource::Const(64));
        // Odd length: terminator shares the last runtime word.
        let w5 = ntlm_words_for_key_len(5);
        assert_eq!(w5[2], WordSource::Param(2));
    }

    #[test]
    fn variant_step_counts() {
        assert_eq!(Md4Variant::Naive.steps(), 48);
        assert_eq!(Md4Variant::Reversed.steps(), 33);
        assert_eq!(Md4Variant::Optimized.steps(), 30);
    }

    #[test]
    fn md4_is_cheaper_than_md5() {
        use eks_gpusim::arch::ComputeCapability;
        use eks_gpusim::codegen::{lower, LoweringOptions};
        let md4 = build_md4(Md4Variant::Optimized, &ntlm_words_for_key_len(4));
        let md5 = crate::md5::build_md5(
            crate::md5::Md5Variant::Optimized,
            &crate::words_for_key_len(4),
        );
        let opts = LoweringOptions::plain(ComputeCapability::Sm30);
        let k4 = lower(&md4.ir, opts);
        let k5 = lower(&md5.ir, opts);
        assert!(
            k4.counts.total() < k5.counts.total(),
            "MD4 {} vs MD5 {}",
            k4.counts.total(),
            k5.counts.total()
        );
    }
}
