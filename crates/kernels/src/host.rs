//! Host-side (CPU) execution of the kernels' search semantics.
//!
//! A simulated device still has to produce *real* answers: when the
//! cluster runtime assigns an interval to a simulated GPU, this module
//! performs the equivalent search on the CPU, including the reversed-MD5
//! fast path the GPU kernel uses (rebuilt whenever the enumeration leaves
//! the current 4-byte-prefix family).

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_hashes::md5_reverse::Md5PrefixSearch;
use eks_keyspace::{Interval, Key, KeySpace, Order};

pub use eks_hashes::HashAlgo;

/// A CPU search reproducing the GPU kernel's semantics.
#[derive(Debug, Clone)]
pub struct HostSearch {
    algo: HashAlgo,
    target: Vec<u8>,
}

impl HostSearch {
    /// Prepare a search for `target` (must be the right digest length).
    ///
    /// # Panics
    /// Panics when the target length does not match the algorithm.
    pub fn new(algo: HashAlgo, target: &[u8]) -> Self {
        assert_eq!(target.len(), algo.digest_len(), "target length mismatch");
        Self { algo, target: target.to_vec() }
    }

    /// Scan `interval` of `space`, returning the first match.
    ///
    /// Uses the reversed-MD5 prefix search whenever the algorithm is MD5
    /// and the space enumerates first-char-fastest (mapping (4)), exactly
    /// like the GPU kernel; otherwise hashes each candidate.
    pub fn search(&self, space: &KeySpace, interval: Interval) -> Option<(u128, Key)> {
        match self.algo {
            HashAlgo::Md5 if space.order() == Order::FirstCharFastest => {
                self.search_md5_reversed(space, interval)
            }
            HashAlgo::Sha1 => self.search_sha1_partial(space, interval),
            _ => self.search_forward(space, interval),
        }
    }

    /// The SHA-1 early-exit path: 76 rounds per candidate, confirming
    /// rare survivors with the full hash (mirrors the optimized kernel).
    fn search_sha1_partial(&self, space: &KeySpace, interval: Interval) -> Option<(u128, Key)> {
        let target: &[u8; 20] = self.target.as_slice().try_into().expect("checked length");
        let search = eks_hashes::Sha1PartialSearch::new(target);
        let mut found = None;
        space.iter(interval).for_each_key(|id, key| {
            if search.matches_key(key.as_bytes()) {
                found = Some((id, key.clone()));
                false
            } else {
                true
            }
        });
        found
    }

    /// Candidates per second the plain forward path tests — used by tests
    /// comparing the two paths.
    fn search_forward(&self, space: &KeySpace, interval: Interval) -> Option<(u128, Key)> {
        let mut found = None;
        space.iter(interval).for_each_key(|id, key| {
            if self.matches_forward(key) {
                found = Some((id, key.clone()));
                false
            } else {
                true
            }
        });
        found
    }

    fn matches_forward(&self, key: &Key) -> bool {
        self.algo.hash(key.as_bytes()) == self.target
    }

    fn search_md5_reversed(&self, space: &KeySpace, interval: Interval) -> Option<(u128, Key)> {
        let target: &[u8; 16] = self.target.as_slice().try_into().expect("checked length");
        // Rebuild the prefix search whenever the candidate's suffix
        // (bytes 4..) or length changes; in first-char-fastest order that
        // happens once every |charset|^4 keys for long keys.
        let mut current_suffix: Option<(usize, Vec<u8>)> = None;
        let mut search: Option<Md5PrefixSearch> = None;
        let mut found = None;
        space.iter(interval).for_each_key(|id, key| {
            let bytes = key.as_bytes();
            let suffix = &bytes[bytes.len().min(4)..];
            let needs_rebuild = match &current_suffix {
                Some((len, sfx)) => *len != bytes.len() || sfx != suffix,
                None => true,
            };
            if needs_rebuild {
                search = Some(Md5PrefixSearch::from_sample_key(target, bytes));
                current_suffix = Some((bytes.len(), suffix.to_vec()));
            }
            let hit = search.as_ref().expect("just built").matches_key(bytes);
            if hit {
                found = Some((id, key.clone()));
                false
            } else {
                true
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_keyspace::Charset;

    fn space(order: Order) -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 5, order).unwrap()
    }

    #[test]
    fn finds_planted_md5_key_fast_path() {
        let s = space(Order::FirstCharFastest);
        let planted = Key::from_bytes(b"zebra");
        let id = s.id_of(&planted).unwrap();
        let target = HashAlgo::Md5.hash(planted.as_bytes());
        let hs = HostSearch::new(HashAlgo::Md5, &target);
        let hit = hs.search(&s, s.interval()).expect("must find");
        assert_eq!(hit, (id, planted));
    }

    #[test]
    fn finds_planted_md5_key_forward_path() {
        let s = space(Order::LastCharFastest);
        let planted = Key::from_bytes(b"dog");
        let id = s.id_of(&planted).unwrap();
        let target = HashAlgo::Md5.hash(planted.as_bytes());
        let hs = HostSearch::new(HashAlgo::Md5, &target);
        let hit = hs.search(&s, s.interval()).expect("must find");
        assert_eq!(hit, (id, planted));
    }

    #[test]
    fn finds_planted_sha1_key() {
        let s = space(Order::FirstCharFastest);
        let planted = Key::from_bytes(b"cat");
        let target = HashAlgo::Sha1.hash(planted.as_bytes());
        let hs = HostSearch::new(HashAlgo::Sha1, &target);
        let hit = hs.search(&s, s.interval()).expect("must find");
        assert_eq!(hit.1, planted);
    }

    #[test]
    fn misses_when_target_outside_interval() {
        let s = space(Order::FirstCharFastest);
        let planted = Key::from_bytes(b"zzzzz");
        let id = s.id_of(&planted).unwrap();
        let target = HashAlgo::Md5.hash(planted.as_bytes());
        let hs = HostSearch::new(HashAlgo::Md5, &target);
        assert!(hs.search(&s, Interval::new(0, id - 10)).is_none());
    }

    #[test]
    fn both_md5_paths_agree_on_a_sweep() {
        // Same target, both orders: the hit key must be identical (the ids
        // differ because the enumerations differ).
        let planted = Key::from_bytes(b"mnop");
        let target = HashAlgo::Md5.hash(planted.as_bytes());
        let hs = HostSearch::new(HashAlgo::Md5, &target);
        let fast = hs.search(&space(Order::FirstCharFastest), Interval::new(0, 1 << 22));
        let slow = hs.search(&space(Order::LastCharFastest), Interval::new(0, 1 << 22));
        assert_eq!(fast.map(|(_, k)| k), slow.map(|(_, k)| k));
    }

    #[test]
    #[should_panic]
    fn wrong_target_length_rejected() {
        HostSearch::new(HashAlgo::Md5, &[0u8; 20]);
    }
}
