//! GPU-side candidate generation: the conversion routine `f(id)` as a
//! kernel trace, and the keys-per-thread amortization the paper builds on
//! (Section IV-A):
//!
//! > "This requires that each thread should call the conversion routine
//! > for each testing key; to reduce the time spent on the conversion
//! > routine, it is possible to assign a larger number of strings per
//! > thread by applying the next operator."
//!
//! The conversion is a base-N digit extraction per character: on a GPU
//! without fast integer division it compiles to a multiply-high + shift
//! (magic-number division), a multiply-subtract for the remainder, a
//! table lookup folded to an add for contiguous charsets, and byte
//! packing — per character. The `next` operator, by contrast, is a single
//! addition in `(N-1)/N` of the steps.

use eks_gpusim::isa::{KernelBuilder, KernelIr};

/// Build the conversion routine `f(id)` for `key_len` characters over an
/// `n`-symbol contiguous charset, as a kernel trace. The id arrives in
/// parameter 0; the packed key words are the outputs.
///
/// Per character: quotient by magic multiply (`IMAD.HI` + shift),
/// remainder (`IMAD` + subtract-add), symbol map (add of the charset
/// base), and packing (shift + or).
pub fn build_conversion(key_len: usize, charset_base: u32) -> KernelIr {
    assert!((1..=20).contains(&key_len));
    let mut b = KernelBuilder::new(format!("f_id/{key_len}"));
    let id = b.param(0);
    let mut rest = id;
    let mut packed_words = 0usize;
    let mut packed = b.constant(0);
    for pos in 0..key_len {
        // Magic-number division: hi = mulhi(rest, magic) modeled as an
        // IMAD-class op via rotate-free shl, then the post-shift.
        let hi = b.shl(rest, 1); // stands in for IMAD.HI rest, magic
        let q = b.shr(hi, 5);
        // remainder = rest - q*N (one IMAD) then symbol = base + rem.
        let qn = b.shl(q, 5); // stands in for IMAD q, N
        let rem = b.add(rest, qn);
        let sym = b.add(rem, charset_base);
        // Pack into the current word.
        let byte = (pos % 4) as u32;
        let shifted = if byte == 0 { sym } else { b.shl(sym, byte * 8) };
        packed = b.or(packed, shifted);
        if pos % 4 == 3 {
            packed_words += 1;
            packed = b.constant(0);
        }
        rest = q;
    }
    let _ = packed_words;
    b.build()
}

/// Build the `next` operator as a kernel trace: one addition on the low
/// word in the common case (the carry path executes with probability
/// `1/N` and is charged fractionally by the model, not traced).
pub fn build_next_operator() -> KernelIr {
    let mut b = KernelBuilder::new("next");
    let w0 = b.param(0);
    let _ = b.add(w0, 1u32);
    b.build()
}

/// Cost model for one tested key when a thread tests `keys_per_thread`
/// candidates per kernel invocation: one conversion amortized over the
/// batch plus one `next` per key (Section IV's amortization argument).
///
/// Returns (instructions per key) given the instruction totals of the
/// conversion, the `next` operator and the hash body.
pub fn instructions_per_key(
    conversion_instrs: u32,
    next_instrs: u32,
    hash_instrs: u32,
    keys_per_thread: u32,
) -> f64 {
    assert!(keys_per_thread >= 1);
    hash_instrs as f64 + next_instrs as f64 + conversion_instrs as f64 / keys_per_thread as f64
}

/// Efficiency of a per-thread batch: hash work over total work.
pub fn thread_efficiency(
    conversion_instrs: u32,
    next_instrs: u32,
    hash_instrs: u32,
    keys_per_thread: u32,
) -> f64 {
    hash_instrs as f64
        / instructions_per_key(conversion_instrs, next_instrs, hash_instrs, keys_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_gpusim::arch::ComputeCapability;
    use eks_gpusim::codegen::{lower, LoweringOptions};

    #[test]
    fn conversion_cost_scales_with_key_length() {
        let short = lower(&build_conversion(4, b'a' as u32), LoweringOptions::plain(ComputeCapability::Sm30));
        let long = lower(&build_conversion(8, b'a' as u32), LoweringOptions::plain(ComputeCapability::Sm30));
        assert!(long.counts.total() > short.counts.total());
        // Roughly linear in the character count.
        let ratio = long.counts.total() as f64 / short.counts.total() as f64;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn next_is_far_cheaper_than_conversion() {
        let conv = lower(&build_conversion(8, b'a' as u32), LoweringOptions::plain(ComputeCapability::Sm30));
        let next = lower(&build_next_operator(), LoweringOptions::plain(ComputeCapability::Sm30));
        assert!(conv.counts.total() >= 20 * next.counts.total(), "K_f >> K_next");
    }

    #[test]
    fn conversion_is_shift_port_heavy() {
        // The conversion's divisions land on the scarce port — the reason
        // regenerating every key hurts Kepler in particular.
        let conv = lower(&build_conversion(8, b'a' as u32), LoweringOptions::plain(ComputeCapability::Sm30));
        assert!(conv.counts.shift_mad() > conv.counts.add_lop());
    }

    #[test]
    fn efficiency_increases_with_keys_per_thread() {
        let e1 = thread_efficiency(100, 1, 360, 1);
        let e100 = thread_efficiency(100, 1, 360, 100);
        let e10000 = thread_efficiency(100, 1, 360, 10_000);
        assert!(e1 < e100 && e100 < e10000);
        assert!(e1 < 0.80, "one key per thread wastes the conversion: {e1}");
        assert!(e10000 > 0.995, "large batches amortize it away: {e10000}");
    }

    #[test]
    fn asymptote_is_hash_over_hash_plus_next() {
        let e = thread_efficiency(100, 1, 360, u32::MAX);
        assert!((e - 360.0 / 361.0).abs() < 1e-6);
    }
}
