//! SHA-1 cracking kernels as executable IR.
//!
//! "The same kind of analysis and optimizations were applied to the
//! implementation of the SHA1 hash function" (Section V-B). SHA-1's
//! message schedule makes the full 15-step-style reversal impossible —
//! every late `W[i]` depends on `W[0]` — but the early-exit applies: the
//! digest's `e` component equals `rotl30(a75)`, so the comparison can fire
//! after round 75, and the last schedule expansions are never computed in
//! the average case.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_gpusim::isa::{KernelBuilder, KernelIr, Operand, Reg};
use eks_hashes::sha1::{IV, K};

use crate::WordSource;

/// Which SHA-1 kernel to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sha1Variant {
    /// Full 80 rounds + chaining per candidate.
    Naive,
    /// Early exit after round 75 against the chaining-subtracted,
    /// un-rotated target component; average-case trace is 76 rounds.
    Optimized,
}

impl Sha1Variant {
    /// Rounds in the average-case per-candidate trace.
    pub fn rounds(self) -> usize {
        match self {
            Sha1Variant::Naive => 80,
            Sha1Variant::Optimized => 76,
        }
    }
}

/// A built SHA-1 kernel plus its comparison output registers.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltKernel {
    /// The executable IR.
    pub ir: KernelIr,
    /// Output state words (5 chained words for naive; `a75` for optimized).
    pub outputs: Vec<Reg>,
    /// Loop-carried registers (the advanced candidate word): roots for
    /// dead-store analysis alongside `outputs`.
    pub carried: Vec<Reg>,
}

/// Message-word layout for SHA-1 (big-endian packing): bit length lives in
/// `w[15]`, the terminator byte in the high byte of its word.
pub fn sha1_words_for_key_len(key_len: usize) -> [WordSource; 16] {
    assert!(key_len <= 20, "paper caps keys at 20 characters");
    let mut words = [WordSource::Const(0); 16];
    let full_words = key_len / 4;
    let mut param = 0u32;
    for w in words.iter_mut().take(full_words) {
        *w = WordSource::Param(param);
        param += 1;
    }
    if !key_len.is_multiple_of(4) {
        words[full_words] = WordSource::Param(param);
    } else {
        // Big-endian: 0x80 is the most significant byte of the next word.
        words[full_words] = WordSource::Const(0x8000_0000);
    }
    words[15] = WordSource::Const((key_len as u32) * 8);
    words
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V {
    C(u32),
    R(Reg),
}

impl V {
    fn op(self) -> Operand {
        match self {
            V::C(c) => Operand::Imm(c),
            V::R(r) => Operand::R(r),
        }
    }
}

struct Fold<'a>(&'a mut KernelBuilder);

impl Fold<'_> {
    fn add(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x.wrapping_add(y)),
            _ => V::R(self.0.add(a.op(), b.op())),
        }
    }

    fn and(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x & y),
            _ => V::R(self.0.and(a.op(), b.op())),
        }
    }

    fn or(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x | y),
            _ => V::R(self.0.or(a.op(), b.op())),
        }
    }

    fn xor(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x ^ y),
            _ => V::R(self.0.xor(a.op(), b.op())),
        }
    }

    fn not(&mut self, a: V) -> V {
        match a {
            V::C(x) => V::C(!x),
            V::R(_) => V::R(self.0.not(a.op())),
        }
    }

    fn rotl(&mut self, a: V, n: u32) -> V {
        match a {
            V::C(x) => V::C(x.rotate_left(n)),
            V::R(_) => V::R(self.0.rotl(a.op(), n)),
        }
    }

    fn sum(&mut self, terms: &[V]) -> V {
        let mut konst: u32 = 0;
        let mut acc: Option<V> = None;
        for &t in terms {
            match t {
                V::C(c) => konst = konst.wrapping_add(c),
                V::R(_) => {
                    acc = Some(match acc {
                        None => t,
                        Some(prev) => self.add(prev, t),
                    })
                }
            }
        }
        match acc {
            None => V::C(konst),
            Some(v) if konst == 0 => v,
            Some(v) => self.add(v, V::C(konst)),
        }
    }

    fn materialize(&mut self, v: V) -> Reg {
        match v {
            V::C(c) => self.0.constant(c),
            V::R(r) => r,
        }
    }
}

/// Round function Ch / Parity / Maj with folding.
fn round_fn(f: &mut Fold, i: usize, b: V, c: V, d: V) -> V {
    match i / 20 {
        0 => {
            // (b & c) | (~b & d)
            let bc = f.and(b, c);
            let nb = f.not(b);
            let nbd = f.and(nb, d);
            f.or(bc, nbd)
        }
        2 => {
            // (b & c) | (b & d) | (c & d)
            let bc = f.and(b, c);
            let bd = f.and(b, d);
            let cd = f.and(c, d);
            let o = f.or(bc, bd);
            f.or(o, cd)
        }
        _ => {
            // b ^ c ^ d
            let bc = f.xor(b, c);
            f.xor(bc, d)
        }
    }
}

/// Build a SHA-1 kernel for keys of a fixed length.
pub fn build_sha1(variant: Sha1Variant, words: &[WordSource; 16]) -> BuiltKernel {
    let name = format!("sha1/{variant:?}").to_ascii_lowercase();
    let mut b = KernelBuilder::new(name);
    let w0_16: Vec<V> = words
        .iter()
        .map(|s| match *s {
            WordSource::Const(c) => V::C(c),
            WordSource::Param(i) => V::R(b.param(i)),
        })
        .collect();
    let mut f = Fold(&mut b);

    let rounds = variant.rounds();
    // Rolling message schedule, expanded on demand: round `i` needs `W[i]`,
    // and the optimized variant never computes the expansions past the
    // early-exit round.
    let mut w: Vec<V> = w0_16.clone();
    let mut state = [V::C(IV[0]), V::C(IV[1]), V::C(IV[2]), V::C(IV[3]), V::C(IV[4])];

    for i in 0..rounds {
        if i >= 16 {
            debug_assert_eq!(w.len(), i);
            let x1 = f.xor(w[i - 3], w[i - 8]);
            let x2 = f.xor(x1, w[i - 14]);
            let x3 = f.xor(x2, w[i - 16]);
            let wi = f.rotl(x3, 1);
            w.push(wi);
        }
        let [a, bb, c, d, e] = state;
        let fv = round_fn(&mut f, i, bb, c, d);
        let rot5 = f.rotl(a, 5);
        let temp = f.sum(&[rot5, fv, e, V::C(K[i / 20]), w[i]]);
        // The early-exit variant compares only `temp` after the final
        // round, so its last `rotl(b, 30)` would be a dead store (the
        // dead-store lint flagged it); skip it there.
        let b30 = if i + 1 < rounds || variant == Sha1Variant::Naive {
            f.rotl(bb, 30)
        } else {
            bb
        };
        state = [temp, a, b30, c, d];
    }

    let outputs: Vec<Reg> = match variant {
        Sha1Variant::Naive => {
            let chained = [
                f.add(state[0], V::C(IV[0])),
                f.add(state[1], V::C(IV[1])),
                f.add(state[2], V::C(IV[2])),
                f.add(state[3], V::C(IV[3])),
                f.add(state[4], V::C(IV[4])),
            ];
            chained.into_iter().map(|v| f.materialize(v)).collect()
        }
        Sha1Variant::Optimized => {
            // After 76 rounds, state[0] is a75; the final digest's `e`
            // component equals rotl30(a75) + IV[4], so comparing a75
            // against the precomputed rotr30(e_target - IV[4]) suffices in
            // the average case.
            vec![f.materialize(state[0])]
        }
    };

    // The next operator on the low candidate word.
    let mut carried = Vec::new();
    if let Some(&V::R(w0)) = w0_16.first() {
        let advanced = f.add(V::R(w0), V::C(1));
        carried.push(f.materialize(advanced));
    }

    BuiltKernel { ir: b.build(), outputs, carried }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_hashes::padding::pad_sha_block;
    use eks_hashes::sha1::{expand_schedule, round, sha1_compress};

    fn eval(built: &BuiltKernel, key: &[u8]) -> Vec<u32> {
        let block = pad_sha_block(key);
        let n_params = sha1_words_for_key_len(key.len())
            .iter()
            .filter(|s| matches!(s, WordSource::Param(_)))
            .count();
        let params: Vec<u32> = block[..n_params].to_vec();
        let regs = built.ir.evaluate(&params);
        built.outputs.iter().map(|r| regs[r.0 as usize]).collect()
    }

    #[test]
    fn naive_kernel_computes_real_sha1() {
        for key in [&b"Zb3q"[..], b"a", b"hunter2", b"0123456789ab"] {
            let words = sha1_words_for_key_len(key.len());
            let built = build_sha1(Sha1Variant::Naive, &words);
            let got = eval(&built, key);
            let want = sha1_compress(IV, &pad_sha_block(key));
            assert_eq!(got, want.to_vec(), "key {key:?}");
        }
    }

    #[test]
    fn optimized_kernel_computes_a75() {
        let key = b"Zb3q";
        let words = sha1_words_for_key_len(key.len());
        let built = build_sha1(Sha1Variant::Optimized, &words);
        let got = eval(&built, key);
        // Forward-run 76 rounds with the real implementation.
        let block = pad_sha_block(key);
        let sched = expand_schedule(&block);
        let mut s = IV;
        for i in 0..76 {
            s = round(i, s, sched[i]);
        }
        assert_eq!(got, vec![s[0]]);
        // The early-exit identity: e_final = rotl30(a75) + IV[4].
        let full = sha1_compress(IV, &block);
        assert_eq!(full[4], s[0].rotate_left(30).wrapping_add(IV[4]));
    }

    #[test]
    fn word_layout_big_endian() {
        let w = sha1_words_for_key_len(4);
        assert_eq!(w[0], WordSource::Param(0));
        assert_eq!(w[1], WordSource::Const(0x8000_0000));
        assert_eq!(w[15], WordSource::Const(32));
        assert_eq!(w[14], WordSource::Const(0));
    }

    #[test]
    fn round_counts() {
        assert_eq!(Sha1Variant::Naive.rounds(), 80);
        assert_eq!(Sha1Variant::Optimized.rounds(), 76);
    }

    #[test]
    fn optimized_is_smaller_than_naive() {
        let words = sha1_words_for_key_len(4);
        let n = build_sha1(Sha1Variant::Naive, &words);
        let o = build_sha1(Sha1Variant::Optimized, &words);
        assert!(o.ir.ops.len() < n.ir.ops.len());
    }
}
