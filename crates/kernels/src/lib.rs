//! # eks-kernels — cracking kernels as executable GPU IR
//!
//! Builds the MD5 and SHA-1 brute-force kernels of Sections IV–V as
//! [`eks_gpusim`] IR. Each builder emits the *complete* hash computation
//! (the IR is functionally executable and tested against `eks-hashes`),
//! with the message words that are fixed for a given key length emitted as
//! compile-time constants — the simulator's codegen then folds them away
//! exactly as `nvcc` does, so per-architecture instruction counts
//! (Tables IV–VI) come out of a *real* MD5/SHA-1, not a hand-tuned count.
//!
//! Kernel variants:
//!
//! * **naive** — full 64-step MD5 (80-round SHA-1) per candidate plus the
//!   candidate-generation add; the Cryptohaze-Multiforcer-class baseline;
//! * **reversed** — the BarsWF trick (Section V-B): 15 MD5 steps reverted
//!   once per target, 49 forward steps per candidate;
//! * **optimized** — reversed + early-exit: the comparison anticipates the
//!   state component produced at step 45, so the average-case trace runs
//!   46 steps; `__byte_perm` lowers rotate-by-16 to `PRMT` on cc 3.0;
//! * **interleaved ×2** — two independent candidates interleaved
//!   instruction-by-instruction to feed dual-issue on Fermi ("a better ILP
//!   factor ... is nevertheless a good choice on Fermi").

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

pub mod baseline;
pub mod counts;
pub mod generation;
pub mod host;
pub mod interleave;
pub mod md4;
pub mod md5;
pub mod sha1;

pub use baseline::{Tool, ToolKernel};
pub use host::{HashAlgo, HostSearch};
pub use interleave::interleave;
pub use md4::{build_md4, Md4Variant};
pub use md5::{build_md5, Md5Variant};
pub use sha1::{build_sha1, Sha1Variant};

/// How message words reach the kernel: compile-time constant (padding,
/// fixed suffix) or runtime register (the enumerated characters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordSource {
    /// Known at compile time; folds away.
    Const(u32),
    /// Varies per candidate; loaded as kernel parameter `index`.
    Param(u32),
}

/// Message-word layout for a fixed key length: the words a padded
/// single-block message occupies, with the key-bearing words as runtime
/// parameters and everything else constant.
///
/// For the paper's headline case (length-4 keys) only `w[0]` is runtime.
pub fn words_for_key_len(key_len: usize) -> [WordSource; 16] {
    assert!(key_len <= 20, "paper caps keys at 20 characters");
    let mut words = [WordSource::Const(0); 16];
    // Bytes 0..key_len are key bytes; byte key_len is 0x80; the rest 0.
    let full_words = key_len / 4;
    let mut param = 0u32;
    for w in words.iter_mut().take(full_words) {
        *w = WordSource::Param(param);
        param += 1;
    }
    if !key_len.is_multiple_of(4) {
        // Mixed word: key bytes plus the 0x80 terminator — still runtime.
        words[full_words] = WordSource::Param(param);
    } else {
        words[full_words] = WordSource::Const(0x80);
    }
    // Bit length (little-endian MD5 layout; SHA-1 swaps 14/15 — builders
    // handle that).
    words[14] = WordSource::Const((key_len as u32) * 8);
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length4_has_single_runtime_word() {
        let w = words_for_key_len(4);
        assert_eq!(w[0], WordSource::Param(0));
        assert_eq!(w[1], WordSource::Const(0x80));
        assert_eq!(w[14], WordSource::Const(32));
        assert!(w[2..14].iter().all(|s| *s == WordSource::Const(0)));
    }

    #[test]
    fn length6_has_two_runtime_words() {
        let w = words_for_key_len(6);
        assert_eq!(w[0], WordSource::Param(0));
        assert_eq!(w[1], WordSource::Param(1), "terminator shares the word");
        assert_eq!(w[2], WordSource::Const(0));
        assert_eq!(w[14], WordSource::Const(48));
    }

    #[test]
    fn length8_terminator_gets_own_word() {
        let w = words_for_key_len(8);
        assert_eq!(w[0], WordSource::Param(0));
        assert_eq!(w[1], WordSource::Param(1));
        assert_eq!(w[2], WordSource::Const(0x80));
    }

    #[test]
    #[should_panic]
    fn oversized_key_rejected() {
        words_for_key_len(21);
    }
}
