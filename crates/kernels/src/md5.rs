//! MD5 cracking kernels as executable IR.
//!
//! The builder performs the same constant folding `nvcc` applies: IV
//! words, padding words and `K[i] + w[g]` constants combine at build time,
//! so the emitted stream contains exactly the instructions a compiled
//! kernel executes (Tables IV–VI). The IR remains functionally complete —
//! evaluating it with the runtime message words reproduces real MD5
//! (tested against `eks-hashes`).

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_gpusim::isa::{KernelBuilder, KernelIr, Operand, Reg};
use eks_hashes::md5::{IV, K, S};

use crate::WordSource;

/// Which MD5 kernel to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Md5Variant {
    /// Full 64 steps + chaining addition per candidate (Cryptohaze-class).
    Naive,
    /// 15-step reversal applied: 49 forward steps, compare after step 48.
    Reversed,
    /// Reversed + early exit: the comparison anticipates the state
    /// component produced at step 45, so the average-case trace runs 46
    /// steps. Rotates by 16 inside this window become `PRMT` on cc 3.0
    /// (exactly 3 of them — steps 34, 38 and 42).
    Optimized,
}

impl Md5Variant {
    /// Forward steps in the average-case per-candidate trace.
    pub fn steps(self) -> usize {
        match self {
            Md5Variant::Naive => 64,
            Md5Variant::Reversed => 49,
            Md5Variant::Optimized => 46,
        }
    }
}

/// A built kernel plus the registers holding its comparison outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltKernel {
    /// The executable IR (one candidate per iteration unless interleaved).
    pub ir: KernelIr,
    /// Registers holding the output state words, in comparison order.
    pub outputs: Vec<Reg>,
    /// Loop-carried registers: values the *next* iteration consumes (the
    /// advanced candidate word from the `next` operator). Dead-store
    /// analysis must treat these as roots alongside `outputs`.
    pub carried: Vec<Reg>,
}

/// A value during building: compile-time constant or emitted register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V {
    C(u32),
    R(Reg),
}

impl V {
    fn op(self) -> Operand {
        match self {
            V::C(c) => Operand::Imm(c),
            V::R(r) => Operand::R(r),
        }
    }
}

/// Folding helpers over [`KernelBuilder`] mirroring compiler behaviour.
struct Fold<'a>(&'a mut KernelBuilder);

impl Fold<'_> {
    fn add(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x.wrapping_add(y)),
            _ => V::R(self.0.add(a.op(), b.op())),
        }
    }

    fn and(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x & y),
            _ => V::R(self.0.and(a.op(), b.op())),
        }
    }

    fn or(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x | y),
            _ => V::R(self.0.or(a.op(), b.op())),
        }
    }

    fn xor(&mut self, a: V, b: V) -> V {
        match (a, b) {
            (V::C(x), V::C(y)) => V::C(x ^ y),
            _ => V::R(self.0.xor(a.op(), b.op())),
        }
    }

    fn not(&mut self, a: V) -> V {
        match a {
            V::C(x) => V::C(!x),
            V::R(_) => V::R(self.0.not(a.op())),
        }
    }

    fn rotl(&mut self, a: V, n: u32) -> V {
        match a {
            V::C(x) => V::C(x.rotate_left(n)),
            V::R(_) => V::R(self.0.rotl(a.op(), n)),
        }
    }

    /// Sum a list of values with all constants pre-combined — what the
    /// compiler does to `a + F + K[i] + w[g]` chains.
    fn sum(&mut self, terms: &[V]) -> V {
        let mut konst: u32 = 0;
        let mut acc: Option<V> = None;
        for &t in terms {
            match t {
                V::C(c) => konst = konst.wrapping_add(c),
                V::R(_) => {
                    acc = Some(match acc {
                        None => t,
                        Some(prev) => self.add(prev, t),
                    })
                }
            }
        }
        match acc {
            None => V::C(konst),
            Some(v) if konst == 0 => v,
            Some(v) => self.add(v, V::C(konst)),
        }
    }

    fn materialize(&mut self, v: V) -> Reg {
        match v {
            V::C(c) => self.0.constant(c),
            V::R(r) => r,
        }
    }
}

/// The MD5 round function F/G/H/I emitted with folding. `i` is the step.
fn round_fn(f: &mut Fold, i: usize, b: V, c: V, d: V) -> V {
    match i / 16 {
        0 => {
            // (b & c) | (~b & d)
            let bc = f.and(b, c);
            let nb = f.not(b);
            let nbd = f.and(nb, d);
            f.or(bc, nbd)
        }
        1 => {
            // (d & b) | (~d & c)
            let db = f.and(d, b);
            let nd = f.not(d);
            let ndc = f.and(nd, c);
            f.or(db, ndc)
        }
        2 => {
            // b ^ c ^ d
            let bc = f.xor(b, c);
            f.xor(bc, d)
        }
        _ => {
            // c ^ (b | ~d)
            let nd = f.not(d);
            let bnd = f.or(b, nd);
            f.xor(c, bnd)
        }
    }
}

/// Message-word index of step `i` (RFC 1321 schedule).
fn g(i: usize) -> usize {
    eks_hashes::md5::word_index(i)
}

/// Build an MD5 kernel for keys of a fixed length (described by `words`).
pub fn build_md5(variant: Md5Variant, words: &[WordSource; 16]) -> BuiltKernel {
    let name = format!("md5/{variant:?}").to_ascii_lowercase();
    let mut b = KernelBuilder::new(name);
    // Materialize the message words.
    let w: Vec<V> = words
        .iter()
        .map(|s| match *s {
            WordSource::Const(c) => V::C(c),
            WordSource::Param(i) => V::R(b.param(i)),
        })
        .collect();
    let mut f = Fold(&mut b);
    let mut state = [V::C(IV[0]), V::C(IV[1]), V::C(IV[2]), V::C(IV[3])];

    for i in 0..variant.steps() {
        let [a, bb, c, d] = state;
        let fv = round_fn(&mut f, i, bb, c, d);
        let sum = f.sum(&[a, fv, V::C(K[i]), w[g(i)]]);
        let rot = f.rotl(sum, S[i]);
        let nb = f.add(bb, rot);
        state = [d, nb, bb, c];
    }

    let outputs: Vec<Reg> = match variant {
        Md5Variant::Naive => {
            // Chaining addition, then compare all four digest words.
            let chained = [
                f.add(state[0], V::C(IV[0])),
                f.add(state[1], V::C(IV[1])),
                f.add(state[2], V::C(IV[2])),
                f.add(state[3], V::C(IV[3])),
            ];
            chained.into_iter().map(|v| f.materialize(v)).collect()
        }
        Md5Variant::Reversed => {
            // Compare the state after step 48 against the reverted target.
            state.into_iter().map(|v| f.materialize(v)).collect()
        }
        Md5Variant::Optimized => {
            // Early exit: the `b` produced at step 45 is the first digest
            // component to stabilize (it becomes a48); compare it alone in
            // the average case.
            vec![f.materialize(state[1])]
        }
    };

    // The next operator: advance the low word of the candidate for the
    // following iteration (FirstCharFastest enumeration touches only the
    // first block in the common case; the paper measures this at < 1 % of
    // the hash cost).
    let mut carried = Vec::new();
    if let Some(&V::R(w0)) = w.first() {
        let advanced = f.add(V::R(w0), V::C(1));
        carried.push(f.materialize(advanced));
    }

    BuiltKernel { ir: b.build(), outputs, carried }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words_for_key_len;
    use eks_hashes::md5::{md5_compress, step};
    use eks_hashes::padding::pad_md5_block;

    /// Run the IR with a real padded block's runtime words and return the
    /// output register values.
    fn eval(built: &BuiltKernel, key: &[u8]) -> Vec<u32> {
        let block = pad_md5_block(key);
        // Runtime params are the key-bearing words, in order.
        let n_params = words_for_key_len(key.len())
            .iter()
            .filter(|s| matches!(s, WordSource::Param(_)))
            .count();
        let params: Vec<u32> = block[..n_params].to_vec();
        let regs = built.ir.evaluate(&params);
        built.outputs.iter().map(|r| regs[r.0 as usize]).collect()
    }

    #[test]
    fn naive_kernel_computes_real_md5() {
        for key in [&b"Zb3q"[..], b"a", b"hunter2", b"0123456789ab"] {
            let words = words_for_key_len(key.len());
            let built = build_md5(Md5Variant::Naive, &words);
            let got = eval(&built, key);
            let want = md5_compress(IV, &pad_md5_block(key));
            assert_eq!(got, want.to_vec(), "key {key:?}");
        }
    }

    #[test]
    fn reversed_kernel_computes_state_after_step_48() {
        let key = b"Zb3q";
        let words = words_for_key_len(key.len());
        let built = build_md5(Md5Variant::Reversed, &words);
        let got = eval(&built, key);
        let block = pad_md5_block(key);
        let mut s = IV;
        for i in 0..49 {
            s = step(i, s, &block);
        }
        assert_eq!(got, s.to_vec());
    }

    #[test]
    fn optimized_kernel_computes_b45() {
        let key = b"Zb3q";
        let words = words_for_key_len(key.len());
        let built = build_md5(Md5Variant::Optimized, &words);
        let got = eval(&built, key);
        let block = pad_md5_block(key);
        let mut s = IV;
        for i in 0..46 {
            s = step(i, s, &block);
        }
        // b45 equals a48: the first digest component to stabilize.
        let mut s48 = s;
        for i in 46..49 {
            s48 = step(i, s48, &block);
        }
        assert_eq!(got, vec![s[1]]);
        assert_eq!(s[1], s48[0], "b45 must equal a48 (early-exit identity)");
    }

    #[test]
    fn variant_step_counts() {
        assert_eq!(Md5Variant::Naive.steps(), 64);
        assert_eq!(Md5Variant::Reversed.steps(), 49);
        assert_eq!(Md5Variant::Optimized.steps(), 46);
    }

    #[test]
    fn optimized_window_contains_exactly_three_rot16() {
        // Steps 34, 38, 42 rotate by 16 — the PRMT count of Table VI.
        let in_window = (0..46).filter(|&i| S[i] == 16).count();
        assert_eq!(in_window, 3);
        // Step 46 would be the fourth.
        assert_eq!(S[46], 16);
    }
}
