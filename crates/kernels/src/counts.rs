//! Instruction-count tables: the paper's published numbers (Tables III–VI)
//! side by side with the counts our kernels produce through the simulator
//! codegen. The bench targets print both columns; EXPERIMENTS.md records
//! the deltas.

use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::{lower, InstrCounts, LoweringOptions};
use eks_gpusim::isa::SourceCounts;

use crate::md5::{build_md5, Md5Variant};
use crate::{words_for_key_len, WordSource};

/// Table III — source-level MD5 operation counts as published.
pub const PAPER_TABLE3_MD5_SOURCE: PaperSourceCounts =
    PaperSourceCounts { add: 320, logic: 160, not: 160, shift: 128 };

/// Source-level counts as published (Table III row layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperSourceCounts {
    /// 32-bit integer ADD.
    pub add: u32,
    /// 32-bit bitwise AND/OR/XOR.
    pub logic: u32,
    /// 32-bit NOT.
    pub not: u32,
    /// 32-bit integer shift.
    pub shift: u32,
}

/// One column of a compiled-count table as published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperInstrCounts {
    /// `IADD`.
    pub iadd: u32,
    /// `AND/OR/XOR`.
    pub lop: u32,
    /// `SHR/SHL`.
    pub shift: u32,
    /// `IMAD/ISCADD`.
    pub imad: u32,
    /// `PRMT`.
    pub prmt: u32,
}

impl PaperInstrCounts {
    /// Total instructions.
    pub fn total(&self) -> u32 {
        self.iadd + self.lop + self.shift + self.imad + self.prmt
    }

    /// Shift-port instructions.
    pub fn shift_mad(&self) -> u32 {
        self.shift + self.imad + self.prmt
    }
}

/// Table IV — compiled counts of the naive kernel.
pub const PAPER_TABLE4_MD5_CC1X: PaperInstrCounts =
    PaperInstrCounts { iadd: 284, lop: 156, shift: 128, imad: 0, prmt: 0 };
/// Table IV, cc 2.x / 3.0 column.
pub const PAPER_TABLE4_MD5_CC2X: PaperInstrCounts =
    PaperInstrCounts { iadd: 220, lop: 155, shift: 64, imad: 64, prmt: 0 };

/// Table V — after the 15-step reversal (+ early exit).
pub const PAPER_TABLE5_MD5_CC1X: PaperInstrCounts =
    PaperInstrCounts { iadd: 197, lop: 118, shift: 90, imad: 0, prmt: 0 };
/// Table V, cc 2.x / 3.0 column.
pub const PAPER_TABLE5_MD5_CC2X: PaperInstrCounts =
    PaperInstrCounts { iadd: 150, lop: 120, shift: 46, imad: 46, prmt: 0 };

/// Table VI — the final optimized kernel (`__byte_perm` on cc 3.0).
pub const PAPER_TABLE6_MD5_CC1X: PaperInstrCounts =
    PaperInstrCounts { iadd: 197, lop: 118, shift: 90, imad: 0, prmt: 0 };
/// Table VI, cc 2.x / 3.0 column.
pub const PAPER_TABLE6_MD5_CC2X: PaperInstrCounts =
    PaperInstrCounts { iadd: 150, lop: 120, shift: 43, imad: 43, prmt: 3 };

/// Our source-level counts for the full MD5 kernel (Table III analogue).
///
/// Table III counts "all the operations that cannot be evaluated at
/// compile time in the CUDA source code" *before* constant folding, so
/// every message word is treated as runtime here.
pub fn our_md5_source_counts() -> SourceCounts {
    let mut words = [WordSource::Param(0); 16];
    for (i, w) in words.iter_mut().enumerate() {
        *w = WordSource::Param(i as u32);
    }
    build_md5(Md5Variant::Naive, &words).ir.source_counts()
}

/// Our compiled counts for an MD5 variant on an architecture.
pub fn our_md5_counts(variant: Md5Variant, cc: ComputeCapability) -> InstrCounts {
    let built = build_md5(variant, &words_for_key_len(4));
    let options = match variant {
        // Tables IV and V predate the __byte_perm optimization.
        Md5Variant::Naive | Md5Variant::Reversed => LoweringOptions::plain(cc),
        Md5Variant::Optimized => LoweringOptions::for_cc(cc),
    };
    lower(&built.ir, options).counts
}

/// Our compiled counts for a SHA-1 variant on an architecture.
pub fn our_sha1_counts(
    variant: crate::sha1::Sha1Variant,
    cc: ComputeCapability,
) -> InstrCounts {
    let built = crate::sha1::build_sha1(variant, &crate::sha1::sha1_words_for_key_len(4));
    lower(&built.ir, LoweringOptions::for_cc(cc)).counts
}

/// Our compiled counts for an MD4 (NTLM) variant on an architecture.
pub fn our_md4_counts(
    variant: crate::md4::Md4Variant,
    cc: ComputeCapability,
) -> InstrCounts {
    let built = crate::md4::build_md4(variant, &crate::md4::ntlm_words_for_key_len(4));
    lower(&built.ir, LoweringOptions::for_cc(cc)).counts
}

/// Relative difference between a paper count and ours, per class, as a
/// fraction of the paper value (0.0 = exact).
pub fn count_deltas(paper: &PaperInstrCounts, ours: &InstrCounts) -> Vec<(&'static str, f64)> {
    let rel = |p: u32, o: u32| {
        if p == 0 {
            if o == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (o as f64 - p as f64) / p as f64
        }
    };
    vec![
        ("IADD", rel(paper.iadd, ours.iadd())),
        ("AND/OR/XOR", rel(paper.lop, ours.lop())),
        ("SHR/SHL", rel(paper.shift, ours.shift())),
        ("IMAD/ISCADD", rel(paper.imad, ours.imad())),
        ("PRMT", rel(paper.prmt, ours.prmt())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_counts_match_table3_structure() {
        // Our source counts: 5 adds and 2 shifts per step × 64 steps plus
        // chaining/next — the add and shift rows of Table III match
        // exactly; the paper's NOT row (160) exceeds the canonical 48
        // NOTs of RFC 1321 (documented delta).
        let c = our_md5_source_counts();
        assert_eq!(c.shift, PAPER_TABLE3_MD5_SOURCE.shift, "128 shifts");
        assert!(
            (c.add as i64 - PAPER_TABLE3_MD5_SOURCE.add as i64).unsigned_abs() <= 10,
            "adds {} vs 320",
            c.add
        );
        assert!(c.logic.abs_diff(PAPER_TABLE3_MD5_SOURCE.logic) <= 10, "logic {}", c.logic);
        // RFC 1321 has 48 complements; step 0's folds against the
        // constant IV, leaving 47 in the emitted source.
        assert_eq!(c.not, 47);
    }

    #[test]
    fn naive_shift_counts_match_table4_exactly() {
        let c1 = our_md5_counts(Md5Variant::Naive, ComputeCapability::Sm1x);
        assert_eq!(c1.shift(), PAPER_TABLE4_MD5_CC1X.shift, "128 shifts on cc 1.x");
        let c2 = our_md5_counts(Md5Variant::Naive, ComputeCapability::Sm21);
        assert_eq!(c2.shift(), PAPER_TABLE4_MD5_CC2X.shift, "64 SHL on cc 2.x");
        assert_eq!(c2.imad(), PAPER_TABLE4_MD5_CC2X.imad, "64 IMAD on cc 2.x");
    }

    #[test]
    fn optimized_shift_counts_match_table6_exactly() {
        let c = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm30);
        assert_eq!(c.shift(), PAPER_TABLE6_MD5_CC2X.shift, "43 SHL");
        assert_eq!(c.imad(), PAPER_TABLE6_MD5_CC2X.imad, "43 IMAD");
        assert_eq!(c.prmt(), PAPER_TABLE6_MD5_CC2X.prmt, "3 PRMT");
    }

    #[test]
    fn reversed_counts_near_table5() {
        let c = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm21);
        // Without PRMT (cc 2.1): 46 SHL + 46 IMAD, Table V.
        assert_eq!(c.shift(), PAPER_TABLE5_MD5_CC2X.shift);
        assert_eq!(c.imad(), PAPER_TABLE5_MD5_CC2X.imad);
        // Adds/logic within 10 % of the paper.
        for (name, d) in count_deltas(&PAPER_TABLE5_MD5_CC2X, &c) {
            if name == "PRMT" {
                continue;
            }
            assert!(d.abs() < 0.10, "{name} delta {d}");
        }
    }

    #[test]
    fn all_class_deltas_within_ten_percent() {
        let cases = [
            (Md5Variant::Naive, ComputeCapability::Sm1x, PAPER_TABLE4_MD5_CC1X),
            (Md5Variant::Naive, ComputeCapability::Sm21, PAPER_TABLE4_MD5_CC2X),
            (Md5Variant::Optimized, ComputeCapability::Sm1x, PAPER_TABLE6_MD5_CC1X),
            (Md5Variant::Optimized, ComputeCapability::Sm30, PAPER_TABLE6_MD5_CC2X),
        ];
        for (variant, cc, paper) in cases {
            let ours = our_md5_counts(variant, cc);
            for (name, d) in count_deltas(&paper, &ours) {
                if !d.is_finite() {
                    continue;
                }
                assert!(d.abs() <= 0.12, "{variant:?}/{cc:?} {name}: delta {d:.3}");
            }
        }
    }

    #[test]
    fn ratio_r_matches_paper() {
        // Paper: R = 270/92 ≈ 2.93 before PRMT on cc ≥ 2.0.
        let c = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm21);
        assert!((c.ratio() - 2.93).abs() < 0.15, "R = {}", c.ratio());
    }

    #[test]
    fn sha1_ratio_matches_papers_claim() {
        // Section V: SHA-1 "shows an even lower ratio between addition
        // and shifts/MAD operations (~1.53)". Our SHA-1 lands close.
        let c = our_sha1_counts(crate::sha1::Sha1Variant::Optimized, ComputeCapability::Sm21);
        let r = c.ratio();
        assert!((1.3..2.0).contains(&r), "SHA-1 R = {r}");
        let md5 = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm21).ratio();
        assert!(r < md5, "SHA-1 ratio below MD5's");
    }

    #[test]
    fn md4_counts_scale_with_step_count() {
        // 30 of MD4's steps vs 46 of MD5's: the shift-port load scales
        // accordingly (one rotate per step on both).
        let md4 = our_md4_counts(crate::md4::Md4Variant::Optimized, ComputeCapability::Sm21);
        let md5 = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm21);
        assert_eq!(md4.shift_mad(), 60, "30 rotates = SHL+IMAD each");
        assert_eq!(md5.shift_mad(), 92, "46 rotates");
    }

    #[test]
    fn paper_tables_internal_consistency() {
        // Table VI totals: 270 add/logic and 89 shift-port on cc 2.x/3.0;
        // the paper's "43 + 43 + 3 = 89 ≈ 270/3" observation.
        assert_eq!(
            PAPER_TABLE6_MD5_CC2X.iadd + PAPER_TABLE6_MD5_CC2X.lop,
            270
        );
        assert_eq!(PAPER_TABLE6_MD5_CC2X.shift_mad(), 89);
    }
}
