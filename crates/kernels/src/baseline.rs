//! Baseline tool models: BarsWF and Cryptohaze Multiforcer as kernel
//! variants on the same simulator.
//!
//! The paper compares its kernels against both tools on every device
//! (Table VIII). We cannot run the original binaries, so each tool is
//! modeled by the kernel structure it is known to use:
//!
//! * **Cryptohaze Multiforcer** — a straightforward full-hash kernel: all
//!   64 MD5 steps (80 SHA-1 rounds) per candidate. Its measured numbers
//!   sit almost exactly at the theoretical throughput of such a kernel
//!   (e.g. GTX 660: 1280 MKey/s measured vs 32·5·1033e6/128 = 1291 MKey/s
//!   for a 128-rotate-port kernel), which is what this model produces.
//! * **BarsWF** — introduced the 15-step reversal (the paper credits it),
//!   but performs its per-candidate generation with a byte-wise base-N
//!   conversion on the GPU (division/remainder per character), adding
//!   shift-port pressure that our suffix-stable `next` operator avoids.
//!   The conversion is modeled as a divide-by-multiply sequence per
//!   candidate byte.

use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::LoweringOptions;
use eks_gpusim::isa::{KernelBuilder, KernelIr};

use crate::host::HashAlgo;
use crate::md4::{build_md4, ntlm_words_for_key_len, Md4Variant};
use crate::md5::{build_md5, Md5Variant};
use crate::sha1::{build_sha1, sha1_words_for_key_len, Sha1Variant};
use crate::words_for_key_len;

/// The competing implementations of Table VIII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// This paper's kernel (reversal + early exit + per-arch lowering).
    OurApproach,
    /// BarsWF model: reversal, but expensive on-GPU candidate generation
    /// and no per-architecture tuning.
    BarsWf,
    /// Cryptohaze Multiforcer model: full hash per candidate.
    Cryptohaze,
}

impl Tool {
    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Tool::OurApproach => "our approach",
            Tool::BarsWf => "BarsWF",
            Tool::Cryptohaze => "Cryptohaze",
        }
    }
}

/// A tool's kernel for one hash algorithm, ready to lower and simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolKernel {
    /// The abstract kernel body.
    pub ir: KernelIr,
    /// Lowering choices the tool would compile with.
    pub options: LoweringOptions,
}

impl ToolKernel {
    /// Build the kernel a tool runs for `algo` on `cc`, for length-4 keys
    /// (the kernel class the paper optimizes; other lengths pad into more
    /// runtime words but keep the same structure).
    pub fn build(tool: Tool, algo: HashAlgo, cc: ComputeCapability) -> Self {
        let key_len = 4;
        // An iterated KDF re-runs its base kernel; the per-key round loop
        // lives in the driver, so the device kernel is the base hash's
        // (throughput modeling divides by `HashAlgo::cost_factor`).
        let algo = algo.base();
        match (tool, algo) {
            (Tool::OurApproach, HashAlgo::Md5) => ToolKernel {
                ir: build_md5(Md5Variant::Optimized, &words_for_key_len(key_len)).ir,
                options: LoweringOptions::for_cc(cc),
            },
            (Tool::OurApproach, HashAlgo::Sha1) => ToolKernel {
                ir: build_sha1(Sha1Variant::Optimized, &sha1_words_for_key_len(key_len)).ir,
                options: LoweringOptions::for_cc(cc),
            },
            (Tool::BarsWf, HashAlgo::Md5) => {
                let mut built = build_md5(Md5Variant::Reversed, &words_for_key_len(key_len));
                append_base_n_generation(&mut built.ir, key_len);
                ToolKernel { ir: built.ir, options: LoweringOptions::plain(cc) }
            }
            (Tool::BarsWf, HashAlgo::Sha1) => {
                // BarsWF never shipped SHA-1 CUDA kernels of note; the
                // paper's Table VIII accordingly has no BarsWF SHA-1 row.
                // Model it as naive + generation for completeness.
                let mut built = build_sha1(Sha1Variant::Naive, &sha1_words_for_key_len(key_len));
                append_base_n_generation(&mut built.ir, key_len);
                ToolKernel { ir: built.ir, options: LoweringOptions::plain(cc) }
            }
            (Tool::Cryptohaze, HashAlgo::Md5) => ToolKernel {
                ir: build_md5(Md5Variant::Naive, &words_for_key_len(key_len)).ir,
                options: LoweringOptions::plain(cc),
            },
            (Tool::Cryptohaze, HashAlgo::Sha1) => ToolKernel {
                ir: build_sha1(Sha1Variant::Naive, &sha1_words_for_key_len(key_len)).ir,
                options: LoweringOptions::plain(cc),
            },
            // NTLM (extension): MD4 inherits MD5's reversal property, so
            // the same tool models apply.
            (Tool::OurApproach, HashAlgo::Ntlm) => ToolKernel {
                ir: build_md4(Md4Variant::Optimized, &ntlm_words_for_key_len(key_len)).ir,
                options: LoweringOptions::for_cc(cc),
            },
            (Tool::BarsWf, HashAlgo::Ntlm) => {
                let mut built = build_md4(Md4Variant::Reversed, &ntlm_words_for_key_len(key_len));
                append_base_n_generation(&mut built.ir, key_len);
                ToolKernel { ir: built.ir, options: LoweringOptions::plain(cc) }
            }
            (Tool::Cryptohaze, HashAlgo::Ntlm) => ToolKernel {
                ir: build_md4(Md4Variant::Naive, &ntlm_words_for_key_len(key_len)).ir,
                options: LoweringOptions::plain(cc),
            },
            (_, HashAlgo::Md5Iter { .. }) => {
                unreachable!("HashAlgo::base() strips iteration")
            }
        }
    }
}

/// Per-candidate byte-wise base-N conversion, as BarsWF's generator
/// performs it: for each of the four counter bytes, a divide-by-multiply
/// (`IMAD.HI` + shift), a remainder computation, a table-free symbol map
/// and re-packing. Costs ~6 shift-port and ~2 add + ~2 logic instructions
/// per byte.
fn append_base_n_generation(ir: &mut KernelIr, key_len: usize) {
    let mut b = KernelBuilder::new("gen");
    let counter = b.param(100); // the thread's candidate counter
    let mut packed = b.xor(counter, counter); // zero
    let mut rest = counter;
    for byte in 0..key_len.min(4) {
        // quotient ≈ (rest * magic) >> s : multiply-high + shift.
        let hi = b.shl(rest, 1); // stands in for IMAD.HI (multiply-high)
        let q = b.shr(hi, 6);
        // remainder = rest - q * N: multiply-add + subtract.
        let qn = b.shl(q, 6); // stands in for IMAD (q * N)
        let rem = b.add(rest, qn);
        // symbol = charset_base + rem; insert into the packed word.
        let sym = b.add(rem, 0x61u32);
        let shifted = b.shl(sym, (byte as u32 % 4) * 8);
        packed = b.or(packed, shifted);
        rest = q;
    }
    let _ = packed;
    // Splice the generation stream in front of the hash body, renumbering
    // its registers above the existing ones.
    let gen = b.build();
    let offset = ir.reg_count;
    let remapped = crate::interleave::interleave(
        &KernelIr { name: ir.name.clone(), ops: vec![], keys_per_iteration: 1, reg_count: offset },
        &gen,
    );
    let mut ops = remapped.ops;
    ops.extend(ir.ops.iter().copied());
    ir.ops = ops;
    ir.reg_count += gen.reg_count;
    ir.name = format!("{}+basen", ir.name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_gpusim::codegen::lower;
    use eks_gpusim::device::Device;
    use eks_gpusim::throughput::theoretical_mkeys;

    fn theoretical(tool: Tool, algo: HashAlgo, dev: &Device) -> f64 {
        let tk = ToolKernel::build(tool, algo, dev.cc);
        let k = lower(&tk.ir, tk.options);
        theoretical_mkeys(dev, &k.counts) * k.keys_per_iteration as f64
    }

    #[test]
    fn tool_ordering_on_kepler_md5() {
        // Table VIII GTX 660 MD5: ours 1841 > BarsWF 1340 > Cryptohaze 1280.
        let dev = Device::geforce_gtx_660();
        let ours = theoretical(Tool::OurApproach, HashAlgo::Md5, &dev);
        let bars = theoretical(Tool::BarsWf, HashAlgo::Md5, &dev);
        let crypto = theoretical(Tool::Cryptohaze, HashAlgo::Md5, &dev);
        assert!(ours > bars && bars > crypto, "ours={ours} bars={bars} crypto={crypto}");
    }

    #[test]
    fn cryptohaze_model_matches_its_measured_kepler_number() {
        // Cryptohaze measured 1280 MKey/s on the GTX 660; a full-64-step
        // kernel is shift-bound at 32·5·1033e6/(64+64) ≈ 1291.
        let dev = Device::geforce_gtx_660();
        let crypto = theoretical(Tool::Cryptohaze, HashAlgo::Md5, &dev);
        assert!((crypto - 1280.0).abs() < 60.0, "got {crypto}");
    }

    #[test]
    fn barswf_model_lands_near_its_measured_kepler_number() {
        // BarsWF measured 1340 MKey/s on the GTX 660.
        let dev = Device::geforce_gtx_660();
        let bars = theoretical(Tool::BarsWf, HashAlgo::Md5, &dev);
        assert!((bars - 1340.0).abs() < 120.0, "got {bars}");
    }

    #[test]
    fn tool_names() {
        assert_eq!(Tool::OurApproach.name(), "our approach");
        assert_eq!(Tool::BarsWf.name(), "BarsWF");
        assert_eq!(Tool::Cryptohaze.name(), "Cryptohaze");
    }

    #[test]
    fn generation_overhead_is_shift_heavy() {
        let dev = Device::geforce_gtx_660();
        let plain = ToolKernel {
            ir: crate::md5::build_md5(Md5Variant::Reversed, &words_for_key_len(4)).ir,
            options: eks_gpusim::codegen::LoweringOptions::plain(dev.cc),
        };
        let bars = ToolKernel::build(Tool::BarsWf, HashAlgo::Md5, dev.cc);
        let kp = lower(&plain.ir, plain.options);
        let kb = lower(&bars.ir, bars.options);
        assert!(kb.counts.shift_mad() > kp.counts.shift_mad() + 15);
    }
}
