//! Ablation: what does the sleep-set reduction buy the model checker?
//!
//! Explore the same scheduler configurations with the partial-order
//! reduction on and off. The reduction is only sound if both runs agree
//! on the verdict and on the set of reachable merge outcomes — asserted
//! here — and it is only worth its complexity if it prunes a real
//! fraction of the transition work. Also scales workers and intervals to
//! show the state-space growth that makes the reduction necessary.

use eks_bench::harness::Group;
use eks_bench::header;
use eks_verify::{check, CheckOptions, ModelConfig};

fn main() {
    header("Ablation — sleep-set reduction in the scheduler model checker");

    let full = CheckOptions { reduction: false, ..CheckOptions::default() };
    let reduced = CheckOptions::default();

    println!(
        "{:<30}{:>12}{:>12}{:>14}{:>14}{:>9}",
        "configuration", "states", "(reduced)", "transitions", "(reduced)", "pruned"
    );
    let configs: Vec<(String, ModelConfig)> = vec![
        ("steal 2w x 4 intervals".into(), ModelConfig::steal_intervals(2, 4)),
        ("steal 2w x 6 intervals".into(), ModelConfig::steal_intervals(2, 6)),
        ("steal 2w x 8 intervals".into(), ModelConfig::steal_intervals(2, 8)),
        ("steal 3w x 3 intervals".into(), ModelConfig::steal_intervals(3, 3)),
        ("first-hit 2w x 8 keys".into(), ModelConfig::first_hit(2, 8)),
        ("cancel-bound 2w x 8 keys".into(), ModelConfig::cancel_bound(2, 8)),
    ];
    for (name, cfg) in &configs {
        let raw = check(cfg.clone(), full);
        let red = check(cfg.clone(), reduced);
        // Soundness: the reduction may prune transitions, never verdicts
        // or reachable merge results.
        assert_eq!(raw.clean(), red.clean(), "{name}: reduction changed the verdict");
        assert_eq!(raw.outcomes, red.outcomes, "{name}: reduction changed the outcomes");
        assert!(!raw.truncated && !red.truncated, "{name}: exploration must complete");
        let pruned = 1.0 - red.transitions as f64 / raw.transitions as f64;
        println!(
            "{:<30}{:>12}{:>12}{:>14}{:>14}{:>8.0}%",
            name,
            raw.states,
            red.states,
            raw.transitions,
            red.transitions,
            pruned * 100.0
        );
    }

    println!();
    let acceptance = ModelConfig::steal_intervals(2, 8);
    let mut g = Group::new("checker runtime");
    g.bench("2w x 8 intervals, reduced", || check(acceptance.clone(), reduced));
    let mut g = Group::new("checker runtime");
    g.bench("2w x 8 intervals, full", || check(acceptance.clone(), full));
    let mut g = Group::new("checker runtime");
    g.bench("3w x 3 intervals, reduced", || check(ModelConfig::steal_intervals(3, 3), reduced));
}
