//! Ablation: does fixing what the analyzer flags actually pay?
//!
//! For each architecture, lower the MD5 kernel twice — once plainly
//! (the stream the peephole lints complain about) and once with the
//! per-architecture lowerings they recommend — and compare simulated
//! throughput next to the number of findings. A lint is only worth its
//! name if the fix moves the needle; a clean report should mean there is
//! nothing left to win. Also times the analyzer itself: a linter that is
//! slower than the simulation it guards would not be run.

use eks_analyzer::{analyze_compiled, analyze_ir, md5_budget_report, DEFAULT_TOLERANCE};
use eks_bench::harness::Group;
use eks_bench::header;
use eks_gpusim::codegen::{lower, LoweringOptions};
use eks_gpusim::device::{Device, DeviceCatalog};
use eks_gpusim::sched::{simulate, SimConfig};
use eks_kernels::md5::{build_md5, Md5Variant};
use eks_kernels::words_for_key_len;

fn main() {
    header("Ablation — analyzer findings vs the throughput of fixing them");
    let words = words_for_key_len(4);
    let built = build_md5(Md5Variant::Optimized, &words);

    println!(
        "{:<24}{:>9}{:>12}{:>9}{:>12}{:>9}",
        "device", "findings", "plain", "findings", "tuned", "gain"
    );
    let mut devices = DeviceCatalog::paper_devices();
    devices.push(Device::geforce_gtx_780());
    for dev in &devices {
        let plain = lower(&built.ir, LoweringOptions::plain(dev.cc));
        let tuned = lower(&built.ir, LoweringOptions::for_cc(dev.cc));
        let plain_findings = analyze_compiled(&plain).diagnostics.len();
        let tuned_findings = analyze_compiled(&tuned).diagnostics.len();
        let plain_mkeys = simulate(&plain, SimConfig::for_cc(dev.cc)).device_mkeys(dev);
        let tuned_mkeys = simulate(&tuned, SimConfig::for_cc(dev.cc)).device_mkeys(dev);
        println!(
            "{:<24}{:>9}{:>7.0} MK/s{:>9}{:>7.0} MK/s{:>8.2}x",
            dev.name,
            plain_findings,
            plain_mkeys,
            tuned_findings,
            tuned_mkeys,
            tuned_mkeys / plain_mkeys
        );
        // The recommended lowering must silence the peephole lints and
        // never lose throughput.
        assert_eq!(tuned_findings, 0, "tuned lowering must be clean on {}", dev.name);
        assert!(tuned_mkeys >= plain_mkeys * 0.999, "fixes must not hurt on {}", dev.name);
        // Wherever the lints found something, the fix must win.
        if plain_findings > 0 {
            assert!(
                tuned_mkeys > plain_mkeys,
                "findings on {} did not translate into throughput",
                dev.name
            );
        }
    }

    println!();
    let mut roots = built.outputs.clone();
    roots.extend_from_slice(&built.carried);
    let sm30 = lower(&built.ir, LoweringOptions::plain(eks_gpusim::arch::ComputeCapability::Sm30));

    let mut g = Group::new("analyzer runtime");
    g.throughput_elements(built.ir.ops.len() as u64);
    g.bench("dataflow (ops)", || analyze_ir(&built.ir, Some(&roots)));
    let mut g = Group::new("analyzer runtime");
    g.throughput_elements(sm30.instrs.len() as u64);
    g.bench("peephole+pressure (instrs)", || analyze_compiled(&sm30));
    let mut g = Group::new("analyzer runtime");
    g.bench("budget gate (tables)", || md5_budget_report(DEFAULT_TOLERANCE));
}
