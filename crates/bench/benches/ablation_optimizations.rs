//! Ablation: each optimization of Section V in isolation, on every
//! architecture — what the paper's narrative claims, measured.
//!
//! * naive → reversed: the BarsWF trick (paper: ≈ 1.25× "in almost all
//!   architectures");
//! * reversed → +early exit (46 vs 49 steps);
//! * +`__byte_perm` (cc 3.0);
//! * ×2 interleave (ILP for Fermi);
//! * funnel shift (cc 3.5 projection).

use eks_bench::header;
use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::{lower, LoweringOptions};
use eks_gpusim::device::{Device, DeviceCatalog};
use eks_gpusim::sched::{simulate, SimConfig};
use eks_kernels::interleave::interleave_self;
use eks_kernels::md5::{build_md5, Md5Variant};
use eks_kernels::words_for_key_len;

fn mkeys(ir: &eks_gpusim::isa::KernelIr, opts: LoweringOptions, dev: &Device) -> f64 {
    let k = lower(ir, opts);
    simulate(&k, SimConfig::for_cc(dev.cc)).device_mkeys(dev)
}

fn main() {
    header("Ablation — MD5 kernel optimizations per architecture");
    let words = words_for_key_len(4);
    let naive = build_md5(Md5Variant::Naive, &words).ir;
    let reversed = build_md5(Md5Variant::Reversed, &words).ir;
    let optimized = build_md5(Md5Variant::Optimized, &words).ir;
    let optimized_x2 = interleave_self(&optimized);

    println!(
        "{:<24}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "device", "naive", "reversed", "earlyex", "+prmt", "x2 ilp"
    );
    for dev in DeviceCatalog::paper_devices() {
        let plain = LoweringOptions::plain(dev.cc);
        let tuned = LoweringOptions::for_cc(dev.cc);
        let n = mkeys(&naive, plain, &dev);
        let r = mkeys(&reversed, plain, &dev);
        let e = mkeys(&optimized, plain, &dev);
        let p = mkeys(&optimized, tuned, &dev);
        let x = mkeys(&optimized_x2, tuned, &dev);
        println!(
            "{:<24}{:>10.0}{:>10.0}{:>10.0}{:>10.0}{:>10.0}",
            dev.name, n, r, e, p, x
        );
        assert!(r > n, "reversal must help on {}", dev.name);
        assert!(e >= r, "early exit must not hurt on {}", dev.name);
    }

    // cc 3.5 projection: funnel shift on a GTX 780.
    let d780 = Device::geforce_gtx_780();
    let funnel = mkeys(&optimized, LoweringOptions::for_cc(ComputeCapability::Sm35), &d780);
    let no_funnel = mkeys(&optimized, LoweringOptions::plain(ComputeCapability::Sm35), &d780);
    println!(
        "\ncc 3.5 projection (GTX 780): {no_funnel:.0} MKey/s without funnel shift, {funnel:.0} with \
         ({:.2}x)",
        funnel / no_funnel
    );
    println!("the paper predicts a large rotate-throughput gain from SHF (Section V-B).");
}
