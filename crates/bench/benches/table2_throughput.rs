//! Table II — per-class instruction throughput per compute capability
//! (operations per clock cycle per multiprocessor).

use eks_bench::header;
use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::isa::MachineClass;

fn main() {
    header("Table II — instruction throughput (ops/cycle/MP)");
    let ccs = [
        ComputeCapability::Sm1x,
        ComputeCapability::Sm20,
        ComputeCapability::Sm21,
        ComputeCapability::Sm30,
    ];
    println!("{:<28}{:>8}{:>8}{:>8}{:>8}", "compute capability", "1.*", "2.0", "2.1", "3.0");
    for (name, class) in [
        ("32-bit integer ADD", MachineClass::IAdd),
        ("32-bit AND/OR/XOR", MachineClass::Lop),
        ("32-bit integer shift", MachineClass::Shift),
        ("32-bit integer MAD", MachineClass::Imad),
    ] {
        print!("{name:<28}");
        for cc in ccs {
            print!("{:>8}", cc.class_throughput(class));
        }
        println!();
    }
    println!("\npaper values reproduced exactly (asserted in eks-gpusim unit tests)");
}
