//! Table VII — the five evaluation GPUs.

use eks_bench::header;
use eks_gpusim::device::DeviceCatalog;

fn main() {
    header("Table VII — GPU specifications");
    println!(
        "{:<24}{:>8}{:>8}{:>12}{:>8}",
        "device", "MPs", "cores", "clock MHz", "cc"
    );
    for d in DeviceCatalog::paper_devices() {
        println!(
            "{:<24}{:>8}{:>8}{:>12}{:>8}",
            d.name,
            d.mp_count,
            d.cores,
            d.clock_mhz,
            d.cc.label()
        );
        assert!(d.is_consistent(), "cores = MPs × cores-per-MP");
    }
    println!("\npaper values reproduced exactly (asserted in eks-gpusim unit tests)");
}
