//! Benchmarks for the real CPU cracking engine: raw scan throughput and
//! thread scaling (the fine-grain half of the paper mapped onto a
//! multicore host).

use eks_bench::harness::Group;
use eks_cracker::{crack_parallel, ParallelConfig, TargetSet};
use eks_hashes::HashAlgo;
use eks_keyspace::{Charset, Interval, KeySpace, Order};

fn space() -> KeySpace {
    KeySpace::new(Charset::lowercase(), 1, 6, Order::FirstCharFastest).unwrap()
}

/// A target that is never found: forces a full interval sweep.
fn impossible_targets() -> TargetSet {
    TargetSet::new(HashAlgo::Md5, &[vec![0u8; 16]])
}

fn bench_scan_throughput() {
    let s = space();
    let t = impossible_targets();
    let mut g = Group::new("scan_throughput");
    const KEYS: u64 = 200_000;
    g.throughput_elements(KEYS);
    for threads in [1usize, 2, 4, 8] {
        g.bench(&format!("threads_{threads}"), || {
            let cfg = ParallelConfig { threads, chunk: 1 << 12, first_hit_only: false, ..ParallelConfig::default() };
            crack_parallel(&s, &t, Interval::new(0, KEYS as u128), cfg)
        });
    }
}

fn bench_sha1_scan() {
    let s = space();
    let t = TargetSet::new(HashAlgo::Sha1, &[vec![0u8; 20]]);
    let mut g = Group::new("sha1_scan");
    const KEYS: u64 = 100_000;
    g.throughput_elements(KEYS);
    g.bench("threads_4", || {
        let cfg = ParallelConfig { threads: 4, chunk: 1 << 12, first_hit_only: false, ..ParallelConfig::default() };
        crack_parallel(&s, &t, Interval::new(0, KEYS as u128), cfg)
    });
}

fn bench_multi_target() {
    // Audit scenario: does testing 100 digests at once slow the scan?
    let s = space();
    let mut g = Group::new("multi_target");
    const KEYS: u64 = 100_000;
    g.throughput_elements(KEYS);
    for n_targets in [1usize, 10, 100] {
        let digests: Vec<Vec<u8>> = (0..n_targets)
            .map(|i| HashAlgo::Md5.hash_long(format!("zzzz-{i}").as_bytes()))
            .collect();
        let t = TargetSet::new(HashAlgo::Md5, &digests);
        g.bench(&format!("targets_{n_targets}"), || {
            let cfg = ParallelConfig { threads: 4, chunk: 1 << 12, first_hit_only: false, ..ParallelConfig::default() };
            crack_parallel(&s, &t, Interval::new(0, KEYS as u128), cfg)
        });
    }
}

fn main() {
    bench_scan_throughput();
    bench_sha1_scan();
    bench_multi_target();
}
