//! Table IX — whole-network throughput and efficiency on the paper's
//! four-node, five-GPU tree, via the discrete-event simulation.

use eks_bench::{compare, header, TABLE9};
use eks_cluster::{paper_network, simulate_search, SimParams};
use eks_hashes::HashAlgo;
use eks_kernels::Tool;

fn main() {
    header("Table IX — throughput on the whole network");
    let net = paper_network(2e-3);
    let params = SimParams::default();
    let keys = 5e11;
    println!(
        "{:<8}{:>34}{:>34}{:>24}",
        "hash", "theoretical sum (MKey/s)", "achieved (MKey/s)", "efficiency"
    );
    for row in TABLE9 {
        let algo = match row.algo {
            "MD5" => HashAlgo::Md5,
            _ => HashAlgo::Sha1,
        };
        let r = simulate_search(&net, Tool::OurApproach, algo, keys, params);
        print!("{:<8}", row.algo);
        print!("{:>34}", compare(row.theoretical, r.sum_theoretical_mkeys));
        print!("{:>34}", compare(row.achieved, r.achieved_mkeys));
        println!("{:>12.3} | {:>6.3}", row.efficiency, r.table9_efficiency());
    }
    println!("\nDES parameters: {params:?}");
    println!("shape check: efficiency in the 0.80–0.95 band for both hashes,");
    println!("network throughput ≈ sum of single-device throughputs.");
}
