//! Table I — multiprocessor architecture per compute capability.
//!
//! Pure architecture data; our model must match the paper cell-for-cell.

use eks_bench::header;
use eks_gpusim::arch::ComputeCapability;

fn main() {
    header("Table I — multiprocessor architecture");
    let ccs = [
        ComputeCapability::Sm1x,
        ComputeCapability::Sm20,
        ComputeCapability::Sm21,
        ComputeCapability::Sm30,
    ];
    println!("{:<28}{:>8}{:>8}{:>8}{:>8}", "compute capability", "1.*", "2.0", "2.1", "3.0");
    let row = |name: &str, f: &dyn Fn(ComputeCapability) -> String| {
        print!("{name:<28}");
        for cc in ccs {
            print!("{:>8}", f(cc));
        }
        println!();
    };
    row("cores per MP", &|cc| cc.mp_spec().cores_per_mp.to_string());
    row("groups of cores per MP", &|cc| cc.mp_spec().core_groups.to_string());
    row("group size", &|cc| cc.mp_spec().group_size.to_string());
    row("issue time (clock cycles)", &|cc| cc.mp_spec().issue_cycles.to_string());
    row("warp schedulers", &|cc| cc.mp_spec().warp_schedulers.to_string());
    row("issue mode", &|cc| {
        if cc.mp_spec().dual_issue { "dual" } else { "single" }.to_string()
    });
    println!("\npaper values reproduced exactly (asserted in eks-gpusim unit tests)");
}
