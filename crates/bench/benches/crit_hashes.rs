//! Micro-benchmarks for the hash substrate: single-block kernels,
//! streaming hashers, the reversed-MD5 candidate test, and the §V claim
//! that the `next` operator costs under 1 % of a hash.

use eks_bench::harness::Group;
use eks_hashes::md5::{md5, md5_single_block};
use eks_hashes::md5_reverse::Md5PrefixSearch;
use eks_hashes::sha1::sha1_single_block;
use eks_hashes::sha256::sha256d;
use eks_keyspace::{encode, Charset, Order};
use std::hint::black_box;

fn bench_single_block() {
    let mut g = Group::new("single_block");
    g.throughput_elements(1);
    let key = b"Zb3qpepper";
    g.bench("md5", || md5_single_block(black_box(key)));
    g.bench("sha1", || sha1_single_block(black_box(key)));
    g.bench("sha256d", || sha256d(black_box(key)));
}

fn bench_reversed_vs_full() {
    let mut g = Group::new("md5_candidate_test");
    g.throughput_elements(1);
    let target = md5(b"Zb3q");
    let search = Md5PrefixSearch::from_sample_key(&target, b"AAAA");
    let mut w0 = 0u32;
    g.bench("full_64_steps", || {
        w0 = w0.wrapping_add(1);
        let mut key = *b"AAAA";
        key.copy_from_slice(&w0.to_le_bytes());
        md5_single_block(black_box(&key))
    });
    let mut w0 = 0u32;
    g.bench("reversed_49_steps", || {
        w0 = w0.wrapping_add(1);
        search.matches_w0(black_box(w0))
    });
}

fn bench_next_vs_hash() {
    // §V: "the overhead caused at each iteration by the next operator is
    // less than the 1% of the time spent by the hash function".
    let mut g = Group::new("next_vs_hash");
    let cs = Charset::alphanumeric();
    g.bench_with_setup(
        "next_operator",
        || encode(123_456_789, &cs, Order::FirstCharFastest),
        |mut k| {
            eks_keyspace::encode::advance(&mut k, &cs, Order::FirstCharFastest);
            k
        },
    );
    let k = encode(123_456_789, &cs, Order::FirstCharFastest);
    g.bench("md5_hash", || md5_single_block(black_box(k.as_bytes())));
}

fn main() {
    bench_single_block();
    bench_reversed_vs_full();
    bench_next_vs_hash();
}
