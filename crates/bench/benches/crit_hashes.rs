//! Criterion micro-benchmarks for the hash substrate: single-block
//! kernels, streaming hashers, the reversed-MD5 candidate test, and the
//! §V claim that the `next` operator costs under 1 % of a hash.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use eks_hashes::md5::{md5, md5_single_block};
use eks_hashes::md5_reverse::Md5PrefixSearch;
use eks_hashes::sha1::sha1_single_block;
use eks_hashes::sha256::sha256d;
use eks_keyspace::{encode, Charset, Order};
use std::hint::black_box;

fn bench_single_block(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_block");
    g.throughput(Throughput::Elements(1));
    let key = b"Zb3qpepper";
    g.bench_function("md5", |b| b.iter(|| md5_single_block(black_box(key))));
    g.bench_function("sha1", |b| b.iter(|| sha1_single_block(black_box(key))));
    g.bench_function("sha256d", |b| b.iter(|| sha256d(black_box(key))));
    g.finish();
}

fn bench_reversed_vs_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5_candidate_test");
    g.throughput(Throughput::Elements(1));
    let target = md5(b"Zb3q");
    let search = Md5PrefixSearch::from_sample_key(&target, b"AAAA");
    let mut w0 = 0u32;
    g.bench_function("full_64_steps", |b| {
        b.iter(|| {
            w0 = w0.wrapping_add(1);
            let mut key = *b"AAAA";
            key.copy_from_slice(&w0.to_le_bytes());
            md5_single_block(black_box(&key))
        })
    });
    g.bench_function("reversed_49_steps", |b| {
        b.iter(|| {
            w0 = w0.wrapping_add(1);
            search.matches_w0(black_box(w0))
        })
    });
    g.finish();
}

fn bench_next_vs_hash(c: &mut Criterion) {
    // §V: "the overhead caused at each iteration by the next operator is
    // less than the 1% of the time spent by the hash function".
    let mut g = c.benchmark_group("next_vs_hash");
    let cs = Charset::alphanumeric();
    g.bench_function("next_operator", |b| {
        b.iter_batched(
            || encode(123_456_789, &cs, Order::FirstCharFastest),
            |mut k| {
                eks_keyspace::encode::advance(&mut k, &cs, Order::FirstCharFastest);
                k
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("md5_hash", |b| {
        let k = encode(123_456_789, &cs, Order::FirstCharFastest);
        b.iter(|| md5_single_block(black_box(k.as_bytes())))
    });
    g.finish();
}

criterion_group!(benches, bench_single_block, bench_reversed_vs_full, bench_next_vs_hash);
criterion_main!(benches);
