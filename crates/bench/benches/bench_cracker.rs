//! The bench-trajectory artifact: scalar vs lane-batched cracking
//! throughput (MKey/s) per algorithm per thread count.
//!
//! Run directly for a human-readable table, or with `--json <path>` to
//! also write a machine-readable artifact (the committed
//! `BENCH_cracker.json`); `ci.sh` runs the JSON mode and this binary
//! exits non-zero if any batched configuration is slower than its scalar
//! baseline at one thread — the perf gate for the batched pipeline.
//!
//! The sweeps use an impossible target (no hit, no early exit), so every
//! number is a pure full-scan throughput, best of three short runs.

use std::fmt::Write as _;

use eks_cracker::batch::Lanes;
use eks_cracker::{crack_parallel, ParallelConfig, TargetSet};
use eks_hashes::HashAlgo;
use eks_keyspace::{Charset, Interval, KeySpace, Order};

/// Keys per timed sweep — small enough for CI, large enough to swamp
/// thread startup at the thread counts measured here.
const KEYS: u64 = 300_000;
/// Timed sweeps per configuration; the best is reported.
const BEST_OF: usize = 3;
const ALGOS: [HashAlgo; 3] = [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm];
const LANES: [Lanes; 3] = [Lanes::Scalar, Lanes::L8, Lanes::L16];
const THREADS: [usize; 2] = [1, 2];

fn algo_name(algo: HashAlgo) -> &'static str {
    match algo {
        HashAlgo::Md5 => "md5",
        HashAlgo::Sha1 => "sha1",
        HashAlgo::Ntlm => "ntlm",
    }
}

/// Best-of-N full-sweep throughput for one configuration.
fn measure(algo: HashAlgo, threads: usize, lanes: Lanes) -> f64 {
    let space =
        KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).expect("space");
    let impossible = TargetSet::new(algo, &[vec![0u8; algo.digest_len()]]);
    let config = ParallelConfig {
        threads,
        first_hit_only: false,
        lanes,
        ..ParallelConfig::for_threads(threads)
    };
    let mut best = 0.0f64;
    // One extra untimed sweep warms caches and thread pools.
    for i in 0..=BEST_OF {
        let report =
            crack_parallel(&space, &impossible, Interval::new(0, KEYS as u128), config);
        assert!(report.hits.is_empty(), "impossible target must not hit");
        if i > 0 {
            best = best.max(report.mkeys_per_s);
        }
    }
    best
}

struct Row {
    algo: &'static str,
    threads: usize,
    lanes: &'static str,
    mkeys: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                json_path =
                    Some(args.next().unwrap_or_else(|| "BENCH_cracker.json".to_string()));
            }
            // `cargo bench` passes `--bench`; ignore it and any filters.
            _ => {}
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    println!("{:<6} {:>7} {:>7} {:>10}", "algo", "threads", "lanes", "MKey/s");
    for algo in ALGOS {
        for threads in THREADS {
            for lanes in LANES {
                let mkeys = measure(algo, threads, lanes);
                println!(
                    "{:<6} {:>7} {:>7} {:>10.3}",
                    algo_name(algo),
                    threads,
                    lanes.name(),
                    mkeys
                );
                rows.push(Row { algo: algo_name(algo), threads, lanes: lanes.name(), mkeys });
            }
        }
    }

    // The gate: at one thread, the best batched width must beat scalar
    // for every algorithm.
    let one_thread = |algo: &str, lanes: &str| {
        rows.iter()
            .find(|r| r.algo == algo && r.threads == 1 && r.lanes == lanes)
            .map(|r| r.mkeys)
            .expect("measured above")
    };
    let mut gates = String::new();
    let mut failed = false;
    for algo in ALGOS.map(algo_name) {
        let scalar = one_thread(algo, "scalar");
        let batched = one_thread(algo, "8").max(one_thread(algo, "16"));
        let speedup = batched / scalar;
        println!("{algo}: best batched {batched:.3} vs scalar {scalar:.3} → {speedup:.2}x");
        let _ = write!(gates, "{}\"{algo}_1t_speedup\": {speedup:.3}", if gates.is_empty() { "" } else { ", " });
        if speedup < 1.0 {
            eprintln!("GATE FAILED: batched {algo} is slower than scalar at 1 thread");
            failed = true;
        }
    }

    if let Some(path) = json_path {
        let mut body = String::new();
        for r in &rows {
            let _ = write!(
                body,
                "{}    {{\"algo\": \"{}\", \"threads\": {}, \"lanes\": \"{}\", \"mkeys_per_s\": {:.3}}}",
                if body.is_empty() { "" } else { ",\n" },
                r.algo,
                r.threads,
                r.lanes,
                r.mkeys
            );
        }
        let json = format!(
            "{{\n  \"bench\": \"cracker_batched_vs_scalar\",\n  \"keys_per_sweep\": {KEYS},\n  \"best_of\": {BEST_OF},\n  \"results\": [\n{body}\n  ],\n  \"gates\": {{{gates}}}\n}}\n"
        );
        std::fs::write(&path, json).expect("write json artifact");
        println!("wrote {path}");
    }

    if failed {
        std::process::exit(1);
    }
}
