//! The bench-trajectory artifact: cracking throughput (MKey/s) per
//! algorithm per thread count per [`Backend`] — scalar, the 8/16-lane
//! autovectorized widths, the explicit-SIMD kernels (when the host's
//! CPU reports an ISA), the auto-tuned winner, and the simulated-GPU
//! kernel backend — all driven through the one `Dispatcher` core via
//! `crack_parallel_backend`. The JSON artifact (schema 4) records the
//! detected CPU features and selected ISA so committed numbers carry
//! their hardware context, plus the adaptive-vs-static skewed-fleet
//! scenario (`--min-adaptive-ratio` gates its efficiency ratio): a
//! deliberately misweighted two-backend fleet under the iterated-MD5
//! KDF where the closed-loop retune (live rate estimates, drift-check
//! re-scatters, steals) must recover the idle time the stale static
//! split leaves on the table.
//!
//! Run directly for a human-readable table, or with `--json <path>` to
//! also write a machine-readable artifact (the committed
//! `BENCH_cracker.json`); `ci.sh` runs the JSON mode and this binary
//! exits non-zero if any batched backend is slower than scalar at one
//! thread, or if the MD5 speedup falls below `--min-md5-speedup` — the
//! perf gate for the batched pipeline and the engine refactor. A third
//! gate, `--max-telemetry-overhead-pct`, bounds how much an enabled
//! telemetry registry may slow the batched MD5 hot path versus the
//! null handle (the observability layer samples at chunk granularity,
//! so the cost must stay in the noise).
//!
//! The sweeps use an impossible target (no hit, no early exit), so every
//! number is a pure full-scan throughput, best of three short runs.
//!
//! ## Thread scaling on a core-starved host
//!
//! The wall-clock rows measure real threads, which on a single-core CI
//! host cannot scale no matter how good the scheduler is. The `scaling`
//! rows therefore drive the steal scheduler through a deterministic
//! *virtual-core* loop (same methodology as the simulated GPU devices):
//! each worker keeps a virtual clock, the driver always advances the
//! worker whose clock is smallest, every popped chunk is scanned for
//! real and its measured nanoseconds added to that worker's clock, and
//! a steal charges a fixed cost. The makespan is the largest clock —
//! the schedule's critical path as if every worker had a dedicated
//! core — so `scaling = vt(2 workers) / vt(1 worker)` measures the
//! scheduler (scatter balance, steal latency, tail effects), not the
//! host's core count. `parallel_efficiency = scaling / workers` is the
//! paper's §VI efficiency figure for the simulated 2-worker cluster.

use std::fmt::Write as _;
use std::sync::atomic::AtomicBool;
use std::time::Instant;

use eks_cluster::SimKernelBackend;
use eks_cracker::batch::Lanes;
use eks_cracker::{
    cpu_backend, crack_parallel_backend, crack_parallel_backend_observed, AutoBackend,
    ParallelConfig, SimdBackend, TargetSet,
};
use eks_telemetry::Telemetry;
use eks_engine::{
    eta_drift_pct, Backend, BackendKind, ChunkPolicy, IntervalDeques, RateBook, ScanMode,
};
use eks_gpusim::device::Device;
use eks_hashes::{cpu_features, HashAlgo, SimdIsa};
use eks_keyspace::{Charset, Interval, KeySpace, Order};

/// Keys per timed sweep — small enough for CI, large enough to swamp
/// thread startup at the thread counts measured here.
const KEYS: u64 = 300_000;
/// Timed sweeps per configuration; the best is reported.
const BEST_OF: usize = 3;
const ALGOS: [HashAlgo; 3] = [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm];
const THREADS: [usize; 2] = [1, 2];

fn algo_name(algo: HashAlgo) -> &'static str {
    match algo {
        HashAlgo::Md5 => "md5",
        HashAlgo::Sha1 => "sha1",
        HashAlgo::Ntlm => "ntlm",
        // The KDF rows carry their iteration count; the sweep tables
        // here only cover the base algorithms.
        HashAlgo::Md5Iter { .. } => "md5-iterated",
    }
}

/// One concrete engine per [`BackendKind`]; the simulated GPU models the
/// paper's GTX 660 compute node.
fn backend_for(kind: BackendKind) -> Box<dyn Backend> {
    match kind {
        BackendKind::Scalar => cpu_backend(Lanes::Scalar),
        BackendKind::Lanes8 => cpu_backend(Lanes::L8),
        BackendKind::Lanes16 => cpu_backend(Lanes::L16),
        BackendKind::Simd => {
            Box::new(SimdBackend::best().expect("simd rows run only on detected-ISA hosts"))
        }
        BackendKind::Auto => Box::new(AutoBackend::new(Telemetry::disabled())),
        BackendKind::SimGpu => Box::new(SimKernelBackend::new(Device::geforce_gtx_660())),
    }
}

/// The kinds this host can run: everything except `simd` on CPUs with no
/// explicit-SIMD ISA (the skip is reported, not silent).
fn host_kinds() -> Vec<BackendKind> {
    BackendKind::ALL.into_iter().filter(|k| k.is_available()).collect()
}

/// Best-of-N full-sweep throughput for one configuration.
fn measure(algo: HashAlgo, threads: usize, kind: BackendKind) -> f64 {
    let space =
        KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).expect("space");
    let impossible = TargetSet::new(algo, &[vec![0u8; algo.digest_len()]]);
    let backend = backend_for(kind);
    let config =
        ParallelConfig { threads, first_hit_only: false, ..ParallelConfig::for_threads(threads) };
    let mut best = 0.0f64;
    // One extra untimed sweep warms caches and thread pools.
    for i in 0..=BEST_OF {
        let report = crack_parallel_backend(
            &space,
            &impossible,
            Interval::new(0, KEYS as u128),
            backend.as_ref(),
            config,
        );
        assert!(report.hits.is_empty(), "impossible target must not hit");
        if i > 0 {
            best = best.max(report.mkeys_per_s);
        }
    }
    best
}

struct Row {
    algo: &'static str,
    threads: usize,
    backend: &'static str,
    mkeys: f64,
}

/// Virtual cost of one steal (lock the largest victim, halve it,
/// install the half) — a generous bound for an uncontended mutex pair.
const STEAL_NS: u64 = 2_000;
/// Timed sweeps per scaling configuration.
const SCALING_BEST_OF: usize = 2;
/// Workers simulated for the scaling rows.
const SCALING_WORKERS: usize = 2;

/// Virtual-core throughput of the steal scheduler at `workers` workers
/// (see the module doc): real-timed guided chunks advance per-worker
/// virtual clocks, and the makespan is the largest clock.
fn virtual_throughput(algo: HashAlgo, kind: BackendKind, workers: usize) -> f64 {
    let space =
        KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).expect("space");
    let impossible = TargetSet::new(algo, &[vec![0u8; algo.digest_len()]]);
    let backend = backend_for(kind);
    let stop = AtomicBool::new(false);
    let policy = ChunkPolicy::Guided { min: 1 << 12 };
    let mut best = 0.0f64;
    // Sweep 0 is an untimed warm-up: it touches the same keys through
    // the same backend so caches, page tables and any lazily-initialized
    // kernel state are hot before the first timed makespan. (The
    // wall-clock rows warm a *different* backend instance, so without
    // this the first timed sweep could carry a cold-start penalty.)
    for i in 0..=SCALING_BEST_OF {
        let deques =
            IntervalDeques::scatter(Interval::new(0, KEYS as u128), &vec![1.0; workers]);
        let mut clock = vec![0u64; workers];
        let mut done = vec![false; workers];
        // Always advance the worker whose virtual clock is furthest
        // behind — the order a real multi-core run would interleave in.
        while let Some(w) =
            (0..workers).filter(|&w| !done[w]).min_by_key(|&w| clock[w])
        {
            match deques.pop(w, policy) {
                Some(chunk) => {
                    let t0 = Instant::now();
                    let out =
                        backend.scan(&space, &impossible, chunk, &stop, ScanMode::Exhaustive);
                    clock[w] += t0.elapsed().as_nanos() as u64;
                    assert!(out.hits.is_empty(), "impossible target must not hit");
                }
                None => {
                    clock[w] += STEAL_NS;
                    if deques.steal_into(w).is_none() {
                        done[w] = true;
                    }
                }
            }
        }
        let makespan_ns = clock.iter().copied().max().unwrap_or(0).max(1);
        if i > 0 {
            best = best.max(KEYS as f64 / (makespan_ns as f64 / 1e9) / 1e6);
        }
    }
    best
}

/// Keys for the adaptive-vs-static scenario: smaller than [`KEYS`]
/// because the iterated-MD5 KDF multiplies per-key cost, and the
/// scenario runs the sweep four times (warm-up + timed, two arms).
const ADAPTIVE_KEYS: u64 = 60_000;
/// KDF work factor: 2 + (key-byte-sum % 8) MD5 rounds per candidate, so
/// per-key cost varies with the key itself — the workload the paper's
/// frozen one-shot tuning cannot see.
const ADAPTIVE_ITERS: u16 = 8;
/// Fleet-wide chunk count between drift checks and the drift threshold
/// that triggers a re-scatter — the bench mirror of `Retune::default()`.
const ADAPTIVE_EVERY_CHUNKS: u64 = 8;
const ADAPTIVE_DRIFT_PCT: f64 = 25.0;
/// Guided floor for the scenario: fine enough that the slow worker's
/// share is many chunks (the estimator needs samples and the re-scatter
/// needs queued work left to move).
const ADAPTIVE_CHUNK_MIN: u128 = 1 << 9;

/// How many times the handicapped worker re-scans each chunk: the
/// bench's stand-in for a fleet member severalfold weaker than the
/// stale tuned book claims.
const ADAPTIVE_SLOW_FACTOR: u32 = 4;

/// A deliberately slowed backend: scans each chunk
/// [`ADAPTIVE_SLOW_FACTOR`] times and reports it once, so its true
/// rate is a known fraction of the inner backend's while the stale
/// book still lists them as equals.
struct SlowedBackend {
    inner: Box<dyn Backend>,
    factor: u32,
}

impl Backend for SlowedBackend {
    fn name(&self) -> String {
        format!("{}-slow{}", self.inner.name(), self.factor)
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> eks_engine::ScanReport {
        let out = self.inner.scan(space, targets, interval, stop, mode);
        for _ in 1..self.factor {
            let extra = self.inner.scan(space, targets, interval, stop, mode);
            assert!(extra.hits.is_empty(), "impossible target must not hit");
        }
        out
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        self.inner.tuned_rate(algo) / f64::from(self.factor.max(1))
    }
}

/// One arm of the skewed-fleet scenario.
struct FleetArm {
    /// Parallel efficiency: `Σ busy / (workers × makespan)`.
    efficiency: f64,
    /// Virtual makespan, milliseconds.
    makespan_ms: f64,
    /// Closed-loop re-scatters performed (always 0 in the static arm).
    rescatters: u64,
}

/// The closed-loop payoff scenario: a two-worker fleet where worker 0
/// runs the batched backend at full speed and worker 1 the same
/// backend handicapped [`ADAPTIVE_SLOW_FACTOR`]-fold, under the
/// iterated-MD5 KDF, but the scatter trusts a *stale* tuned book that
/// claims the workers are equal.
///
/// The static arm drains exactly its planned share — the fast worker
/// idles while the slow one grinds through the misassigned half. The
/// adaptive arm feeds every chunk timing into a live [`RateBook`],
/// checks the estimated-time-to-drain drift every
/// [`ADAPTIVE_EVERY_CHUNKS`] pops, re-scatters the queued remainders by
/// the live rates once the estimates warm up, and steals at drain —
/// the same feedback loop `--retune` enables in the real scheduler,
/// driven deterministically through the virtual-core clock so the
/// measured ratio is scheduler quality, not host core count.
fn skewed_fleet_arm(adaptive: bool) -> FleetArm {
    let algo = HashAlgo::Md5Iter { iters: ADAPTIVE_ITERS };
    let space =
        KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).expect("space");
    let impossible = TargetSet::new(algo, &[vec![0u8; algo.digest_len()]]);
    let backends: Vec<Box<dyn Backend>> = vec![
        cpu_backend(Lanes::L8),
        Box::new(SlowedBackend { inner: cpu_backend(Lanes::L8), factor: ADAPTIVE_SLOW_FACTOR }),
    ];
    let workers = backends.len();
    let stop = AtomicBool::new(false);
    let policy = ChunkPolicy::Guided { min: ADAPTIVE_CHUNK_MIN };
    let mut result = FleetArm { efficiency: 0.0, makespan_ms: 0.0, rescatters: 0 };
    // Sweep 0 warms both backends untimed, as in `virtual_throughput`.
    for sweep in 0..2 {
        // The stale book: equal weights although the fleet is skewed.
        let stale = vec![1.0; workers];
        let deques =
            IntervalDeques::scatter(Interval::new(0, ADAPTIVE_KEYS as u128), &stale);
        let rates = RateBook::new(stale);
        let mut clock = vec![0u64; workers];
        let mut busy = vec![0u64; workers];
        let mut done = vec![false; workers];
        let mut chunks = 0u64;
        let mut rescatters = 0u64;
        while let Some(w) = (0..workers).filter(|&w| !done[w]).min_by_key(|&w| clock[w]) {
            match deques.pop(w, policy) {
                Some(chunk) => {
                    let t0 = Instant::now();
                    let out = backends[w]
                        .scan(&space, &impossible, chunk, &stop, ScanMode::Exhaustive);
                    let ns = t0.elapsed().as_nanos() as u64;
                    clock[w] += ns;
                    busy[w] += ns;
                    assert!(out.hits.is_empty(), "impossible target must not hit");
                    rates.observe(w, out.tested, ns);
                    chunks += 1;
                    if adaptive && chunks % ADAPTIVE_EVERY_CHUNKS == 0 {
                        let remaining: Vec<u128> =
                            (0..workers).map(|s| deques.remaining(s)).collect();
                        let live = rates.weights();
                        if eta_drift_pct(&remaining, &live, false) > ADAPTIVE_DRIFT_PCT
                            && deques.rescatter(&live)
                        {
                            rescatters += 1;
                        }
                    }
                }
                None => {
                    if adaptive {
                        clock[w] += STEAL_NS;
                        if deques.steal_into(w).is_none() {
                            done[w] = true;
                        }
                    } else {
                        done[w] = true;
                    }
                }
            }
        }
        let makespan_ns = clock.iter().copied().max().unwrap_or(0).max(1);
        let total_busy: u64 = busy.iter().sum();
        let efficiency =
            total_busy as f64 / (workers as f64 * makespan_ns as f64);
        if sweep > 0 {
            result = FleetArm {
                efficiency,
                makespan_ms: makespan_ns as f64 / 1e6,
                rescatters,
            };
        }
    }
    result
}

/// Timed sweeps per telemetry-overhead arm; more than the wall-clock
/// rows because the gate compares two nearly-equal numbers.
const OVERHEAD_BEST_OF: usize = 5;

/// Best-of-N batched MD5 single-thread throughput with telemetry either
/// off (the null handle) or on (a live registry plus trace sink) — the
/// same impossible-target sweep as [`measure`], driven through the
/// observed entry point so the chunk-granularity instrumentation is on
/// the measured path.
fn telemetry_throughput(enabled: bool) -> f64 {
    let space =
        KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).expect("space");
    let algo = HashAlgo::Md5;
    let impossible = TargetSet::new(algo, &[vec![0u8; algo.digest_len()]]);
    let backend = backend_for(BackendKind::Lanes8);
    let config = ParallelConfig { first_hit_only: false, ..ParallelConfig::for_threads(1) };
    let mut best = 0.0f64;
    // One extra untimed sweep warms caches, as in `measure`.
    for i in 0..=OVERHEAD_BEST_OF {
        // A fresh handle per sweep so the trace ring and counters never
        // accumulate across iterations.
        let telemetry = if enabled { Telemetry::enabled() } else { Telemetry::disabled() };
        let report = crack_parallel_backend_observed(
            &space,
            &impossible,
            Interval::new(0, KEYS as u128),
            backend.as_ref(),
            config,
            &telemetry,
            |_| {},
        );
        assert!(report.hits.is_empty(), "impossible target must not hit");
        if i > 0 {
            best = best.max(report.mkeys_per_s);
        }
    }
    best
}

struct ScalingRow {
    algo: &'static str,
    backend: &'static str,
    workers: usize,
    scaling: f64,
    parallel_efficiency: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<String> = None;
    let mut min_md5_speedup = 1.0f64;
    let mut min_scaling = 0.0f64;
    let mut min_adaptive_ratio = 0.0f64;
    let mut max_telemetry_overhead_pct = f64::INFINITY;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                json_path =
                    Some(args.next().unwrap_or_else(|| "BENCH_cracker.json".to_string()));
            }
            "--min-md5-speedup" => {
                min_md5_speedup = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-md5-speedup takes a number");
            }
            "--min-scaling" => {
                min_scaling = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-scaling takes a number");
            }
            "--min-adaptive-ratio" => {
                min_adaptive_ratio = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-adaptive-ratio takes a number");
            }
            "--max-telemetry-overhead-pct" => {
                max_telemetry_overhead_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-telemetry-overhead-pct takes a number");
            }
            // `cargo bench` passes `--bench`; ignore it and any filters.
            _ => {}
        }
    }

    let features = cpu_features();
    println!(
        "cpu features: {}   selected isa: {}",
        features
            .iter()
            .map(|(name, on)| format!("{name}={}", if *on { "yes" } else { "no" }))
            .collect::<Vec<_>>()
            .join("  "),
        SimdIsa::detect().map_or("none", |isa| isa.name())
    );
    if !BackendKind::Simd.is_available() {
        println!("note: no explicit-SIMD ISA detected; simd rows are skipped");
    }

    let mut rows: Vec<Row> = Vec::new();
    println!("{:<6} {:>7} {:>8} {:>10}", "algo", "threads", "backend", "MKey/s");
    for algo in ALGOS {
        for threads in THREADS {
            for kind in host_kinds() {
                let mkeys = measure(algo, threads, kind);
                println!(
                    "{:<6} {:>7} {:>8} {:>10.3}",
                    algo_name(algo),
                    threads,
                    kind.name(),
                    mkeys
                );
                rows.push(Row { algo: algo_name(algo), threads, backend: kind.name(), mkeys });
            }
        }
    }

    // Virtual-core thread scaling of the steal scheduler, per
    // (algo, backend) pair — see the module doc for the methodology.
    let mut scaling_rows: Vec<ScalingRow> = Vec::new();
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>11}",
        "algo", "backend", "workers", "scaling", "efficiency"
    );
    for algo in ALGOS {
        for kind in host_kinds() {
            let vt1 = virtual_throughput(algo, kind, 1);
            let vtn = virtual_throughput(algo, kind, SCALING_WORKERS);
            let scaling = vtn / vt1;
            let parallel_efficiency = scaling / SCALING_WORKERS as f64;
            println!(
                "{:<6} {:>8} {:>8} {:>7.2}x {:>10.0}%",
                algo_name(algo),
                kind.name(),
                SCALING_WORKERS,
                scaling,
                parallel_efficiency * 100.0
            );
            scaling_rows.push(ScalingRow {
                algo: algo_name(algo),
                backend: kind.name(),
                workers: SCALING_WORKERS,
                scaling,
                parallel_efficiency,
            });
        }
    }

    // The gate: at one thread, the best batched backend must beat scalar
    // for every algorithm, and MD5 by at least `--min-md5-speedup`.
    let one_thread = |algo: &str, backend: &str| {
        rows.iter()
            .find(|r| r.algo == algo && r.threads == 1 && r.backend == backend)
            .map(|r| r.mkeys)
            .expect("measured above")
    };
    let mut gates = String::new();
    let mut failed = false;
    for algo in ALGOS.map(algo_name) {
        let scalar = one_thread(algo, "scalar");
        let batched = host_kinds()
            .iter()
            .filter(|k| !matches!(k, BackendKind::Scalar))
            .map(|k| one_thread(algo, k.name()))
            .fold(0.0f64, f64::max);
        let speedup = batched / scalar;
        println!("{algo}: best batched {batched:.3} vs scalar {scalar:.3} → {speedup:.2}x");
        let _ = write!(gates, "{}\"{algo}_1t_speedup\": {speedup:.3}", if gates.is_empty() { "" } else { ", " });
        let floor = if algo == "md5" { min_md5_speedup } else { 1.0 };
        if speedup < floor {
            eprintln!("GATE FAILED: {algo} speedup {speedup:.2}x is below the {floor:.2}x floor");
            failed = true;
        }
    }

    // The scaling gate: the steal scheduler's virtual 2-worker scaling
    // on md5/lanes8 must clear `--min-scaling`.
    let md5_lanes8_scaling = scaling_rows
        .iter()
        .find(|r| r.algo == "md5" && r.backend == "lanes8")
        .map(|r| r.scaling)
        .expect("measured above");
    let _ = write!(gates, ", \"md5_lanes8_2w_scaling\": {md5_lanes8_scaling:.3}");
    println!(
        "md5/lanes8: virtual {SCALING_WORKERS}-worker scaling {md5_lanes8_scaling:.2}x (floor {min_scaling:.2}x)"
    );
    if md5_lanes8_scaling < min_scaling {
        eprintln!(
            "GATE FAILED: md5/lanes8 scaling {md5_lanes8_scaling:.2}x is below the {min_scaling:.2}x floor"
        );
        failed = true;
    }

    // The closed-loop gate: on the skewed fleet under stale equal tuned
    // weights, adaptive retuning must recover at least
    // `--min-adaptive-ratio` times the static arm's parallel efficiency.
    let static_arm = skewed_fleet_arm(false);
    let adaptive_arm = skewed_fleet_arm(true);
    let adaptive_ratio = if static_arm.efficiency > 0.0 {
        adaptive_arm.efficiency / static_arm.efficiency
    } else {
        0.0
    };
    println!(
        "skewed fleet (md5x{ADAPTIVE_ITERS}, lanes8 + {ADAPTIVE_SLOW_FACTOR}x-slowed lanes8, stale equal weights): \
         static eff {:.1}% ({:.1} ms), adaptive eff {:.1}% ({:.1} ms, {} re-scatter(s)) \
         → {adaptive_ratio:.2}x (floor {min_adaptive_ratio:.2}x)",
        static_arm.efficiency * 100.0,
        static_arm.makespan_ms,
        adaptive_arm.efficiency * 100.0,
        adaptive_arm.makespan_ms,
        adaptive_arm.rescatters,
    );
    let _ = write!(gates, ", \"adaptive_efficiency_ratio\": {adaptive_ratio:.3}");
    if adaptive_ratio < min_adaptive_ratio {
        eprintln!(
            "GATE FAILED: adaptive/static efficiency ratio {adaptive_ratio:.2}x is below the {min_adaptive_ratio:.2}x floor"
        );
        failed = true;
    }

    // The telemetry gate: chunk-granularity instrumentation on the
    // batched MD5 hot path must cost at most
    // `--max-telemetry-overhead-pct` of throughput vs the null handle.
    let t_off = telemetry_throughput(false);
    let t_on = telemetry_throughput(true);
    let telemetry_overhead_pct = (t_off / t_on - 1.0) * 100.0;
    let _ = write!(gates, ", \"md5_lanes8_telemetry_overhead_pct\": {telemetry_overhead_pct:.3}");
    println!(
        "md5/lanes8: telemetry on {t_on:.3} vs off {t_off:.3} MKey/s → {telemetry_overhead_pct:.1}% overhead (cap {max_telemetry_overhead_pct:.1}%)"
    );
    if telemetry_overhead_pct > max_telemetry_overhead_pct {
        eprintln!(
            "GATE FAILED: telemetry overhead {telemetry_overhead_pct:.1}% exceeds the {max_telemetry_overhead_pct:.1}% cap"
        );
        failed = true;
    }

    if let Some(path) = json_path {
        let mut body = String::new();
        for r in &rows {
            let _ = write!(
                body,
                "{}    {{\"algo\": \"{}\", \"threads\": {}, \"backend\": \"{}\", \"mkeys_per_s\": {:.3}}}",
                if body.is_empty() { "" } else { ",\n" },
                r.algo,
                r.threads,
                r.backend,
                r.mkeys
            );
        }
        let mut scaling_body = String::new();
        for r in &scaling_rows {
            let _ = write!(
                scaling_body,
                "{}    {{\"algo\": \"{}\", \"backend\": \"{}\", \"workers\": {}, \"scaling\": {:.3}, \"parallel_efficiency\": {:.3}}}",
                if scaling_body.is_empty() { "" } else { ",\n" },
                r.algo,
                r.backend,
                r.workers,
                r.scaling,
                r.parallel_efficiency
            );
        }
        let features_body = features
            .iter()
            .map(|(name, on)| format!("\"{name}\": {on}"))
            .collect::<Vec<_>>()
            .join(", ");
        let isa_body =
            SimdIsa::detect().map_or("null".to_string(), |isa| format!("\"{isa}\""));
        let adaptive_body = format!(
            "{{\"algo\": \"md5x{ADAPTIVE_ITERS}\", \"workers\": 2, \"backends\": [\"lanes8\", \"lanes8-slow{ADAPTIVE_SLOW_FACTOR}\"], \
             \"static_efficiency\": {:.3}, \"adaptive_efficiency\": {:.3}, \
             \"efficiency_ratio\": {adaptive_ratio:.3}, \"rescatters\": {}}}",
            static_arm.efficiency, adaptive_arm.efficiency, adaptive_arm.rescatters
        );
        let json = format!(
            "{{\n  \"bench\": \"cracker_backends_vs_scalar\",\n  \"schema\": 4,\n  \"keys_per_sweep\": {KEYS},\n  \"best_of\": {BEST_OF},\n  \"min_md5_speedup\": {min_md5_speedup},\n  \"min_scaling\": {min_scaling},\n  \"min_adaptive_ratio\": {min_adaptive_ratio},\n  \"cpu_features\": {{{features_body}}},\n  \"simd_isa\": {isa_body},\n  \"results\": [\n{body}\n  ],\n  \"scaling\": [\n{scaling_body}\n  ],\n  \"adaptive\": {adaptive_body},\n  \"gates\": {{{gates}}}\n}}\n"
        );
        std::fs::write(&path, json).expect("write json artifact");
        println!("wrote {path}");
    }

    if failed {
        std::process::exit(1);
    }
}
