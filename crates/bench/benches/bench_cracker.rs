//! The bench-trajectory artifact: cracking throughput (MKey/s) per
//! algorithm per thread count per [`Backend`] — scalar, the 8/16-lane
//! SIMD widths, and the simulated-GPU kernel backend — all driven
//! through the one `Dispatcher` core via `crack_parallel_backend`.
//!
//! Run directly for a human-readable table, or with `--json <path>` to
//! also write a machine-readable artifact (the committed
//! `BENCH_cracker.json`); `ci.sh` runs the JSON mode and this binary
//! exits non-zero if any batched backend is slower than scalar at one
//! thread, or if the MD5 speedup falls below `--min-md5-speedup` — the
//! perf gate for the batched pipeline and the engine refactor.
//!
//! The sweeps use an impossible target (no hit, no early exit), so every
//! number is a pure full-scan throughput, best of three short runs.

use std::fmt::Write as _;

use eks_cluster::SimKernelBackend;
use eks_cracker::batch::Lanes;
use eks_cracker::{cpu_backend, crack_parallel_backend, ParallelConfig, TargetSet};
use eks_engine::{Backend, BackendKind};
use eks_gpusim::device::Device;
use eks_hashes::HashAlgo;
use eks_keyspace::{Charset, Interval, KeySpace, Order};

/// Keys per timed sweep — small enough for CI, large enough to swamp
/// thread startup at the thread counts measured here.
const KEYS: u64 = 300_000;
/// Timed sweeps per configuration; the best is reported.
const BEST_OF: usize = 3;
const ALGOS: [HashAlgo; 3] = [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm];
const THREADS: [usize; 2] = [1, 2];

fn algo_name(algo: HashAlgo) -> &'static str {
    match algo {
        HashAlgo::Md5 => "md5",
        HashAlgo::Sha1 => "sha1",
        HashAlgo::Ntlm => "ntlm",
    }
}

/// One concrete engine per [`BackendKind`]; the simulated GPU models the
/// paper's GTX 660 compute node.
fn backend_for(kind: BackendKind) -> Box<dyn Backend> {
    match kind {
        BackendKind::Scalar => cpu_backend(Lanes::Scalar),
        BackendKind::Lanes8 => cpu_backend(Lanes::L8),
        BackendKind::Lanes16 => cpu_backend(Lanes::L16),
        BackendKind::SimGpu => Box::new(SimKernelBackend::new(Device::geforce_gtx_660())),
    }
}

/// Best-of-N full-sweep throughput for one configuration.
fn measure(algo: HashAlgo, threads: usize, kind: BackendKind) -> f64 {
    let space =
        KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).expect("space");
    let impossible = TargetSet::new(algo, &[vec![0u8; algo.digest_len()]]);
    let backend = backend_for(kind);
    let config =
        ParallelConfig { threads, first_hit_only: false, ..ParallelConfig::for_threads(threads) };
    let mut best = 0.0f64;
    // One extra untimed sweep warms caches and thread pools.
    for i in 0..=BEST_OF {
        let report = crack_parallel_backend(
            &space,
            &impossible,
            Interval::new(0, KEYS as u128),
            backend.as_ref(),
            config,
        );
        assert!(report.hits.is_empty(), "impossible target must not hit");
        if i > 0 {
            best = best.max(report.mkeys_per_s);
        }
    }
    best
}

struct Row {
    algo: &'static str,
    threads: usize,
    backend: &'static str,
    mkeys: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<String> = None;
    let mut min_md5_speedup = 1.0f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                json_path =
                    Some(args.next().unwrap_or_else(|| "BENCH_cracker.json".to_string()));
            }
            "--min-md5-speedup" => {
                min_md5_speedup = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-md5-speedup takes a number");
            }
            // `cargo bench` passes `--bench`; ignore it and any filters.
            _ => {}
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    println!("{:<6} {:>7} {:>8} {:>10}", "algo", "threads", "backend", "MKey/s");
    for algo in ALGOS {
        for threads in THREADS {
            for kind in BackendKind::ALL {
                let mkeys = measure(algo, threads, kind);
                println!(
                    "{:<6} {:>7} {:>8} {:>10.3}",
                    algo_name(algo),
                    threads,
                    kind.name(),
                    mkeys
                );
                rows.push(Row { algo: algo_name(algo), threads, backend: kind.name(), mkeys });
            }
        }
    }

    // The gate: at one thread, the best batched backend must beat scalar
    // for every algorithm, and MD5 by at least `--min-md5-speedup`.
    let one_thread = |algo: &str, backend: &str| {
        rows.iter()
            .find(|r| r.algo == algo && r.threads == 1 && r.backend == backend)
            .map(|r| r.mkeys)
            .expect("measured above")
    };
    let mut gates = String::new();
    let mut failed = false;
    for algo in ALGOS.map(algo_name) {
        let scalar = one_thread(algo, "scalar");
        let batched = BackendKind::ALL
            .iter()
            .filter(|k| !matches!(k, BackendKind::Scalar))
            .map(|k| one_thread(algo, k.name()))
            .fold(0.0f64, f64::max);
        let speedup = batched / scalar;
        println!("{algo}: best batched {batched:.3} vs scalar {scalar:.3} → {speedup:.2}x");
        let _ = write!(gates, "{}\"{algo}_1t_speedup\": {speedup:.3}", if gates.is_empty() { "" } else { ", " });
        let floor = if algo == "md5" { min_md5_speedup } else { 1.0 };
        if speedup < floor {
            eprintln!("GATE FAILED: {algo} speedup {speedup:.2}x is below the {floor:.2}x floor");
            failed = true;
        }
    }

    if let Some(path) = json_path {
        let mut body = String::new();
        for r in &rows {
            let _ = write!(
                body,
                "{}    {{\"algo\": \"{}\", \"threads\": {}, \"backend\": \"{}\", \"mkeys_per_s\": {:.3}}}",
                if body.is_empty() { "" } else { ",\n" },
                r.algo,
                r.threads,
                r.backend,
                r.mkeys
            );
        }
        let json = format!(
            "{{\n  \"bench\": \"cracker_backends_vs_scalar\",\n  \"keys_per_sweep\": {KEYS},\n  \"best_of\": {BEST_OF},\n  \"min_md5_speedup\": {min_md5_speedup},\n  \"results\": [\n{body}\n  ],\n  \"gates\": {{{gates}}}\n}}\n"
        );
        std::fs::write(&path, json).expect("write json artifact");
        println!("wrote {path}");
    }

    if failed {
        std::process::exit(1);
    }
}
