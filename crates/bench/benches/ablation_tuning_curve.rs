//! Ablation: efficiency versus interval size — the curve the tuning step
//! samples to find each node's `n_j` (Section III), plus the resulting
//! balanced assignment for the paper's network.

use eks_bench::header;
use eks_cluster::{paper_network, tune_device, AchievedModel};
use eks_core::partition::{balance_workloads, parallel_efficiency, NodeRate};
use eks_gpusim::grid::launch_efficiency;
use eks_hashes::HashAlgo;
use eks_kernels::Tool;

fn main() {
    header("Ablation — tuning curve and balanced assignment");
    let net = paper_network(2e-3);
    let tunings: Vec<_> = net
        .all_devices()
        .iter()
        .map(|d| {
            (
                d.name,
                tune_device(d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic),
            )
        })
        .collect();

    println!("efficiency vs interval size (launch overhead 0.2 ms):");
    print!("{:<24}", "device");
    let sizes = [1u128 << 16, 1 << 20, 1 << 24, 1 << 28, 1 << 32];
    for s in sizes {
        print!("{:>12}", format!("2^{}", s.trailing_zeros()));
    }
    println!("{:>14}", "n_j (99%)");
    for (name, t) in &tunings {
        print!("{name:<24}");
        for s in sizes {
            print!("{:>11.1}%", launch_efficiency(s, t.achieved_mkeys, 0.2) * 100.0);
        }
        println!("{:>14}", t.min_batch);
    }

    // The balanced assignment N_j = N_max · X_j / X_max.
    let rates: Vec<NodeRate> = tunings
        .iter()
        .map(|(_, t)| NodeRate::new(t.achieved_mkeys, t.min_batch))
        .collect();
    let assignment = balance_workloads(&rates);
    println!("\nbalanced per-round assignment (N_j = N_max · X_j / X_max):");
    for ((name, _), nj) in tunings.iter().zip(&assignment.sizes) {
        println!("  {name:<24}{nj:>14} keys");
    }
    println!(
        "round total {} keys, predicted parallel efficiency {:.4}",
        assignment.round_total(),
        parallel_efficiency(&assignment.sizes, &rates)
    );
}
