//! Table VI — the final optimized kernel: Table V plus `__byte_perm` for
//! the three rotate-by-16s inside the 46-step window on cc 3.0.

use eks_bench::header;
use eks_gpusim::arch::ComputeCapability;
use eks_kernels::counts::{our_md5_counts, PAPER_TABLE6_MD5_CC1X, PAPER_TABLE6_MD5_CC2X};
use eks_kernels::md5::Md5Variant;

fn main() {
    header("Table VI — real instruction count, optimized MD5 kernel");
    let ours_1x = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm1x);
    let ours_30 = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm30);
    println!(
        "{:<16}{:>8}{:>8}   {:>12}{:>8}",
        "class", "1.* paper", "ours", "2.*/3.0 paper", "ours"
    );
    let rows = [
        ("IADD", PAPER_TABLE6_MD5_CC1X.iadd, ours_1x.iadd(), PAPER_TABLE6_MD5_CC2X.iadd, ours_30.iadd()),
        ("AND/OR/XOR", PAPER_TABLE6_MD5_CC1X.lop, ours_1x.lop(), PAPER_TABLE6_MD5_CC2X.lop, ours_30.lop()),
        ("SHR/SHL", PAPER_TABLE6_MD5_CC1X.shift, ours_1x.shift(), PAPER_TABLE6_MD5_CC2X.shift, ours_30.shift()),
        ("IMAD/ISCADD", PAPER_TABLE6_MD5_CC1X.imad, ours_1x.imad(), PAPER_TABLE6_MD5_CC2X.imad, ours_30.imad()),
        ("PRMT", PAPER_TABLE6_MD5_CC1X.prmt, ours_1x.prmt(), PAPER_TABLE6_MD5_CC2X.prmt, ours_30.prmt()),
    ];
    for (name, p1, o1, p2, o2) in rows {
        println!("{name:<16}{p1:>8}{o1:>8}   {p2:>12}{o2:>8}");
    }
    let r = ours_30.ratio();
    println!("\nR = add+logic / shift+MAD = {r:.2} (paper: 270/92 ≈ 2.93);");
    println!("43 SHL + 43 IMAD + 3 PRMT on cc 3.0 match the paper exactly.");
}
