//! Table III — source-level MD5 operation counts ("operations that cannot
//! be evaluated at compile time in the CUDA source code").

use eks_bench::header;
use eks_kernels::counts::{our_md5_source_counts, PAPER_TABLE3_MD5_SOURCE};

fn main() {
    header("Table III — MD5 source-level instruction count");
    let ours = our_md5_source_counts();
    let paper = PAPER_TABLE3_MD5_SOURCE;
    println!("{:<28}{:>8}{:>8}", "operation", "paper", "ours");
    println!("{:<28}{:>8}{:>8}", "32-bit integer ADD", paper.add, ours.add);
    println!("{:<28}{:>8}{:>8}", "32-bit AND/OR/XOR", paper.logic, ours.logic);
    println!("{:<28}{:>8}{:>8}", "32-bit NOT", paper.not, ours.not);
    println!("{:<28}{:>8}{:>8}", "32-bit integer shift", paper.shift, ours.shift);
    println!();
    println!("notes: ADD and shift rows match the 64-step structure exactly");
    println!("(5 adds, 2 shifts per step). RFC 1321 contains 48 complements;");
    println!("the paper's NOT row (160) exceeds any straightforward source");
    println!("count — documented as a deviation in EXPERIMENTS.md.");
}
