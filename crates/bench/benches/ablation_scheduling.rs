//! Ablation: compiler instruction scheduling and dual-issue.
//!
//! The paper measured < 10 % dual-issue on its kernels and attributed the
//! Fermi gap to missing ILP. This ablation quantifies how much a
//! pairing-aware list scheduler (what `nvcc` does) can recover on each
//! architecture, for the optimized MD5 kernel and its ×2-interleaved
//! variant.

use eks_bench::header;
use eks_gpusim::codegen::{lower, CompiledKernel, LoweringOptions};
use eks_gpusim::device::DeviceCatalog;
use eks_gpusim::schedule::{adjacent_independence, schedule_for_pairing};
use eks_gpusim::sched::{simulate, SimConfig};
use eks_kernels::interleave::interleave_self;
use eks_kernels::md5::{build_md5, Md5Variant};
use eks_kernels::words_for_key_len;

fn scheduled(k: &CompiledKernel) -> CompiledKernel {
    let mut out = k.clone();
    out.instrs = schedule_for_pairing(&k.instrs);
    out
}

fn main() {
    header("Ablation — instruction scheduling and dual-issue");
    let words = words_for_key_len(4);
    let single = build_md5(Md5Variant::Optimized, &words).ir;
    let x2 = interleave_self(&single);

    println!(
        "{:<24}{:>12}{:>12}{:>12}{:>12}{:>14}{:>14}",
        "device", "MK/s", "+sched", "dual%", "+sched", "indep before", "after"
    );
    for dev in DeviceCatalog::paper_devices() {
        for (label, ir) in [("x1", &single), ("x2", &x2)] {
            let k = lower(ir, LoweringOptions::for_cc(dev.cc));
            let ks = scheduled(&k);
            let cfg = SimConfig::for_cc(dev.cc);
            let r0 = simulate(&k, cfg);
            let r1 = simulate(&ks, cfg);
            println!(
                "{:<24}{:>12.0}{:>12.0}{:>11.1}%{:>11.1}%{:>13.1}%{:>13.1}%",
                format!("{} {}", dev.name, label),
                r0.device_mkeys(&dev),
                r1.device_mkeys(&dev),
                r0.dual_issue_rate() * 100.0,
                r1.dual_issue_rate() * 100.0,
                adjacent_independence(&k.instrs) * 100.0,
                adjacent_independence(&ks.instrs) * 100.0,
            );
        }
    }
    println!("\nthe hash body is a near-serial chain, so scheduling alone recovers");
    println!("little on x1 (matching the paper's <10 % dual-issue observation);");
    println!("the ×2 interleave supplies the independence the scheduler needs.");
}
