//! Table V — compiled counts after the BarsWF reversal + early exit
//! (46-step average-case trace), before `__byte_perm`.

use eks_bench::header;
use eks_gpusim::arch::ComputeCapability;
use eks_kernels::counts::{our_md5_counts, PAPER_TABLE5_MD5_CC1X, PAPER_TABLE5_MD5_CC2X};
use eks_kernels::md5::Md5Variant;

fn main() {
    header("Table V — real instruction count, reversed MD5 kernel");
    // Table V is the optimized kernel lowered *without* __byte_perm.
    let ours_1x = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm1x);
    let ours_2x = our_md5_counts(Md5Variant::Optimized, ComputeCapability::Sm21);
    println!(
        "{:<16}{:>8}{:>8}   {:>12}{:>8}",
        "class", "1.* paper", "ours", "2.*/3.0 paper", "ours"
    );
    let rows = [
        ("IADD", PAPER_TABLE5_MD5_CC1X.iadd, ours_1x.iadd(), PAPER_TABLE5_MD5_CC2X.iadd, ours_2x.iadd()),
        ("AND/OR/XOR", PAPER_TABLE5_MD5_CC1X.lop, ours_1x.lop(), PAPER_TABLE5_MD5_CC2X.lop, ours_2x.lop()),
        ("SHR/SHL", PAPER_TABLE5_MD5_CC1X.shift, ours_1x.shift(), PAPER_TABLE5_MD5_CC2X.shift, ours_2x.shift()),
        ("IMAD/ISCADD", PAPER_TABLE5_MD5_CC1X.imad, ours_1x.imad(), PAPER_TABLE5_MD5_CC2X.imad, ours_2x.imad()),
    ];
    for (name, p1, o1, p2, o2) in rows {
        println!("{name:<16}{p1:>8}{o1:>8}   {p2:>12}{o2:>8}");
    }
    println!("\n46 SHL + 46 IMAD on cc ≥ 2.0 match the paper exactly: the reversal");
    println!("keeps 49 forward steps and the early exit cuts the last 3.");
}
