//! Table VIII — single-GPU throughput, MD5 and SHA-1: theoretical model,
//! our kernel (cycle-simulated), and the BarsWF / Cryptohaze baseline
//! models, against the published numbers.

use eks_bench::{compare, header, TABLE8_MD5, TABLE8_SHA1, Table8Row};
use eks_gpusim::codegen::lower;
use eks_gpusim::device::DeviceCatalog;
use eks_gpusim::sched::{simulate, SimConfig};
use eks_gpusim::throughput::theoretical_mkeys;
use eks_hashes::HashAlgo;
use eks_kernels::{Tool, ToolKernel};

fn tool_mkeys(tool: Tool, algo: HashAlgo, device: &eks_gpusim::device::Device) -> f64 {
    let tk = ToolKernel::build(tool, algo, device.cc);
    let k = lower(&tk.ir, tk.options);
    let sim = simulate(&k, SimConfig::for_cc(device.cc));
    sim.device_mkeys(device)
}

fn tool_theoretical(algo: HashAlgo, device: &eks_gpusim::device::Device) -> f64 {
    let tk = ToolKernel::build(Tool::OurApproach, algo, device.cc);
    let k = lower(&tk.ir, tk.options);
    theoretical_mkeys(device, &k.counts) * k.keys_per_iteration as f64
}

fn print_block(algo: HashAlgo, rows: &[Table8Row]) {
    println!("\n--- {} --- (MKey/s; paper | ours)", algo.name());
    println!(
        "{:<24}{:>32}{:>32}{:>32}{:>32}",
        "device", "theoretical", "our approach", "BarsWF", "Cryptohaze"
    );
    for row in rows {
        let device = DeviceCatalog::find(row.device).expect("catalog device");
        let theo = tool_theoretical(algo, &device);
        let ours = tool_mkeys(Tool::OurApproach, algo, &device);
        let bars = tool_mkeys(Tool::BarsWf, algo, &device);
        let crypto = tool_mkeys(Tool::Cryptohaze, algo, &device);
        print!("{:<24}", device.name);
        print!("{:>32}", compare(row.theoretical, theo));
        print!("{:>32}", compare(row.ours, ours));
        match row.barswf {
            Some(p) => print!("{:>32}", compare(p, bars)),
            None => print!("{:>22}{bars:>9.1}", "(not published)"),
        }
        print!("{:>32}", compare(row.cryptohaze, crypto));
        println!();
    }
}

fn main() {
    header("Table VIII — throughput on a single GPU");
    print_block(HashAlgo::Md5, &TABLE8_MD5);
    print_block(HashAlgo::Sha1, &TABLE8_SHA1);
    println!("\nshape checks: ours ≥ BarsWF ≥ Cryptohaze on every device;");
    println!("Kepler ≈ 99 % of theoretical, Fermi ≈ 2/3, cc 1.x ≈ 85-90 %.");
}
