//! Ablation: keys per thread — the §IV amortization argument.
//!
//! "each thread should call the conversion routine for each testing key;
//! to reduce the time spent on the conversion routine, it is possible to
//! assign a larger number of strings per thread by applying the next
//! operator." This bench quantifies it: per-key efficiency as a function
//! of the per-thread batch size, per architecture.

use eks_bench::header;
use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::{lower, LoweringOptions};
use eks_kernels::generation::{build_conversion, build_next_operator, thread_efficiency};
use eks_kernels::md5::{build_md5, Md5Variant};
use eks_kernels::words_for_key_len;

fn main() {
    header("Ablation — conversion amortization (keys per thread)");
    let batches = [1u32, 4, 16, 64, 256, 1024];
    println!("{:<8}{:>10}{:>10}{:>10}   efficiency at keys/thread =", "arch", "conv", "next", "hash");
    print!("{:<38}", "");
    for b in batches {
        print!("{b:>9}");
    }
    println!();
    for cc in [ComputeCapability::Sm1x, ComputeCapability::Sm21, ComputeCapability::Sm30] {
        let opts = LoweringOptions::plain(cc);
        let conv = lower(&build_conversion(8, b'a' as u32), opts).counts.total();
        let next = lower(&build_next_operator(), opts).counts.total();
        let hash = lower(&build_md5(Md5Variant::Optimized, &words_for_key_len(8)).ir, opts)
            .counts
            .total();
        print!("{:<8}{conv:>10}{next:>10}{hash:>10}   ", cc.label());
        for b in batches {
            print!("{:>8.1}%", thread_efficiency(conv, next, hash, b) * 100.0);
        }
        println!();
    }
    println!("\nregenerating f(id) per key wastes 10-20 % of the device; batches of");
    println!("a few dozen keys per thread recover it — the kernels default to the");
    println!("next-operator scan exactly as the paper prescribes.");
}
