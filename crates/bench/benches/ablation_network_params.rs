//! Ablation: sensitivity of the Table IX network efficiency to the
//! dispatch parameters — what the paper's Section III cost analysis
//! predicts, measured on the DES.
//!
//! * round count: more rounds = faster stop-condition detection but more
//!   scatter/gather and launch overhead;
//! * link latency: negligible for large intervals ("K_scatter and
//!   K_gather ... become negligible for sufficiently large problems");
//! * tuning error: misestimated `X_j` leaves the fastest node waiting —
//!   the dominant efficiency loss.

use eks_bench::header;
use eks_cluster::{paper_network, simulate_search, SimParams};
use eks_hashes::HashAlgo;
use eks_kernels::Tool;

fn eff(params: SimParams, keys: f64) -> f64 {
    let net = paper_network(params.link_latency_s);
    simulate_search(&net, Tool::OurApproach, HashAlgo::Md5, keys, params)
        .parallel_efficiency()
}

fn main() {
    header("Ablation — network dispatch parameters (MD5, 5e11 keys)");
    let base = SimParams::default();
    let keys = 5e11;

    println!("rounds (stop-condition granularity):");
    for rounds in [1u32, 5, 20, 100, 500] {
        let e = eff(SimParams { rounds, ..base }, keys);
        println!("  rounds {rounds:>4} -> efficiency {e:.4}");
    }

    println!("link latency per hop:");
    for lat in [0.0, 1e-3, 2e-3, 10e-3, 100e-3] {
        let e = eff(SimParams { link_latency_s: lat, ..base }, keys);
        println!("  {:>6.0} ms -> efficiency {e:.4}", lat * 1e3);
    }

    println!("tuning error (misestimated X_j):");
    for err in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let e = eff(SimParams { tuning_error: err, ..base }, keys);
        println!("  {:>4.0}% -> efficiency {e:.4}", err * 100.0);
    }

    println!("search size (K_scatter/K_gather amortization):");
    for exp in [7, 9, 11, 13] {
        let e = eff(base, 10f64.powi(exp));
        println!("  1e{exp:<2} keys -> efficiency {e:.4}");
    }

    println!("\nthe paper's claims hold in the model: overheads vanish for large");
    println!("intervals, and the residual loss tracks the tuning estimate error.");
}
