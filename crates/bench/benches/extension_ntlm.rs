//! Extension: NTLM (MD4/UTF-16LE) throughput on the paper's devices.
//!
//! Not in the paper — MD4 inherits MD5's reversal property (w[0] unused
//! by the final 15 steps) with a 48-step base, so the same optimization
//! stack applies and NTLM ends up the fastest hash of the three.

use eks_bench::header;
use eks_gpusim::codegen::lower;
use eks_gpusim::device::DeviceCatalog;
use eks_gpusim::sched::{simulate, SimConfig};
use eks_gpusim::throughput::theoretical_mkeys;
use eks_hashes::HashAlgo;
use eks_kernels::{Tool, ToolKernel};

fn main() {
    header("Extension — NTLM throughput (MKey/s, simulated)");
    println!(
        "{:<24}{:>14}{:>14}{:>14}{:>12}",
        "device", "NTLM theo", "NTLM sim", "MD5 sim", "NTLM/MD5"
    );
    for dev in DeviceCatalog::paper_devices() {
        let sim_of = |algo: HashAlgo| {
            let tk = ToolKernel::build(Tool::OurApproach, algo, dev.cc);
            let k = lower(&tk.ir, tk.options);
            let theo = theoretical_mkeys(&dev, &k.counts) * k.keys_per_iteration as f64;
            let sim = simulate(&k, SimConfig::for_cc(dev.cc)).device_mkeys(&dev);
            (theo, sim)
        };
        let (ntlm_theo, ntlm_sim) = sim_of(HashAlgo::Ntlm);
        let (_, md5_sim) = sim_of(HashAlgo::Md5);
        println!(
            "{:<24}{:>14.0}{:>14.0}{:>14.0}{:>11.2}x",
            dev.name,
            ntlm_theo,
            ntlm_sim,
            md5_sim,
            ntlm_sim / md5_sim
        );
    }
    println!("\nNTLM's 30-step average trace (vs MD5's 46) makes it ≈ 1.5x faster —");
    println!("the structural reason NTLM audits finish first in practice.");
}
