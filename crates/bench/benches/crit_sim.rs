//! Criterion benchmarks for the simulator stack itself: kernel building,
//! lowering, instruction scheduling and the cycle-level simulation —
//! the costs a user pays when tuning or exploring configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::{lower, LoweringOptions};
use eks_gpusim::schedule::schedule_for_pairing;
use eks_gpusim::sched::{simulate, SimConfig};
use eks_kernels::md5::{build_md5, Md5Variant};
use eks_kernels::words_for_key_len;
use std::hint::black_box;

fn bench_build_and_lower(c: &mut Criterion) {
    let words = words_for_key_len(4);
    c.bench_function("build_md5_optimized_ir", |b| {
        b.iter(|| build_md5(Md5Variant::Optimized, black_box(&words)))
    });
    let ir = build_md5(Md5Variant::Optimized, &words).ir;
    c.bench_function("lower_sm30", |b| {
        b.iter(|| lower(black_box(&ir), LoweringOptions::for_cc(ComputeCapability::Sm30)))
    });
}

fn bench_schedule_pass(c: &mut Criterion) {
    let ir = build_md5(Md5Variant::Optimized, &words_for_key_len(4)).ir;
    let k = lower(&ir, LoweringOptions::for_cc(ComputeCapability::Sm30));
    c.bench_function("schedule_for_pairing", |b| {
        b.iter(|| schedule_for_pairing(black_box(&k.instrs)))
    });
}

fn bench_cycle_sim(c: &mut Criterion) {
    let ir = build_md5(Md5Variant::Optimized, &words_for_key_len(4)).ir;
    let mut g = c.benchmark_group("cycle_sim");
    g.sample_size(10);
    for cc in [ComputeCapability::Sm1x, ComputeCapability::Sm21, ComputeCapability::Sm30] {
        let k = lower(&ir, LoweringOptions::for_cc(cc));
        g.bench_function(format!("md5_optimized_{}", cc.label()), |b| {
            b.iter(|| {
                simulate(
                    black_box(&k),
                    SimConfig { warps: cc.mp_spec().max_warps, iterations: 4, max_cycles: 50_000_000 },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build_and_lower, bench_schedule_pass, bench_cycle_sim);
criterion_main!(benches);
