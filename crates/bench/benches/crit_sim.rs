//! Benchmarks for the simulator stack itself: kernel building, lowering,
//! instruction scheduling and the cycle-level simulation — the costs a
//! user pays when tuning or exploring configurations.

use eks_bench::harness::Group;
use eks_gpusim::arch::ComputeCapability;
use eks_gpusim::codegen::{lower, LoweringOptions};
use eks_gpusim::sched::{simulate, SimConfig};
use eks_gpusim::schedule::schedule_for_pairing;
use eks_kernels::md5::{build_md5, Md5Variant};
use eks_kernels::words_for_key_len;
use std::hint::black_box;

fn bench_build_and_lower() {
    let words = words_for_key_len(4);
    let mut g = Group::new("build_and_lower");
    g.bench("build_md5_optimized_ir", || {
        build_md5(Md5Variant::Optimized, black_box(&words))
    });
    let ir = build_md5(Md5Variant::Optimized, &words).ir;
    g.bench("lower_sm30", || {
        lower(black_box(&ir), LoweringOptions::for_cc(ComputeCapability::Sm30))
    });
}

fn bench_schedule_pass() {
    let ir = build_md5(Md5Variant::Optimized, &words_for_key_len(4)).ir;
    let k = lower(&ir, LoweringOptions::for_cc(ComputeCapability::Sm30));
    let mut g = Group::new("schedule");
    g.bench("schedule_for_pairing", || schedule_for_pairing(black_box(&k.instrs)));
}

fn bench_cycle_sim() {
    let ir = build_md5(Md5Variant::Optimized, &words_for_key_len(4)).ir;
    let mut g = Group::new("cycle_sim");
    for cc in [ComputeCapability::Sm1x, ComputeCapability::Sm21, ComputeCapability::Sm30] {
        let k = lower(&ir, LoweringOptions::for_cc(cc));
        g.bench(&format!("md5_optimized_{}", cc.label()), || {
            simulate(
                black_box(&k),
                SimConfig { warps: cc.mp_spec().max_warps, iterations: 4, max_cycles: 50_000_000 },
            )
        });
    }
}

fn main() {
    bench_build_and_lower();
    bench_schedule_pass();
    bench_cycle_sim();
}
