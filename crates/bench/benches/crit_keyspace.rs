//! Micro-benchmarks for the enumeration layer: `f(id)` versus the
//! `next` operator (the cost asymmetry the whole pattern exploits),
//! decode, and iterator throughput.

use eks_bench::harness::Group;
use eks_keyspace::{decode, encode, Charset, Interval, KeySpace, Order};
use std::hint::black_box;

fn bench_encode_vs_next() {
    let cs = Charset::alphanumeric();
    let mut g = Group::new("f_vs_next");
    g.throughput_elements(1);
    let mut id = 1u128 << 40;
    g.bench("f(id) from scratch", || {
        id += 1;
        encode(black_box(id), &cs, Order::LastCharFastest)
    });
    g.bench_with_setup(
        "next operator",
        || encode(1u128 << 40, &cs, Order::LastCharFastest),
        |mut k| {
            eks_keyspace::encode::advance(&mut k, &cs, Order::LastCharFastest);
            k
        },
    );
}

fn bench_orders() {
    let cs = Charset::alphanumeric();
    let mut g = Group::new("enumeration_order");
    for (name, order) in [
        ("last_char_fastest", Order::LastCharFastest),
        ("first_char_fastest", Order::FirstCharFastest),
    ] {
        g.bench_with_setup(
            name,
            || encode(1u128 << 40, &cs, order),
            |mut k| {
                for _ in 0..64 {
                    eks_keyspace::encode::advance(&mut k, &cs, order);
                }
                k
            },
        );
    }
}

fn bench_decode() {
    let cs = Charset::alphanumeric();
    let k = encode(1u128 << 40, &cs, Order::LastCharFastest);
    let mut g = Group::new("decode");
    g.bench("decode", || decode(black_box(&k), &cs, Order::LastCharFastest));
}

fn bench_iterator() {
    let space = KeySpace::new(Charset::alphanumeric(), 1, 8, Order::FirstCharFastest).unwrap();
    let mut g = Group::new("key_iterator");
    g.throughput_elements(10_000);
    g.bench("for_each_key_10k", || {
        let mut n = 0u64;
        space
            .iter(Interval::new(1 << 30, 10_000))
            .for_each_key(|_, k| {
                n += k.len() as u64;
                true
            });
        n
    });
}

fn main() {
    bench_encode_vs_next();
    bench_orders();
    bench_decode();
    bench_iterator();
}
