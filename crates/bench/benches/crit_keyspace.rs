//! Criterion micro-benchmarks for the enumeration layer: `f(id)` versus
//! the `next` operator (the cost asymmetry the whole pattern exploits),
//! decode, and iterator throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use eks_keyspace::{decode, encode, Charset, Interval, KeySpace, Order};
use std::hint::black_box;

fn bench_encode_vs_next(c: &mut Criterion) {
    let cs = Charset::alphanumeric();
    let mut g = c.benchmark_group("f_vs_next");
    g.throughput(Throughput::Elements(1));
    g.bench_function("f(id) from scratch", |b| {
        let mut id = 1u128 << 40;
        b.iter(|| {
            id += 1;
            encode(black_box(id), &cs, Order::LastCharFastest)
        })
    });
    g.bench_function("next operator", |b| {
        b.iter_batched(
            || encode(1u128 << 40, &cs, Order::LastCharFastest),
            |mut k| {
                eks_keyspace::encode::advance(&mut k, &cs, Order::LastCharFastest);
                k
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_orders(c: &mut Criterion) {
    let cs = Charset::alphanumeric();
    let mut g = c.benchmark_group("enumeration_order");
    for (name, order) in [
        ("last_char_fastest", Order::LastCharFastest),
        ("first_char_fastest", Order::FirstCharFastest),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || encode(1u128 << 40, &cs, order),
                |mut k| {
                    for _ in 0..64 {
                        eks_keyspace::encode::advance(&mut k, &cs, order);
                    }
                    k
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let cs = Charset::alphanumeric();
    let k = encode(1u128 << 40, &cs, Order::LastCharFastest);
    c.bench_function("decode", |b| {
        b.iter(|| decode(black_box(&k), &cs, Order::LastCharFastest))
    });
}

fn bench_iterator(c: &mut Criterion) {
    let space = KeySpace::new(Charset::alphanumeric(), 1, 8, Order::FirstCharFastest).unwrap();
    let mut g = c.benchmark_group("key_iterator");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("for_each_key_10k", |b| {
        b.iter(|| {
            let mut n = 0u64;
            space
                .iter(Interval::new(1 << 30, 10_000))
                .for_each_key(|_, k| {
                    n += k.len() as u64;
                    true
                });
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encode_vs_next, bench_orders, bench_decode, bench_iterator);
criterion_main!(benches);
