//! CI smoke gate for the live observability plane.
//!
//! A two-worker fleet is deliberately skewed — both workers scan with
//! the real 8-lane MD5 backend, but the driver charges worker
//! `host/slow` [`SLOW_FACTOR`]× the virtual nanoseconds per key — and
//! the whole run is driven on a [`ManualClock`] through the same
//! deterministic virtual-core loop as `adaptive_smoke`. The telemetry
//! handle carries an attached [`LivePlane`] with 1-second windows, so
//! every `Dispatcher::scan_as` merge runs the real
//! `Telemetry::observe_plane` hook: windows flush exactly when the
//! virtual clock crosses a boundary and the anomaly detector
//! classifies the flushed deltas.
//!
//! The gate asserts the ISSUE acceptance criteria end to end:
//!
//! 1. the detector flags `host/slow` as a straggler within two
//!    windows of the run starting;
//! 2. a live `/metrics` scrape taken mid-run (work still queued) shows
//!    `eks_anomaly_total{kind="straggler"}` and the
//!    `eks_worker_flagged` gauge for the slow worker;
//! 3. a flight dump rendered from the same telemetry names the slow
//!    worker, and round-trips through the flight parser — `ci.sh`
//!    replays the written file with `eks postmortem`.
//!
//! Pass an argument to choose where the flight dump lands (CI does);
//! the default is a per-process file under the temp dir. Exits
//! non-zero when any bound is missed.

use std::process::ExitCode;
use std::sync::Arc;

use eks_cracker::{cpu_backend, Lanes, TargetSet};
use eks_engine::{ChunkPolicy, Dispatcher, IntervalDeques, RateBook, ScanMode};
use eks_hashes::HashAlgo;
use eks_keyspace::{Charset, Interval, KeySpace, Order};
use eks_telemetry::{
    http_get, names, parse_flight, parse_prometheus, render_flight, render_postmortem,
    AnomalyConfig, AnomalyKind, LivePlane, ManualClock, MetricsServer, Telemetry,
};

/// Keys in the run — enough virtual work for three-plus windows.
const KEYS: u128 = 400_000;
/// Virtual cost charged per key on the healthy worker.
const FAST_NS_PER_KEY: u64 = 10_000;
/// The straggler's handicap: 4× the per-key cost, a 75 % rate deficit
/// against the tuned book — far past the 40 % straggler line.
const SLOW_FACTOR: u64 = 4;
/// Window width on the live plane (virtual nanoseconds).
const WINDOW_NS: u64 = 1_000_000_000;
/// The acceptance bound: flagged in window index ≤ this.
const MAX_FLAG_WINDOW: u64 = 2;
/// Both workers' stale tuned claim, in MKeys/s: exactly the healthy
/// worker's true virtual rate (1 key per 10 µs = 0.1 MKey/s).
const TUNED_MKEYS: f64 = 0.1;
/// Fixed pop size — ~100 chunks across the run.
const CHUNK: u128 = 1 << 12;

const WORKERS: usize = 2;
const LABELS: [&str; WORKERS] = ["host/fast", "host/slow"];

fn check(ok: bool, what: &str) -> bool {
    println!("  [{}] {what}", if ok { "ok" } else { "FAIL" });
    ok
}

fn main() -> ExitCode {
    let flight_path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => std::env::temp_dir().join(format!("eks-observability-{}.json", std::process::id())),
    };

    // Virtual time: the telemetry clock only moves when the driver
    // advances it, so window boundaries are deterministic.
    let clock = Arc::new(ManualClock::new());
    let telemetry = Telemetry::with_clock(clock.clone());
    let plane = Arc::new(LivePlane::new(WINDOW_NS, 16, AnomalyConfig::default()));
    telemetry.attach_plane(plane.clone());
    let server = match MetricsServer::spawn("127.0.0.1:0", telemetry.clone(), None) {
        Ok(s) => s,
        Err(e) => {
            println!("  [FAIL] metrics server bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr().to_string();
    println!("observability smoke: 2 workers, {SLOW_FACTOR}x skew, scraping http://{addr}");

    let space = KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest)
        .expect("keyspace");
    let digest = vec![0u8; 16]; // impossible target: pure sweep
    let targets = TargetSet::new(HashAlgo::Md5, &[digest]);
    let dispatcher = Dispatcher::new(&space, &targets, ScanMode::Exhaustive)
        .with_telemetry(telemetry.clone());
    let ids = LABELS.map(|l| dispatcher.register(l));
    let backend = cpu_backend(Lanes::L8);

    // The scatter trusts the stale equal book, so the slow worker owns
    // half the keys — the PR 9 skewed-fleet scenario.
    let deques = IntervalDeques::scatter(Interval::new(0, KEYS), &[1.0; WORKERS]);
    let rates = RateBook::new(vec![TUNED_MKEYS; WORKERS]);
    let cost_ns_per_key: [u64; WORKERS] = [FAST_NS_PER_KEY, FAST_NS_PER_KEY * SLOW_FACTOR];

    let mut vclock = [0u64; WORKERS];
    let mut done = [false; WORKERS];
    let mut mid_run_scrape: Option<(String, u128)> = None;
    loop {
        // Always advance the furthest-behind live worker.
        let Some(w) = (0..WORKERS).filter(|&w| !done[w]).min_by_key(|&w| vclock[w]) else {
            break;
        };
        let chunk = match deques.pop(w, ChunkPolicy::Fixed(CHUNK)) {
            Some(c) => c,
            None => {
                if deques.steal_into(w).is_none() {
                    done[w] = true;
                }
                continue;
            }
        };
        // The real dispatch path: live labelled counters, scan spans,
        // and the observe_plane hook all fire inside scan_as.
        let report = dispatcher.scan_as(ids[w], backend.as_ref(), chunk);
        let cost = u64::try_from(report.tested).unwrap_or(u64::MAX) * cost_ns_per_key[w];
        rates.observe(w, report.tested, cost);
        vclock[w] += cost;
        // Publish the live-vs-tuned gauges the straggler rule reads,
        // exactly as the scheduler's elected retune tick does.
        for (slot, label) in LABELS.iter().enumerate() {
            telemetry.gauge(names::WORKER_RATE_EST, &[("worker", label)]).set(rates.mkeys(slot));
            telemetry
                .gauge(names::WORKER_RATE_TUNED, &[("worker", label)])
                .set(rates.tuned_mkeys(slot));
        }
        // The fleet's "now" is the slowest live worker's frontier.
        if let Some(&frontier) = vclock
            .iter()
            .zip(done.iter())
            .filter(|(_, &d)| !d)
            .map(|(v, _)| v)
            .min()
        {
            clock.set(frontier);
        }
        // First time the plane flags the straggler with work still
        // queued, take the mid-run /metrics scrape the gate asserts on.
        if mid_run_scrape.is_none() && plane.is_flagged(LABELS[1]) {
            let remaining = deques.total_remaining();
            if let Ok(body) = http_get(&addr, "/metrics") {
                mid_run_scrape = Some((body, remaining));
            }
        }
    }
    let report = dispatcher.finish();
    server.shutdown();

    let mut ok = true;
    ok &= check(report.tested == KEYS, &format!("swept all {KEYS} keys ({})", report.tested));

    // 1. The straggler verdict, and how early it landed.
    let straggler_window = plane
        .recent_anomalies()
        .iter()
        .filter(|a| a.kind == AnomalyKind::Straggler && a.worker == LABELS[1])
        .map(|a| a.window)
        .min();
    ok &= check(
        straggler_window.is_some_and(|w| w <= MAX_FLAG_WINDOW),
        &format!(
            "{} flagged straggler within {MAX_FLAG_WINDOW} windows (window {:?})",
            LABELS[1], straggler_window
        ),
    );
    ok &= check(
        !plane.is_flagged(LABELS[0]) || plane.is_flagged(LABELS[1]),
        "healthy worker is never the only flagged one",
    );

    // 2. The mid-run scrape saw the verdict while keys were queued.
    match &mid_run_scrape {
        Some((body, remaining)) => {
            let samples = parse_prometheus(body).unwrap_or_default();
            let straggler_total: f64 = samples
                .iter()
                .filter(|s| s.name == names::ANOMALIES && s.label("kind") == Some("straggler"))
                .map(|s| s.value)
                .sum();
            let flagged = samples.iter().any(|s| {
                s.name == names::WORKER_FLAGGED
                    && s.label("worker") == Some(LABELS[1])
                    && s.value > 0.0
            });
            ok &= check(*remaining > 0, &format!("scrape was mid-run ({remaining} keys queued)"));
            ok &= check(straggler_total >= 1.0, "/metrics showed eks_anomaly_total{kind=straggler}");
            ok &= check(flagged, "/metrics showed the slow worker's flagged gauge");
        }
        None => {
            ok = check(false, "a mid-run /metrics scrape was taken after flagging");
        }
    }

    // 3. The flight dump replays and names the straggler.
    let dump = render_flight(
        &telemetry,
        Some(&plane),
        u64::MAX,
        "observability smoke snapshot",
        "observability_smoke.rs",
    );
    if let Err(e) = std::fs::write(&flight_path, &dump) {
        ok = check(false, &format!("write {}: {e}", flight_path.display()));
    } else {
        println!("  flight dump: {}", flight_path.display());
    }
    match parse_flight(&dump) {
        Ok(flight) => {
            let postmortem = render_postmortem(&flight);
            ok &= check(
                postmortem.contains(LABELS[1]),
                "postmortem timeline names the slow worker",
            );
        }
        Err(e) => ok = check(false, &format!("flight dump round-trips: {e}")),
    }

    if ok {
        println!("observability smoke: PASS");
        ExitCode::SUCCESS
    } else {
        println!("observability smoke: FAIL");
        ExitCode::FAILURE
    }
}
