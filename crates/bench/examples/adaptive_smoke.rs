//! CI smoke gate for the closed-loop adaptive load balancer.
//!
//! A two-worker fleet is deliberately skewed — worker 0 runs the
//! 8-lane batched backend at full speed, worker 1 the same backend
//! handicapped [`SLOW_FACTOR`]-fold — while the scatter trusts a stale
//! tuned book claiming they are equal. The static arm drains exactly
//! its planned share, so the fast worker idles through the back half of
//! the run (>30% fleet idle by construction). The adaptive arm runs the
//! same feedback loop `--retune` enables in the real scheduler: every
//! chunk timing feeds a live [`RateBook`], the estimated-time-to-drain
//! drift is checked periodically, the queued remainders are
//! re-scattered by the live rates, and drained workers steal. It must
//! close the idle gap to under [`MAX_ADAPTIVE_IDLE_PCT`].
//!
//! Both arms drive the scheduler through a deterministic virtual-core
//! clock (each scanned chunk's measured nanoseconds advance that
//! worker's clock; the driver always advances the furthest-behind
//! worker), so the verdict measures scheduler quality, not how many
//! cores the CI host happens to have. Exits non-zero when either bound
//! is missed.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::time::Instant;

use eks_cracker::{cpu_backend, Lanes, TargetSet};
use eks_engine::{eta_drift_pct, Backend, ChunkPolicy, IntervalDeques, RateBook, ScanMode};
use eks_hashes::HashAlgo;
use eks_keyspace::{Charset, Interval, KeySpace, Order};

/// Keys per arm — small enough for CI, large enough that the slow
/// worker's share is dozens of chunks.
const KEYS: u64 = 40_000;
/// The handicap: worker 1 re-scans each chunk this many times.
const SLOW_FACTOR: u32 = 4;
/// KDF work factor (iterated MD5), so per-key cost varies with the key.
const KDF_ITERS: u16 = 8;
/// Drift-check cadence and threshold — the `Retune::default()` values.
const EVERY_CHUNKS: u64 = 8;
const DRIFT_PCT: f64 = 25.0;
/// Guided chunk floor for both arms.
const CHUNK_MIN: u128 = 1 << 9;
/// The static arm must waste at least this much of the fleet (the
/// misassignment is 4x, so the true figure is 37.5%).
const MIN_STATIC_IDLE_PCT: f64 = 30.0;
/// The adaptive arm must recover to at most this much idle.
const MAX_ADAPTIVE_IDLE_PCT: f64 = 15.0;
/// Virtual cost charged per steal attempt.
const STEAL_NS: u64 = 2_000;

/// Worker 1's handicapped backend: scans each chunk [`SLOW_FACTOR`]
/// times, reports it once.
struct SlowedBackend {
    inner: Box<dyn Backend>,
}

impl Backend for SlowedBackend {
    fn name(&self) -> String {
        format!("{}-slow{SLOW_FACTOR}", self.inner.name())
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> eks_engine::ScanReport {
        let out = self.inner.scan(space, targets, interval, stop, mode);
        for _ in 1..SLOW_FACTOR {
            let extra = self.inner.scan(space, targets, interval, stop, mode);
            assert!(extra.hits.is_empty(), "impossible target must not hit");
        }
        out
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        self.inner.tuned_rate(algo) / f64::from(SLOW_FACTOR)
    }
}

/// One arm under the virtual-core clock. Returns `(idle_pct, tested)`.
fn run_arm(adaptive: bool) -> (f64, u128) {
    let algo = HashAlgo::Md5Iter { iters: KDF_ITERS };
    let space =
        KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).expect("space");
    let impossible = TargetSet::new(algo, &[vec![0u8; algo.digest_len()]]);
    let backends: Vec<Box<dyn Backend>> = vec![
        cpu_backend(Lanes::L8),
        Box::new(SlowedBackend { inner: cpu_backend(Lanes::L8) }),
    ];
    let workers = backends.len();
    let stop = AtomicBool::new(false);
    let policy = ChunkPolicy::Guided { min: CHUNK_MIN };
    // The stale book: equal weights although the fleet is 4x skewed.
    let stale = vec![1.0; workers];
    let deques = IntervalDeques::scatter(Interval::new(0, KEYS as u128), &stale);
    let rates = RateBook::new(stale);
    let mut clock = vec![0u64; workers];
    let mut busy = vec![0u64; workers];
    let mut done = vec![false; workers];
    let mut tested: u128 = 0;
    let mut chunks = 0u64;
    while let Some(w) = (0..workers).filter(|&w| !done[w]).min_by_key(|&w| clock[w]) {
        match deques.pop(w, policy) {
            Some(chunk) => {
                let t0 = Instant::now();
                let out =
                    backends[w].scan(&space, &impossible, chunk, &stop, ScanMode::Exhaustive);
                let ns = t0.elapsed().as_nanos() as u64;
                clock[w] += ns;
                busy[w] += ns;
                tested += out.tested;
                assert!(out.hits.is_empty(), "impossible target must not hit");
                rates.observe(w, out.tested, ns);
                chunks += 1;
                if adaptive && chunks % EVERY_CHUNKS == 0 {
                    let remaining: Vec<u128> =
                        (0..workers).map(|s| deques.remaining(s)).collect();
                    let live = rates.weights();
                    if eta_drift_pct(&remaining, &live, false) > DRIFT_PCT {
                        deques.rescatter(&live);
                    }
                }
            }
            None => {
                if adaptive {
                    clock[w] += STEAL_NS;
                    if deques.steal_into(w).is_none() {
                        done[w] = true;
                    }
                } else {
                    done[w] = true;
                }
            }
        }
    }
    let makespan = clock.iter().copied().max().unwrap_or(0).max(1);
    let total_busy: u64 = busy.iter().sum();
    let idle_pct =
        100.0 * (1.0 - total_busy as f64 / (workers as f64 * makespan as f64));
    (idle_pct, tested)
}

fn main() -> ExitCode {
    // Warm-up: one untimed static arm heats caches for both backends.
    let _ = run_arm(false);
    let (static_idle, static_tested) = run_arm(false);
    let (adaptive_idle, adaptive_tested) = run_arm(true);
    println!(
        "skewed fleet (md5x{KDF_ITERS}, {SLOW_FACTOR}x handicap, stale equal weights): \
         static idle {static_idle:.1}% (floor {MIN_STATIC_IDLE_PCT:.0}%), \
         adaptive idle {adaptive_idle:.1}% (cap {MAX_ADAPTIVE_IDLE_PCT:.0}%)"
    );
    let mut ok = true;
    for (arm, tested) in [("static", static_tested), ("adaptive", adaptive_tested)] {
        if tested != u128::from(KEYS) {
            eprintln!("FAIL: {arm} arm tested {tested} of {KEYS} keys (coverage broken)");
            ok = false;
        }
    }
    if static_idle < MIN_STATIC_IDLE_PCT {
        eprintln!(
            "FAIL: static arm idles only {static_idle:.1}% — the fleet is not skewed \
             enough for the adaptive verdict to mean anything"
        );
        ok = false;
    }
    if adaptive_idle > MAX_ADAPTIVE_IDLE_PCT {
        eprintln!(
            "FAIL: adaptive arm still idles {adaptive_idle:.1}% — the closed loop did \
             not recover the misassigned half"
        );
        ok = false;
    }
    if ok {
        println!("adaptive smoke: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
