//! A self-contained micro-benchmark harness for the `crit_*` targets.
//!
//! The workspace builds with no registry access, so Criterion is not
//! available; this module supplies the subset the benches need: named
//! groups, per-element throughput, warmup, and a median-of-samples
//! timing loop. Every `crit_*` target is a plain `harness = false`
//! binary that prints one line per benchmark:
//!
//! ```text
//! group/name                 median   123.4 ns/iter   8.10 Melem/s
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring one benchmark.
const MEASURE_TIME: Duration = Duration::from_millis(300);
/// Warmup time before measurement.
const WARMUP_TIME: Duration = Duration::from_millis(80);
/// Number of samples the measurement window is divided into.
const SAMPLES: usize = 11;

/// A named group of benchmarks with an optional throughput annotation.
pub struct Group {
    name: String,
    elements_per_iter: Option<u64>,
}

impl Group {
    /// Start a benchmark group.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), elements_per_iter: None }
    }

    /// Annotate subsequent benchmarks with elements processed per
    /// iteration so the report includes a Melem/s column.
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.elements_per_iter = Some(n);
        self
    }

    /// Time `routine`, printing a one-line report.
    pub fn bench<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) {
        let median = time_routine(&mut routine);
        self.report(name, median);
    }

    /// Time `routine` over fresh inputs from `setup`; setup cost is
    /// excluded by timing each call individually.
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        // Calibrate with one setup + call.
        let median = time_routine_with_setup(&mut setup, &mut routine);
        self.report(name, median);
    }

    fn report(&self, name: &str, per_iter: Duration) {
        let label = format!("{}/{}", self.name, name);
        let ns = per_iter.as_secs_f64() * 1e9;
        match self.elements_per_iter {
            Some(n) if per_iter > Duration::ZERO => {
                let meps = n as f64 / per_iter.as_secs_f64() / 1e6;
                println!("{label:<44} {ns:>12.1} ns/iter {meps:>10.2} Melem/s");
            }
            _ => println!("{label:<44} {ns:>12.1} ns/iter"),
        }
    }
}

/// Run `routine` standalone (outside a group) and print the report.
pub fn bench<T>(name: &str, routine: impl FnMut() -> T) {
    Group::new("bench").bench(name, routine);
}

fn time_routine<T>(routine: &mut impl FnMut() -> T) -> Duration {
    // Warmup while estimating the per-iteration cost.
    let warm_start = Instant::now();
    let mut iters: u64 = 0;
    while warm_start.elapsed() < WARMUP_TIME {
        black_box(routine());
        iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
    // Size each sample to roughly MEASURE_TIME / SAMPLES.
    let sample_target = MEASURE_TIME.as_secs_f64() / SAMPLES as f64;
    let batch = ((sample_target / per_iter.max(1e-12)) as u64).clamp(1, u32::MAX as u64);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        samples.push(t.elapsed() / batch as u32);
    }
    median(samples)
}

fn time_routine_with_setup<S, T>(
    setup: &mut impl FnMut() -> S,
    routine: &mut impl FnMut(S) -> T,
) -> Duration {
    // Each iteration is timed individually to exclude setup; batches of
    // timed iterations form samples.
    let mut one = || {
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        t.elapsed()
    };
    let warm_start = Instant::now();
    let mut iters: u64 = 0;
    let mut spent = Duration::ZERO;
    while warm_start.elapsed() < WARMUP_TIME {
        spent += one();
        iters += 1;
    }
    let per_iter = (spent.as_secs_f64() / iters as f64).max(1e-12);
    let sample_target = MEASURE_TIME.as_secs_f64() / SAMPLES as f64;
    let batch = ((sample_target / per_iter) as u64).clamp(1, u32::MAX as u64);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let mut total = Duration::ZERO;
        for _ in 0..batch {
            total += one();
        }
        samples.push(total / batch as u32);
    }
    median(samples)
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_list() {
        let ds = vec![
            Duration::from_nanos(30),
            Duration::from_nanos(10),
            Duration::from_nanos(20),
        ];
        assert_eq!(median(ds), Duration::from_nanos(20));
    }

    #[test]
    fn timing_loops_terminate() {
        let d = time_routine(&mut || 1 + 1);
        assert!(d < Duration::from_secs(1));
        let d = time_routine_with_setup(&mut || 5u64, &mut |x| x * 2);
        assert!(d < Duration::from_secs(1));
    }
}
