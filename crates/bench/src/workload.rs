//! Deterministic workload generation for benches and stress tests:
//! seeded random planted keys, digest tables and intervals, so every
//! bench run measures the same work.

use eks_hashes::HashAlgo;
use eks_keyspace::{Interval, Key, KeySpace};

/// A tiny deterministic generator (SplitMix64) — no external state, stable
/// across platforms, good enough for workload sampling.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0);
        (self.next_u64() as u128) % bound
    }
}

/// Plant `n` random keys in `space` and return `(keys, digests)`.
pub fn planted_targets(
    space: &KeySpace,
    algo: HashAlgo,
    n: usize,
    seed: u64,
) -> (Vec<Key>, Vec<Vec<u8>>) {
    let mut rng = Rng::new(seed);
    let mut keys = Vec::with_capacity(n);
    let mut digests = Vec::with_capacity(n);
    for _ in 0..n {
        let id = rng.below(space.size());
        let key = space.key_at(id);
        digests.push(algo.hash(key.as_bytes()));
        keys.push(key);
    }
    (keys, digests)
}

/// `n` random same-length sub-intervals of `space`, for scan benches.
pub fn random_intervals(space: &KeySpace, len: u128, n: usize, seed: u64) -> Vec<Interval> {
    let mut rng = Rng::new(seed);
    let span = space.size().saturating_sub(len).max(1);
    (0..n)
        .map(|_| Interval::new(rng.below(span), len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 5, Order::FirstCharFastest).unwrap()
    }

    #[test]
    fn same_seed_same_workload() {
        let s = space();
        let (k1, d1) = planted_targets(&s, HashAlgo::Md5, 10, 42);
        let (k2, d2) = planted_targets(&s, HashAlgo::Md5, 10, 42);
        assert_eq!(k1, k2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn different_seeds_differ() {
        let s = space();
        let (k1, _) = planted_targets(&s, HashAlgo::Md5, 10, 1);
        let (k2, _) = planted_targets(&s, HashAlgo::Md5, 10, 2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn planted_keys_are_members() {
        let s = space();
        let (keys, digests) = planted_targets(&s, HashAlgo::Sha1, 20, 7);
        for (k, d) in keys.iter().zip(&digests) {
            assert!(s.id_of(k).is_some());
            assert_eq!(&HashAlgo::Sha1.hash(k.as_bytes()), d);
        }
    }

    #[test]
    fn intervals_fit_the_space() {
        let s = space();
        for iv in random_intervals(&s, 1000, 50, 9) {
            assert!(iv.end() <= s.size());
            assert_eq!(iv.len, 1000);
        }
    }
}
