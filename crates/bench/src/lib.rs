//! # eks-bench — regenerating every table of the paper
//!
//! Each `table*` bench target (plain `harness = false` binaries run by
//! `cargo bench`) prints one table of the paper with the published values
//! next to the values this reproduction measures. The `crit_*` targets
//! are Criterion micro-benchmarks for the real CPU components.
//!
//! Published numbers live here so the comparisons sit in one place.

/// Paper Table VIII — single-GPU throughput in MKey/s.
/// Columns: device pattern, then per row value (None = not published).
#[derive(Debug, Clone, Copy)]
pub struct Table8Row {
    /// Substring identifying the device in the catalog.
    pub device: &'static str,
    /// "theoretical" row.
    pub theoretical: f64,
    /// "our approach" row.
    pub ours: f64,
    /// BarsWF row (MD5 only; the paper has no BarsWF SHA-1 row).
    pub barswf: Option<f64>,
    /// Cryptohaze Multiforcer row.
    pub cryptohaze: f64,
}

/// Table VIII, MD5 block.
pub const TABLE8_MD5: [Table8Row; 5] = [
    Table8Row { device: "8600M", theoretical: 83.0, ours: 71.0, barswf: Some(71.0), cryptohaze: 49.4 },
    Table8Row { device: "8800", theoretical: 568.0, ours: 480.0, barswf: Some(490.0), cryptohaze: 316.0 },
    Table8Row { device: "540M", theoretical: 359.4, ours: 214.0, barswf: Some(205.0), cryptohaze: 146.0 },
    Table8Row { device: "550", theoretical: 962.7, ours: 654.0, barswf: Some(560.0), cryptohaze: 410.0 },
    Table8Row { device: "660", theoretical: 1851.0, ours: 1841.0, barswf: Some(1340.0), cryptohaze: 1280.0 },
];

/// Table VIII, SHA-1 block.
pub const TABLE8_SHA1: [Table8Row; 5] = [
    Table8Row { device: "8600M", theoretical: 25.0, ours: 22.0, barswf: None, cryptohaze: 20.8 },
    Table8Row { device: "8800", theoretical: 170.0, ours: 137.0, barswf: None, cryptohaze: 132.0 },
    Table8Row { device: "540M", theoretical: 128.0, ours: 92.0, barswf: None, cryptohaze: 68.0 },
    Table8Row { device: "550", theoretical: 345.0, ours: 310.0, barswf: None, cryptohaze: 185.0 },
    Table8Row { device: "660", theoretical: 390.0, ours: 390.0, barswf: None, cryptohaze: 377.0 },
];

/// Paper Table IX — whole-network throughput.
#[derive(Debug, Clone, Copy)]
pub struct Table9Row {
    /// Hash name.
    pub algo: &'static str,
    /// Theoretical sum, MKey/s.
    pub theoretical: f64,
    /// Achieved, MKey/s.
    pub achieved: f64,
    /// Published efficiency.
    pub efficiency: f64,
}

/// Table IX as published.
pub const TABLE9: [Table9Row; 2] = [
    Table9Row { algo: "MD5", theoretical: 3824.1, achieved: 3258.4, efficiency: 0.852 },
    Table9Row { algo: "SHA1", theoretical: 1058.0, achieved: 950.1, efficiency: 0.898 },
];

pub mod harness;
pub mod workload;

/// Print a table header line.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a paper-vs-ours pair with the relative delta.
pub fn compare(paper: f64, ours: f64) -> String {
    let delta = if paper != 0.0 { (ours - paper) / paper * 100.0 } else { 0.0 };
    format!("{paper:>9.1} | {ours:>9.1}  ({delta:>+6.1}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_tables_have_five_devices() {
        assert_eq!(TABLE8_MD5.len(), 5);
        assert_eq!(TABLE8_SHA1.len(), 5);
    }

    #[test]
    fn table9_efficiency_consistent() {
        for row in TABLE9 {
            let eff = row.achieved / row.theoretical;
            assert!((eff - row.efficiency).abs() < 0.01, "{}", row.algo);
        }
    }

    #[test]
    fn compare_formats_delta() {
        let s = compare(100.0, 90.0);
        assert!(s.contains("-10.0%"), "{s}");
    }
}
