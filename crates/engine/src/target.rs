//! Hash targets: what the test function `C` compares against.
//!
//! Supports the paper's auditing scenario: one or many digests, optionally
//! *salted* (Section I: salting defeats lookup/rainbow tables but "does
//! not increment the search space since the random part of the string ...
//! is known by definition" — the salt is simply concatenated before
//! hashing).

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_hashes::HashAlgo;
use eks_keyspace::Key;

/// A single hash target with optional salt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashTarget {
    algo: HashAlgo,
    digest: Vec<u8>,
    salt_prefix: Vec<u8>,
    salt_suffix: Vec<u8>,
}

impl HashTarget {
    /// An unsalted target.
    ///
    /// # Panics
    /// Panics when the digest length does not match the algorithm.
    pub fn new(algo: HashAlgo, digest: &[u8]) -> Self {
        assert_eq!(digest.len(), algo.digest_len(), "digest length mismatch");
        Self {
            algo,
            digest: digest.to_vec(),
            salt_prefix: Vec::new(),
            salt_suffix: Vec::new(),
        }
    }

    /// A salted target: the stored digest is `hash(prefix ‖ key ‖ suffix)`.
    pub fn salted(algo: HashAlgo, digest: &[u8], prefix: &[u8], suffix: &[u8]) -> Self {
        let mut t = Self::new(algo, digest);
        t.salt_prefix = prefix.to_vec();
        t.salt_suffix = suffix.to_vec();
        t
    }

    /// Build a target from a plaintext (for tests and examples).
    pub fn from_plaintext(algo: HashAlgo, plaintext: &[u8]) -> Self {
        Self::new(algo, &algo.hash_long(plaintext))
    }

    /// The algorithm.
    pub fn algo(&self) -> HashAlgo {
        self.algo
    }

    /// The stored digest.
    pub fn digest(&self) -> &[u8] {
        &self.digest
    }

    /// Whether a salt is attached.
    pub fn is_salted(&self) -> bool {
        !self.salt_prefix.is_empty() || !self.salt_suffix.is_empty()
    }

    /// The test function `C`: does this candidate produce the digest?
    pub fn matches(&self, key: &Key) -> bool {
        if self.is_salted() {
            let mut msg =
                Vec::with_capacity(self.salt_prefix.len() + key.len() + self.salt_suffix.len());
            msg.extend_from_slice(&self.salt_prefix);
            msg.extend_from_slice(key.as_bytes());
            msg.extend_from_slice(&self.salt_suffix);
            self.algo.hash_long(&msg) == self.digest
        } else {
            self.algo.hash(key.as_bytes()) == self.digest
        }
    }
}

/// Several targets of the same algorithm, tested together — the audit
/// scenario where one sweep cracks a whole password table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetSet {
    algo: HashAlgo,
    /// Sorted digests for binary search.
    digests: Vec<Vec<u8>>,
    /// Sorted per-target prefilter words for the lane-batched path: the
    /// first word a batched kernel produces per candidate (MD5/NTLM final
    /// `a` state, SHA-1 `a75`). The common miss is one `u32` compare per
    /// lane — the paper's "anticipate the checks as soon as each part is
    /// computed", generalized to many targets.
    lane_words: Vec<u32>,
}

impl TargetSet {
    /// Build from digests (all must match the algorithm's length).
    ///
    /// # Panics
    /// Panics on a digest of the wrong length.
    pub fn new(algo: HashAlgo, digests: &[Vec<u8>]) -> Self {
        for d in digests {
            assert_eq!(d.len(), algo.digest_len(), "digest length mismatch");
        }
        let mut digests = digests.to_vec();
        digests.sort();
        digests.dedup();
        let mut lane_words: Vec<u32> = digests.iter().map(|d| Self::lane_word(algo, d)).collect();
        lane_words.sort_unstable();
        lane_words.dedup();
        Self {
            algo,
            digests,
            lane_words,
        }
    }

    /// The prefilter word a digest implies: what the batched kernel's
    /// cheapest per-candidate output must equal for this digest to match.
    fn lane_word(algo: HashAlgo, digest: &[u8]) -> u32 {
        match algo {
            // Little-endian serialization: digest bytes 0..4 are the final
            // `a` state word, the first thing md5_lanes/md4_lanes yield.
            // Iterated MD5's final round is a plain MD5 compression, so
            // its digest carries the same lane word.
            HashAlgo::Md5 | HashAlgo::Ntlm | HashAlgo::Md5Iter { .. } => {
                u32::from_le_bytes(digest[0..4].try_into().expect("4 bytes"))
            }
            // SHA-1 cannot compare the digest directly 4 rounds early; the
            // partial search compares `a75 = rotr30(e_target - IV[4])`,
            // which is target-only and thus works across a whole set.
            HashAlgo::Sha1 => {
                let e = u32::from_be_bytes(digest[16..20].try_into().expect("4 bytes"));
                e.wrapping_sub(eks_hashes::sha1::IV[4]).rotate_right(30)
            }
        }
    }

    /// Number of distinct targets.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// True when there are no targets.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// The algorithm.
    pub fn algo(&self) -> HashAlgo {
        self.algo
    }

    /// Test a candidate; returns the index of the matched digest.
    pub fn matches(&self, key: &Key) -> Option<usize> {
        let h = self.algo.hash(key.as_bytes());
        self.digests.binary_search(&h).ok()
    }

    /// Lane prefilter: could a candidate whose cheapest kernel output is
    /// `w` match any target? False rejects are impossible; a rare true
    /// here (≈ `len·2⁻³²` per candidate) is confirmed via
    /// [`TargetSet::match_digest`].
    #[inline]
    pub fn prefilter_match(&self, w: u32) -> bool {
        // Tiny sets (the usual case) scan linearly — branch-predictable
        // and vectorizable; big audit sets fall back to binary search.
        if self.lane_words.len() <= 4 {
            self.lane_words.contains(&w)
        } else {
            self.lane_words.binary_search(&w).is_ok()
        }
    }

    /// Match an already-computed digest without rehashing; returns the
    /// index of the matched digest (same indices as [`TargetSet::matches`]).
    #[inline]
    pub fn match_digest(&self, digest: &[u8]) -> Option<usize> {
        self.digests
            .binary_search_by(|d| d.as_slice().cmp(digest))
            .ok()
    }

    /// The digest at `index` (as returned by [`TargetSet::matches`]).
    pub fn digest(&self, index: usize) -> &[u8] {
        &self.digests[index]
    }

    /// Iterate over the stored digests (sorted order).
    pub fn iter_digests(&self) -> impl Iterator<Item = &[u8]> {
        self.digests.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsalted_match() {
        let t = HashTarget::from_plaintext(HashAlgo::Md5, b"abc");
        assert!(t.matches(&Key::from_bytes(b"abc")));
        assert!(!t.matches(&Key::from_bytes(b"abd")));
        assert!(!t.is_salted());
    }

    #[test]
    fn salted_match() {
        let algo = HashAlgo::Sha1;
        let digest = algo.hash_long(b"PRE-hunter2-POST");
        let t = HashTarget::salted(algo, &digest, b"PRE-", b"-POST");
        assert!(t.is_salted());
        assert!(t.matches(&Key::from_bytes(b"hunter2")));
        assert!(!t.matches(&Key::from_bytes(b"hunter3")));
    }

    #[test]
    fn salting_changes_the_digest() {
        let plain = HashTarget::from_plaintext(HashAlgo::Md5, b"pw");
        let salted_digest = HashAlgo::Md5.hash_long(b"saltpw");
        assert_ne!(plain.digest(), &salted_digest[..]);
    }

    #[test]
    fn target_set_finds_members() {
        let algo = HashAlgo::Md5;
        let digests: Vec<Vec<u8>> = [&b"one"[..], b"two", b"three"]
            .iter()
            .map(|p| algo.hash_long(p))
            .collect();
        let set = TargetSet::new(algo, &digests);
        assert_eq!(set.len(), 3);
        assert!(set.matches(&Key::from_bytes(b"two")).is_some());
        assert!(set.matches(&Key::from_bytes(b"four")).is_none());
        let idx = set.matches(&Key::from_bytes(b"three")).unwrap();
        assert_eq!(set.digest(idx), &algo.hash_long(b"three")[..]);
    }

    #[test]
    fn target_set_dedups() {
        let algo = HashAlgo::Md5;
        let d = algo.hash_long(b"dup");
        let set = TargetSet::new(algo, &[d.clone(), d]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    #[should_panic]
    fn wrong_length_digest_rejected() {
        HashTarget::new(HashAlgo::Md5, &[0u8; 20]);
    }
}
