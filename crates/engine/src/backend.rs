//! The leaf executor abstraction: a [`Backend`] scans an interval and
//! reports the tuned throughput the dispatcher balances with.
//!
//! The paper tunes every device `j` to an achieved throughput `X_j` and
//! assigns it `N_j = N_max · X_j / X_max` candidates; the search step
//! then runs the same generate/test/poll loop on every device regardless
//! of what it is. `Backend` captures exactly that contract: `tuned_rate`
//! for the balancing step, `scan` for the search step.

use std::sync::atomic::AtomicBool;

use eks_hashes::HashAlgo;
use eks_keyspace::{Interval, Key, KeySpace};

use crate::target::TargetSet;

/// What ends a scan besides exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Stop the search at the first match (one preimage wanted).
    FirstHit,
    /// Test every candidate (the audit sweep).
    Exhaustive,
}

impl ScanMode {
    /// Map the historical `first_hit_only: bool` onto a mode.
    pub fn from_first_hit(first_hit_only: bool) -> Self {
        if first_hit_only {
            ScanMode::FirstHit
        } else {
            ScanMode::Exhaustive
        }
    }

    /// True under [`ScanMode::FirstHit`].
    pub fn first_hit_only(self) -> bool {
        self == ScanMode::FirstHit
    }
}

/// Result of scanning one interval on one backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// `(identifier, key, target index)` per hit, in identifier order.
    pub hits: Vec<(u128, Key, usize)>,
    /// Candidates actually tested.
    pub tested: u128,
    /// True when the scan stopped on the stop flag rather than exhaustion
    /// or a first-hit return.
    pub cancelled: bool,
}

impl ScanReport {
    /// An empty report (nothing scanned, nothing found).
    pub fn empty() -> Self {
        Self {
            hits: Vec::new(),
            tested: 0,
            cancelled: false,
        }
    }
}

/// A leaf executor: scalar CPU, lane-batched CPU, or a simulated GPU
/// kernel. Implementations must poll `stop` (through
/// [`crate::PollCursor`]) so a dispatcher can cancel in-flight work.
pub trait Backend: Sync {
    /// Short name for labels and reports (`scalar`, `lanes8`, `simgpu`).
    fn name(&self) -> String;

    /// Scan `interval` of `space` against `targets`. Under
    /// [`ScanMode::FirstHit`] the backend may return at its first match;
    /// it must stop at the next poll boundary once `stop` is raised.
    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport;

    /// Tuned throughput `X_j` in MKey/s for the paper's
    /// `N_j = N_max · X_j / X_max` balancing step.
    fn tuned_rate(&self, algo: HashAlgo) -> f64;

    /// The instruction set the backend's kernels for `algo` run on:
    /// `avx2`/`avx512`/`neon` for explicit-SIMD paths, `autovec` for
    /// compiler-vectorized lanes, `scalar` for the reference path.
    /// `None` when the notion does not apply (simulated GPU devices
    /// already carry their model in the backend name).
    fn isa(&self, algo: HashAlgo) -> Option<String> {
        let _ = algo;
        None
    }
}

/// The backend vocabulary the CLI and benches expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// One candidate at a time, heap-allocated digest per test.
    Scalar,
    /// 8 candidates in lockstep (one AVX2 register per state word).
    Lanes8,
    /// 16 candidates in lockstep.
    Lanes16,
    /// Explicit AVX2/AVX-512/NEON kernels behind runtime CPU-feature
    /// detection (widest available ISA unless the CLI forces one).
    Simd,
    /// Tune every CPU implementation per algorithm and run the winner.
    Auto,
    /// A simulated GPU device driving an `eks-kernels` kernel.
    SimGpu,
}

impl BackendKind {
    /// Every kind, in presentation order.
    pub const ALL: [BackendKind; 6] = [
        BackendKind::Scalar,
        BackendKind::Lanes8,
        BackendKind::Lanes16,
        BackendKind::Simd,
        BackendKind::Auto,
        BackendKind::SimGpu,
    ];

    /// Parse a CLI argument (`scalar`, `lanes8`, `lanes16`, `simd`,
    /// `auto`, `simgpu`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(BackendKind::Scalar),
            "lanes8" => Some(BackendKind::Lanes8),
            "lanes16" => Some(BackendKind::Lanes16),
            "simd" => Some(BackendKind::Simd),
            "auto" => Some(BackendKind::Auto),
            "simgpu" => Some(BackendKind::SimGpu),
            _ => None,
        }
    }

    /// Canonical name (round-trips through [`BackendKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Lanes8 => "lanes8",
            BackendKind::Lanes16 => "lanes16",
            BackendKind::Simd => "simd",
            BackendKind::Auto => "auto",
            BackendKind::SimGpu => "simgpu",
        }
    }

    /// True when the kind can run on this host: `simd` needs a detected
    /// ISA; everything else always works (`auto` falls back to the
    /// autovectorized lanes when no explicit kernel is available).
    pub fn is_available(self) -> bool {
        match self {
            BackendKind::Simd => eks_hashes::SimdIsa::detect().is_some(),
            _ => true,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips_through_bool() {
        assert_eq!(ScanMode::from_first_hit(true), ScanMode::FirstHit);
        assert_eq!(ScanMode::from_first_hit(false), ScanMode::Exhaustive);
        assert!(ScanMode::FirstHit.first_hit_only());
        assert!(!ScanMode::Exhaustive.first_hit_only());
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("cuda"), None);
    }

    #[test]
    fn availability_is_detection_for_simd_and_universal_otherwise() {
        for kind in BackendKind::ALL {
            match kind {
                BackendKind::Simd => assert_eq!(
                    kind.is_available(),
                    eks_hashes::SimdIsa::detect().is_some()
                ),
                _ => assert!(kind.is_available(), "{kind}"),
            }
        }
    }
}
