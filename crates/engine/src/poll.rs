//! The single chunk/poll/cancel loop.
//!
//! Every interval scan in the workspace — scalar, lane-batched, or
//! simulated-kernel — walks its interval through a [`PollCursor`]: take a
//! bounded chunk, check the shared stop flag, scan, repeat. One
//! implementation means one source of truth for cancellation latency and
//! no drifting copies of the take-front/poll arithmetic.

use std::sync::atomic::{AtomicBool, Ordering};

use eks_keyspace::Interval;

/// Candidates between stop-flag polls. Small enough for sub-millisecond
/// cancellation latency, large enough to amortize the atomic load.
pub const POLL_CHUNK: u128 = 4096;

/// The poll quantum of a backend with lane stride `stride`: the maximum
/// number of candidates one scan tests between two stop-flag checks,
/// i.e. the most it can overshoot a raised flag. This is the checked
/// cancellation-latency bound used by `tests/steal_scheduler.rs`.
pub fn poll_quantum(stride: u128) -> u128 {
    POLL_CHUNK.next_multiple_of(stride.max(1))
}

/// Walks an interval in poll-bounded chunks, checking a stop flag before
/// each one. A pre-raised flag cancels before anything is scanned.
#[derive(Debug)]
pub struct PollCursor<'a> {
    full: Interval,
    remaining: Interval,
    stop: &'a AtomicBool,
    chunk: u128,
    cancelled: bool,
}

impl<'a> PollCursor<'a> {
    /// A cursor over `interval` polling `stop` every [`POLL_CHUNK`]
    /// candidates. The caller clamps the interval to its space first.
    pub fn new(interval: Interval, stop: &'a AtomicBool) -> Self {
        Self::with_stride(interval, stop, 1)
    }

    /// Like [`PollCursor::new`] but rounding the chunk up to a multiple
    /// of `stride`, so lane-batched scanners never straddle a poll
    /// boundary mid-batch. A `stride` of 0 or 1 keeps the plain chunk.
    pub fn with_stride(interval: Interval, stop: &'a AtomicBool, stride: u128) -> Self {
        let chunk = poll_quantum(stride);
        Self {
            full: interval,
            remaining: interval,
            stop,
            chunk,
            cancelled: false,
        }
    }

    /// The next chunk to scan, or `None` when the interval is exhausted
    /// or the stop flag was observed (check [`PollCursor::cancelled`]).
    pub fn next_chunk(&mut self) -> Option<Interval> {
        if self.remaining.is_empty() || self.cancelled {
            return None;
        }
        if self.stop.load(Ordering::Relaxed) {
            self.cancelled = true;
            return None;
        }
        Some(self.remaining.take_front(self.chunk))
    }

    /// True when the cursor stopped on the flag rather than exhaustion.
    pub fn cancelled(&self) -> bool {
        self.cancelled
    }

    /// Candidates per chunk (poll granularity after stride rounding).
    pub fn chunk_len(&self) -> u128 {
        self.chunk
    }

    /// The part of the interval not yet handed out.
    pub fn remaining(&self) -> Interval {
        self.remaining
    }

    /// The prefix already handed out as chunks. Consumption is strictly
    /// front-to-back, so `consumed()` and [`PollCursor::remaining`]
    /// partition the original interval exactly — this is what a
    /// checkpoint records to make consumed-vs-outstanding work
    /// reconstructible after a restart.
    pub fn consumed(&self) -> Interval {
        Interval::new(self.full.start, self.full.len - self.remaining.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_the_whole_interval_in_poll_chunks() {
        let stop = AtomicBool::new(false);
        let mut cursor = PollCursor::new(Interval::new(10, 10_000), &stop);
        let mut covered = 0u128;
        let mut next_start = 10u128;
        while let Some(chunk) = cursor.next_chunk() {
            assert_eq!(chunk.start, next_start, "chunks are contiguous");
            assert!(chunk.len <= POLL_CHUNK);
            next_start = chunk.end();
            covered += chunk.len;
        }
        assert_eq!(covered, 10_000);
        assert!(!cursor.cancelled());
        assert_eq!(cursor.consumed(), Interval::new(10, 10_000));
        assert!(cursor.remaining().is_empty());
    }

    #[test]
    fn consumed_and_remaining_partition_the_interval() {
        let stop = AtomicBool::new(false);
        let full = Interval::new(100, 100_000);
        let mut cursor = PollCursor::new(full, &stop);
        assert!(cursor.consumed().is_empty());
        cursor.next_chunk();
        cursor.next_chunk();
        let consumed = cursor.consumed();
        let remaining = cursor.remaining();
        assert_eq!(consumed.start, full.start);
        assert_eq!(consumed.end(), remaining.start, "contiguous partition");
        assert_eq!(consumed.len + remaining.len, full.len);
    }

    #[test]
    fn pre_raised_stop_yields_nothing() {
        let stop = AtomicBool::new(true);
        let mut cursor = PollCursor::new(Interval::new(0, 100), &stop);
        assert!(cursor.next_chunk().is_none());
        assert!(cursor.cancelled());
    }

    #[test]
    fn stop_raised_mid_walk_cancels_at_the_next_poll() {
        let stop = AtomicBool::new(false);
        let mut cursor = PollCursor::new(Interval::new(0, 100_000), &stop);
        assert!(cursor.next_chunk().is_some());
        stop.store(true, Ordering::Relaxed);
        assert!(cursor.next_chunk().is_none());
        assert!(cursor.cancelled());
        // Exactly one chunk was handed out before the flag was seen.
        assert_eq!(cursor.remaining().len, 100_000 - POLL_CHUNK);
    }

    #[test]
    fn stride_rounds_the_chunk_up() {
        let stop = AtomicBool::new(false);
        for stride in [1u128, 8, 16, 100] {
            let cursor = PollCursor::with_stride(Interval::new(0, 1), &stop, stride);
            assert_eq!(cursor.chunk_len() % stride, 0, "stride {stride}");
            assert!(cursor.chunk_len() >= POLL_CHUNK);
        }
        // Stride 0 behaves like 1 rather than dividing by zero.
        let cursor = PollCursor::with_stride(Interval::new(0, 1), &stop, 0);
        assert_eq!(cursor.chunk_len(), POLL_CHUNK);
    }

    #[test]
    fn poll_quantum_matches_the_cursor_chunk() {
        let stop = AtomicBool::new(false);
        for stride in [0u128, 1, 8, 16, 100] {
            let cursor = PollCursor::with_stride(Interval::new(0, 1), &stop, stride);
            assert_eq!(cursor.chunk_len(), poll_quantum(stride), "stride {stride}");
        }
    }

    #[test]
    fn empty_interval_is_exhausted_not_cancelled() {
        let stop = AtomicBool::new(true);
        let mut cursor = PollCursor::new(Interval::new(5, 0), &stop);
        assert!(cursor.next_chunk().is_none());
        assert!(!cursor.cancelled(), "nothing to cancel");
    }
}
