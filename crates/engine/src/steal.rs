//! Adaptive work distribution: per-worker interval deques, steal-half
//! rebalancing, and guided chunk sizing.
//!
//! The paper's scatter step (Section III) hands every worker a contiguous
//! interval sized by its tuned rate (`N_j = N_max · X_j / X_max`), so the
//! common case touches no shared state at all. The tuning step is an
//! estimate, though: when a worker drains its share early — a mis-tuned
//! rate, a heterogeneous neighbour, a first-hit race — it *steals* the
//! back half of the largest remaining remote interval instead of idling
//! until the gather. Three pieces implement that here:
//!
//! * [`IntervalDeques`] — one interval slot per worker. The owner pops
//!   chunks off the front (oldest identifiers first, so per-owner
//!   coverage stays a contiguous prefix); a thief splits the *back* half
//!   off the largest remote slot. Both ends are guarded by one mutex per
//!   slot, held for O(1) arithmetic, never across a scan; at most one
//!   lock is held at a time, so the scheme cannot deadlock.
//! * [`ChunkPolicy`] — how much an owner pops at once. `Fixed` is the
//!   classic shared-queue granularity; `Guided` starts at
//!   `remaining / 8` and shrinks toward the tail, so early chunks
//!   amortize dispatch overhead while late chunks leave work for
//!   thieves and keep the makespan tail short.
//! * [`SchedPolicy`] — the CLI-facing knob (`--sched static|queue|steal`)
//!   naming the three dispatcher modes built from the two pieces above.
//!
//! Exactly-once coverage is structural: the slots start as a partition of
//! the search interval, `pop` and the steal split only ever *move*
//! identifier ranges between disjoint owners, and nothing is ever copied
//! or re-inserted — properties the seeded interleaving tests pin down.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use eks_keyspace::Interval;

/// Denominator of the guided self-scheduling rule: each pop takes
/// `remaining / GUIDED_DIVISOR` keys (clamped below by the policy's
/// floor), the classic "start large, shrink toward the tail" schedule.
pub const GUIDED_DIVISOR: u128 = 8;

/// How an owner sizes the chunk it pops from its own deque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Every pop takes the same number of keys (at least one).
    Fixed(u128),
    /// Guided self-scheduling: pop `remaining / 8`, never less than
    /// `min` (and never less than one key).
    Guided {
        /// Smallest chunk the schedule decays to.
        min: u128,
    },
    /// Rate-aware sizing: pop however many keys the worker's live rate
    /// estimate says fit in `target_ms` milliseconds, never less than
    /// `min`. With no rate available (cold estimator, contexts without
    /// a [`crate::rate::RateBook`]) it degrades to the guided rule, so
    /// [`ChunkPolicy::next_len`] stays total.
    Timed {
        /// Wall-clock budget one chunk should take, in milliseconds.
        target_ms: u64,
        /// Smallest chunk the schedule decays to.
        min: u128,
    },
}

impl ChunkPolicy {
    /// Keys the next pop should take from a deque holding `remaining`
    /// keys, without rate information. Positive whenever `remaining`
    /// is, zero when the deque is already empty, and never more than
    /// `remaining` — so a pop can always be satisfied exactly.
    pub fn next_len(&self, remaining: u128) -> u128 {
        if remaining == 0 {
            return 0;
        }
        let n = match *self {
            ChunkPolicy::Fixed(n) => n.max(1),
            ChunkPolicy::Guided { min } | ChunkPolicy::Timed { min, .. } => {
                (remaining / GUIDED_DIVISOR).max(min).max(1)
            }
        };
        n.min(remaining)
    }

    /// Keys the next pop should take given a live rate estimate in keys
    /// per second. [`ChunkPolicy::Timed`] converts the rate into a
    /// time-budgeted size; the other policies ignore the rate. A
    /// non-finite or non-positive rate falls back to [`Self::next_len`].
    pub fn next_len_rated(&self, remaining: u128, keys_per_sec: f64) -> u128 {
        match *self {
            ChunkPolicy::Timed { target_ms, min } if keys_per_sec.is_finite() && keys_per_sec > 0.0 => {
                if remaining == 0 {
                    return 0;
                }
                let budget = (keys_per_sec * target_ms as f64 / 1e3).floor();
                let n = if budget >= remaining as f64 { remaining } else { budget as u128 };
                n.max(min).max(1).min(remaining)
            }
            _ => self.next_len(remaining),
        }
    }
}

/// The dispatcher's scheduling mode, as named on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Pure scatter: every worker scans exactly its pre-assigned
    /// interval; no stealing. Accounting equals the split shares.
    Static,
    /// Fixed-size chunks with stealing — the load-balancing profile of
    /// the old shared-cursor queue, without the shared cursor.
    Queue,
    /// Guided chunks with stealing: the adaptive default.
    Steal,
}

impl SchedPolicy {
    /// Every policy, in CLI vocabulary order.
    pub const ALL: [SchedPolicy; 3] =
        [SchedPolicy::Static, SchedPolicy::Queue, SchedPolicy::Steal];

    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "static" => Some(SchedPolicy::Static),
            "queue" => Some(SchedPolicy::Queue),
            "steal" => Some(SchedPolicy::Steal),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Static => "static",
            SchedPolicy::Queue => "queue",
            SchedPolicy::Steal => "steal",
        }
    }

    /// Whether idle workers steal under this policy.
    pub fn steals(&self) -> bool {
        !matches!(self, SchedPolicy::Static)
    }

    /// The chunk policy this mode pairs with, given the caller's chunk
    /// knob (the fixed size for [`SchedPolicy::Queue`], the guided floor
    /// otherwise).
    pub fn chunk_policy(&self, chunk: u128) -> ChunkPolicy {
        match self {
            SchedPolicy::Queue => ChunkPolicy::Fixed(chunk),
            _ => ChunkPolicy::Guided { min: chunk },
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The steal-half split, as pure interval arithmetic: the victim keeps
/// the front half (it scans lowest identifiers first), the thief takes
/// the back half — never less than one key when the victim is nonempty.
/// Returns `(keep, stolen)` with `keep.end() == stolen.start` and
/// `keep.len + stolen.len == victim.len`.
///
/// This is the one definition of the split both the live
/// [`IntervalDeques::steal_into`] path and the `eks-verify` model
/// checker share, so the verified transition relation cannot drift from
/// the shipped arithmetic.
pub fn steal_split(victim: Interval) -> (Interval, Interval) {
    let keep = victim.len / 2;
    (
        Interval { start: victim.start, len: keep },
        Interval { start: victim.start + keep, len: victim.len - keep },
    )
}

/// Why a scatter could not be performed. The CLI and job layers render
/// these directly, so the messages name the failing weight instead of
/// panicking deep inside the split arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum ScatterError {
    /// The weight list was empty: no workers to scatter over.
    NoWorkers,
    /// A weight was NaN, infinite, or negative.
    BadWeight {
        /// Index of the offending weight.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Every weight was zero: no worker claims any throughput, so a
    /// proportional split is undefined.
    ZeroTotal,
}

impl std::fmt::Display for ScatterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScatterError::NoWorkers => write!(f, "cannot scatter: no worker weights given"),
            ScatterError::BadWeight { index, value } => write!(
                f,
                "cannot scatter: weight #{index} is {value} (weights must be finite and >= 0)"
            ),
            ScatterError::ZeroTotal => {
                write!(f, "cannot scatter: all worker weights are zero (no tuned rates?)")
            }
        }
    }
}

impl std::error::Error for ScatterError {}

/// Validate scatter weights, naming the first offender.
fn check_weights(weights: &[f64]) -> Result<(), ScatterError> {
    if weights.is_empty() {
        return Err(ScatterError::NoWorkers);
    }
    for (index, &value) in weights.iter().enumerate() {
        if !value.is_finite() || value < 0.0 {
            return Err(ScatterError::BadWeight { index, value });
        }
    }
    if weights.iter().sum::<f64>() <= 0.0 {
        return Err(ScatterError::ZeroTotal);
    }
    Ok(())
}

/// The re-scatter arithmetic, as a pure function shared with the
/// `eks-verify` model checker (like [`steal_split`] and
/// [`ChunkPolicy::next_len`], so the verified transition relation
/// cannot drift from the shipped code).
///
/// `remainders[i]` is what slot `i` still holds; `weights[i]` is slot
/// `i`'s live rate (zero for retired or excluded slots). The plan cuts
/// the held ranges into one contiguous piece per slot, sized so each
/// slot's share is proportional to its weight — the closed-loop version
/// of the paper's `N_j = N_max · X_j / X_max` scatter. Because a slot
/// holds a *single* contiguous range, pieces never bridge the gaps
/// between remainders; the plan only ever cuts and reassigns the ranges
/// it was given, so the output tiles exactly the same identifiers as
/// the input (exactly-once is preserved by construction).
///
/// Returns `None` when there is nothing to move: no work, no positive
/// weight, or a plan identical to the current layout.
pub fn rescatter_plan(remainders: &[Interval], weights: &[f64]) -> Option<Vec<Interval>> {
    if remainders.len() != weights.len() || remainders.is_empty() {
        return None;
    }
    let total: u128 = remainders.iter().map(|r| r.len).sum();
    if total == 0 {
        return None;
    }
    let active: Vec<usize> = (0..weights.len())
        .filter(|&i| weights.get(i).copied().unwrap_or(0.0).is_finite() && weights[i] > 0.0)
        .collect();
    if active.is_empty() {
        return None;
    }
    // A zero-weight slot takes no *new* work, but keeps what it holds:
    // only the owner may drain its slot, so moving a passive slot's
    // range is not this function's call. Redistribute only the work the
    // active slots hold.
    let mut plan = vec![Interval::new(0, 0); remainders.len()];
    for i in 0..remainders.len() {
        if !active.contains(&i) {
            plan[i] = remainders[i];
        }
    }
    let movable: u128 = active.iter().map(|&i| remainders[i].len).sum();
    if movable == 0 {
        return None;
    }
    // Target share per active slot: the weighted split of the movable
    // count (using the same residue rules as the scatter step).
    let shares = Interval::new(0, movable).split_weighted(
        &active.iter().map(|&i| weights[i]).collect::<Vec<f64>>(),
    );
    // Largest targets first so the big shares get first pick of the big
    // ranges (LPT); ties broken by slot index for determinism.
    let mut order: Vec<(usize, u128)> =
        active.iter().copied().zip(shares.iter().map(|s| s.len)).collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    // The ranges to hand out: what the active slots currently hold.
    let mut ranges: Vec<Interval> =
        active.iter().map(|&i| remainders[i]).filter(|r| !r.is_empty()).collect();
    let mut slots_left = order.len();
    for (slot, target) in order {
        // Invariant: ranges.len() <= slots_left (slots hold at most one
        // range each, and a cut only splits a range when there is slack).
        ranges.sort_by(|a, b| b.len.cmp(&a.len).then(a.start.cmp(&b.start)));
        let range_count = ranges.len();
        if let Some(biggest) = ranges.first_mut() {
            let take = if range_count >= slots_left {
                // No slack: every remaining slot must absorb a whole
                // range or some range would be orphaned.
                biggest.len
            } else {
                target.min(biggest.len)
            };
            plan[slot] = biggest.take_front(take);
            if biggest.is_empty() {
                ranges.remove(0);
            }
        }
        slots_left -= 1;
    }
    debug_assert!(ranges.is_empty(), "every range must be assigned");
    if plan == remainders {
        return None;
    }
    Some(plan)
}

/// Per-worker scheduler accounting, gathered alongside the tested
/// counts: how often this worker stole, how often it was stolen from,
/// and where its wall-clock went. `idle_ns` is time spent looking for
/// work (successful or not); `busy_ns` is time inside scans. The bench
/// derives measured parallel efficiency from `busy / (busy + idle)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Display label, registration order.
    pub label: String,
    /// Candidates tested by this worker.
    pub tested: u128,
    /// Successful steals this worker performed.
    pub steals: u64,
    /// Times this worker's deque was split by a thief.
    pub splits: u64,
    /// Nanoseconds spent out of work (steal attempts included).
    pub idle_ns: u64,
    /// Nanoseconds spent scanning.
    pub busy_ns: u64,
}

impl WorkerStats {
    /// Fresh zeroed stats for a labelled worker.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), tested: 0, steals: 0, splits: 0, idle_ns: 0, busy_ns: 0 }
    }

    /// Busy share of accounted wall time, in percent. A run too short
    /// for either clock to tick reports 0 — never NaN.
    pub fn utilization_pct(&self) -> f64 {
        let total = self.busy_ns.saturating_add(self.idle_ns);
        if total == 0 {
            0.0
        } else {
            100.0 * self.busy_ns as f64 / total as f64
        }
    }

    /// Tested keys per busy second. A zero-duration run (a hit in the
    /// first chunk before the clock ticks) reports 0 — never NaN or
    /// infinite.
    pub fn keys_per_sec(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.tested as f64 / (self.busy_ns as f64 / 1e9)
        }
    }
}

/// One interval deque per worker: the scatter step's partition, made
/// stealable. See the module docs for the locking and exactly-once
/// arguments.
#[derive(Debug)]
pub struct IntervalDeques {
    slots: Vec<Mutex<Interval>>,
    splits: Vec<AtomicU64>,
    /// Owner has exited its run loop with the slot drained; a
    /// re-scatter must never assign work here (no one would scan it).
    /// Only flipped while holding the slot's own lock, so a rescatter
    /// holding every lock reads a consistent value.
    retired: Vec<AtomicBool>,
}

impl IntervalDeques {
    /// Deques over pre-split parts (the cluster planners' scatter: parts
    /// were already sized by tuned rates, slot `i` belongs to leaf `i`).
    pub fn assign(parts: Vec<Interval>) -> Self {
        assert!(!parts.is_empty(), "need at least one deque");
        let splits = parts.iter().map(|_| AtomicU64::new(0)).collect();
        let retired = parts.iter().map(|_| AtomicBool::new(false)).collect();
        Self { slots: parts.into_iter().map(Mutex::new).collect(), splits, retired }
    }

    /// Scatter `interval` into one contiguous slot per weight,
    /// proportionally to `weights` (the paper's `N_j = N_max·X_j/X_max`
    /// step; equal weights give an even split).
    ///
    /// # Panics
    /// Panics with a named-weight message when a weight is NaN,
    /// infinite, or negative, or when `weights` is empty. All-zero
    /// weights fall back to an even split (legacy behaviour; use
    /// [`IntervalDeques::try_scatter`] to surface that case instead).
    pub fn scatter(interval: Interval, weights: &[f64]) -> Self {
        match Self::try_scatter(interval, weights) {
            Ok(d) => d,
            Err(ScatterError::ZeroTotal) => {
                Self::assign(interval.split_even(weights.len()))
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Scatter `interval` proportionally to `weights`, reporting
    /// degenerate weights ([`ScatterError`]) instead of panicking or
    /// silently splitting evenly.
    pub fn try_scatter(interval: Interval, weights: &[f64]) -> Result<Self, ScatterError> {
        check_weights(weights)?;
        Ok(Self::assign(interval.split_weighted(weights)))
    }

    /// Number of deques (== workers).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no deques at all (never: `assign` rejects it).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Keys currently left in `slot`'s deque.
    pub fn remaining(&self, slot: usize) -> u128 {
        self.slots[slot].lock().expect("deque slot").len
    }

    /// Times `slot`'s deque has been split by thieves so far.
    pub fn splits(&self, slot: usize) -> u64 {
        self.splits[slot].load(Ordering::Relaxed)
    }

    /// Pop the next chunk off the front of `slot`'s own deque, sized by
    /// `policy`. `None` when the deque is empty (time to steal).
    pub fn pop(&self, slot: usize, policy: ChunkPolicy) -> Option<Interval> {
        let mut own = self.slots[slot].lock().expect("deque slot");
        if own.is_empty() {
            return None;
        }
        let n = policy.next_len(own.len);
        Some(own.take_front(n))
    }

    /// [`IntervalDeques::pop`] with a live rate estimate (keys per
    /// second) for the [`ChunkPolicy::Timed`] sizing rule; other
    /// policies ignore the rate.
    pub fn pop_rated(&self, slot: usize, policy: ChunkPolicy, keys_per_sec: f64) -> Option<Interval> {
        let mut own = self.slots[slot].lock().expect("deque slot");
        if own.is_empty() {
            return None;
        }
        let n = policy.next_len_rated(own.len, keys_per_sec);
        Some(own.take_front(n))
    }

    /// Keys left across every deque (taken one lock at a time — exact
    /// only when quiescent, but "zero" is stable: pops and steals only
    /// remove or move work, so once the total hits zero it stays there).
    pub fn total_remaining(&self) -> u128 {
        self.slots.iter().map(|s| s.lock().expect("deque slot").len).sum()
    }

    /// Mark `slot` retired if (and only if) it is empty: its owner is
    /// exiting and no re-scatter may assign it work again. Returns false
    /// when the slot holds work — a concurrent re-scatter refilled it —
    /// in which case the owner must keep scanning instead of exiting.
    pub fn retire_if_empty(&self, slot: usize) -> bool {
        let own = self.slots[slot].lock().expect("deque slot");
        if !own.is_empty() {
            return false;
        }
        self.retired[slot].store(true, Ordering::Relaxed);
        true
    }

    /// Whether `slot` has been retired by its owner.
    pub fn is_retired(&self, slot: usize) -> bool {
        self.retired[slot].load(Ordering::Relaxed)
    }

    /// Pick the remote slot with the most work left, skipping `thief`'s
    /// own slot *by index* before any lock is taken (a self-steal would
    /// be a no-op lock round-trip: the thief only steals when its own
    /// deque is already drained).
    ///
    /// ## The benign stale-snapshot race
    ///
    /// Locks are taken one slot at a time, so the lengths observed here
    /// are **not** a consistent snapshot: by the time the thief locks
    /// its chosen victim, an owner may have popped the slot down (or
    /// empty), and some *other* slot may now be larger. That is safe —
    /// and deliberately cheap — for two reasons:
    ///
    /// * **Safety** never depends on the choice: the split in
    ///   [`IntervalDeques::steal_into`] re-checks the victim *under its
    ///   lock* and rescans if it was drained in the meantime, so work is
    ///   only ever moved, never invented or lost.
    /// * **Quality** of the choice only affects load balance: stealing
    ///   from a stale "largest" victim costs at most one extra future
    ///   steal. The `eks-verify` model makes exactly this
    ///   nondeterminism explicit — its `Steal` transition allows *any*
    ///   nonempty remote victim, so every outcome the race can produce
    ///   is inside the verified state space.
    fn largest_remote(&self, thief: usize) -> Option<usize> {
        let mut best: Option<(usize, u128)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if i == thief {
                continue;
            }
            let len = slot.lock().expect("deque slot").len;
            if len > 0 && best.is_none_or(|(_, l)| len > l) {
                best = Some((i, len));
            }
        }
        best.map(|(i, _)| i)
    }

    /// The current per-slot intervals, in slot order (empty slots
    /// included, so indices line up with leaves). Taken one lock at a
    /// time: only meaningful as a *checkpoint* when the owning round is
    /// quiescent — between rounds, or after `run_deques` returned —
    /// where it is exact. [`IntervalDeques::assign`] restores it.
    pub fn snapshot(&self) -> Vec<Interval> {
        self.slots.iter().map(|s| *s.lock().expect("deque slot")).collect()
    }

    /// Steal-half: split the back half of the largest remote deque into
    /// `thief`'s (empty) slot. Returns the victim's slot index, or
    /// `None` when every remote deque is empty — the queue is drained
    /// (up to chunks already being scanned) and the thief should exit.
    ///
    /// Only valid in runs without re-scattering (benches, tests, the
    /// model replay): with a live re-scatter the thief's slot may have
    /// been refilled mid-steal, which [`IntervalDeques::try_steal`]
    /// resolves by handing the stolen half back to the caller.
    ///
    /// Victim selection ([`Self::largest_remote`]) reads slot lengths
    /// without a consistent snapshot; see its docs for why that race is
    /// benign and how the model checker covers it.
    pub fn steal_into(&self, thief: usize) -> Option<usize> {
        match self.try_steal(thief) {
            StealOutcome::Stolen { victim } => Some(victim),
            StealOutcome::Drained => None,
            StealOutcome::Handoff { .. } => {
                unreachable!("steal_into is only used in runs without re-scattering")
            }
        }
    }

    /// Steal-half with the re-scatter conflict resolved: when the
    /// thief's own slot was refilled between its drained pop and the
    /// install (a concurrent [`IntervalDeques::rescatter`] targeting the
    /// then-empty slot), the stolen back half cannot be installed — a
    /// slot holds one contiguous range — so it is handed back to the
    /// caller to scan directly. Either way the range only *moved*
    /// (victim → slot, or victim → in-flight chunk), so exactly-once
    /// coverage is preserved.
    pub fn try_steal(&self, thief: usize) -> StealOutcome {
        loop {
            let Some(victim) = self.largest_remote(thief) else {
                return StealOutcome::Drained;
            };
            let stolen = {
                let mut v = self.slots[victim].lock().expect("deque slot");
                if v.is_empty() {
                    continue; // raced with the owner; look again
                }
                let (keep, stolen) = steal_split(*v);
                *v = keep;
                stolen
            };
            self.splits[victim].fetch_add(1, Ordering::Relaxed);
            let mut own = self.slots[thief].lock().expect("deque slot");
            if own.is_empty() {
                *own = stolen;
                return StealOutcome::Stolen { victim };
            }
            return StealOutcome::Handoff { victim, chunk: stolen };
        }
    }

    /// Rebalance the queued remainders to `weights` (live rates; zero
    /// for slots that must not receive work). Takes every slot lock in
    /// index order — safe against the rest of the protocol, which never
    /// holds more than one slot lock at a time — computes the pure
    /// [`rescatter_plan`], and installs it. Retired slots are forced to
    /// weight zero regardless of the caller's value, so work is never
    /// assigned to a slot whose owner already exited.
    ///
    /// In-flight chunks are untouched: like a steal, a re-scatter only
    /// moves *queued* identifiers between slots, so the exactly-once
    /// argument (ranges move, nothing is copied or re-inserted) is
    /// unchanged. Returns true when the layout changed.
    pub fn rescatter(&self, weights: &[f64]) -> bool {
        assert_eq!(weights.len(), self.slots.len(), "one weight per slot");
        let mut guards: Vec<std::sync::MutexGuard<'_, Interval>> =
            self.slots.iter().map(|s| s.lock().expect("deque slot")).collect();
        let remainders: Vec<Interval> = guards.iter().map(|g| **g).collect();
        let masked: Vec<f64> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| if self.retired[i].load(Ordering::Relaxed) { 0.0 } else { w })
            .collect();
        let Some(plan) = rescatter_plan(&remainders, &masked) else {
            return false;
        };
        for (guard, part) in guards.iter_mut().zip(plan) {
            **guard = part;
        }
        true
    }
}

/// What a [`IntervalDeques::try_steal`] attempt produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealOutcome {
    /// The back half of `victim`'s deque is now in the thief's slot.
    Stolen {
        /// The slot that was split.
        victim: usize,
    },
    /// The thief's slot was refilled mid-steal (concurrent re-scatter);
    /// the stolen half is handed back for the caller to scan directly.
    Handoff {
        /// The slot that was split.
        victim: usize,
        /// The back half that could not be installed.
        chunk: Interval,
    },
    /// Every remote deque is empty; nothing left to steal.
    Drained,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_partitions_contiguously_and_proportionally() {
        let d = IntervalDeques::scatter(Interval::new(100, 1000), &[3.0, 1.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.remaining(0), 750);
        assert_eq!(d.remaining(1), 250);
        // Contiguous: slot 1 starts where slot 0 ends.
        let p0 = d.pop(0, ChunkPolicy::Fixed(750)).unwrap();
        let p1 = d.pop(1, ChunkPolicy::Fixed(250)).unwrap();
        assert_eq!(p0.end(), p1.start);
        assert_eq!(p1.end(), 1100);
    }

    #[test]
    fn guided_chunks_start_large_and_shrink_to_the_floor() {
        let d = IntervalDeques::assign(vec![Interval::new(0, 80_000)]);
        let policy = ChunkPolicy::Guided { min: 1000 };
        let mut sizes = Vec::new();
        while let Some(chunk) = d.pop(0, policy) {
            sizes.push(chunk.len);
        }
        assert_eq!(sizes[0], 10_000, "first pop takes remaining/8");
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "monotone shrink {sizes:?}");
        assert!(sizes.iter().all(|&s| s >= 1), "every pop is nonempty");
        assert!(sizes.iter().rev().skip(1).all(|&s| s >= 1000), "floor respected");
        assert_eq!(sizes.iter().sum::<u128>(), 80_000, "pops cover the deque exactly");
    }

    #[test]
    fn fixed_chunks_pop_from_the_front_in_order() {
        let d = IntervalDeques::assign(vec![Interval::new(10, 100)]);
        let a = d.pop(0, ChunkPolicy::Fixed(64)).unwrap();
        let b = d.pop(0, ChunkPolicy::Fixed(64)).unwrap();
        assert_eq!(a, Interval::new(10, 64));
        assert_eq!(b, Interval::new(74, 36), "tail pop is clipped");
        assert!(d.pop(0, ChunkPolicy::Fixed(64)).is_none());
    }

    #[test]
    fn steal_takes_the_back_half_of_the_largest_remote() {
        let d = IntervalDeques::assign(vec![
            Interval::new(0, 10),
            Interval::new(10, 1000),
            Interval::new(1010, 0),
        ]);
        let victim = d.steal_into(2).expect("work to steal");
        assert_eq!(victim, 1, "largest deque is the victim");
        assert_eq!(d.remaining(1), 500, "victim keeps the front half");
        assert_eq!(d.remaining(2), 500, "thief holds the back half");
        let stolen = d.pop(2, ChunkPolicy::Fixed(500)).unwrap();
        assert_eq!(stolen, Interval::new(510, 500));
        assert_eq!(d.splits(1), 1);
        assert_eq!(d.splits(2), 0);
    }

    #[test]
    fn steal_of_a_single_key_takes_the_whole_thing() {
        let d = IntervalDeques::assign(vec![Interval::new(5, 1), Interval::new(6, 0)]);
        assert_eq!(d.steal_into(1), Some(0));
        assert_eq!(d.remaining(0), 0);
        assert_eq!(d.remaining(1), 1);
    }

    #[test]
    fn steal_returns_none_when_everything_is_drained() {
        let d = IntervalDeques::assign(vec![Interval::new(0, 4), Interval::new(4, 0)]);
        while d.pop(0, ChunkPolicy::Fixed(2)).is_some() {}
        assert!(d.steal_into(1).is_none());
        assert_eq!(d.splits(0), 0);
    }

    #[test]
    fn steal_split_is_a_partition_with_a_nonempty_back_half() {
        for len in 1u128..=9 {
            let v = Interval::new(100, len);
            let (keep, stolen) = steal_split(v);
            assert_eq!(keep.start, v.start);
            assert_eq!(keep.end(), stolen.start, "halves are adjacent");
            assert_eq!(keep.len + stolen.len, v.len, "nothing lost or doubled");
            assert!(!stolen.is_empty(), "thief always gets at least one key");
            assert!(keep.len <= stolen.len, "victim keeps the smaller-or-equal front");
        }
    }

    #[test]
    fn sched_policy_round_trips_through_the_cli_vocabulary() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(SchedPolicy::parse("turbo"), None);
        assert!(!SchedPolicy::Static.steals());
        assert!(SchedPolicy::Queue.steals() && SchedPolicy::Steal.steals());
        assert_eq!(SchedPolicy::Queue.chunk_policy(64), ChunkPolicy::Fixed(64));
        assert_eq!(SchedPolicy::Steal.chunk_policy(64), ChunkPolicy::Guided { min: 64 });
    }

    #[test]
    fn chunk_policies_never_return_zero_for_nonempty_work() {
        assert_eq!(ChunkPolicy::Fixed(0).next_len(5), 1, "degenerate fixed clamps to 1");
        assert_eq!(ChunkPolicy::Guided { min: 0 }.next_len(3), 1);
        assert_eq!(ChunkPolicy::Guided { min: 16 }.next_len(80), 16);
        assert_eq!(ChunkPolicy::Guided { min: 16 }.next_len(8000), 1000);
    }

    #[test]
    fn next_len_edge_cases_are_total() {
        for policy in [
            ChunkPolicy::Fixed(0),
            ChunkPolicy::Fixed(64),
            ChunkPolicy::Guided { min: 0 },
            ChunkPolicy::Guided { min: 16 },
            ChunkPolicy::Timed { target_ms: 50, min: 16 },
        ] {
            assert_eq!(policy.next_len(0), 0, "{policy:?}: an empty deque yields nothing");
            assert_eq!(policy.next_len(1), 1, "{policy:?}: a single key is poppable");
            // Remainders below any plausible worker count stay exact:
            // never zero, never more than what is there.
            for remaining in 1u128..8 {
                let n = policy.next_len(remaining);
                assert!(n >= 1 && n <= remaining, "{policy:?} at {remaining} gave {n}");
            }
        }
        // Fixed chunks larger than the remainder are clipped at sizing
        // time, so a pop can always be satisfied exactly.
        assert_eq!(ChunkPolicy::Fixed(64).next_len(36), 36);
    }

    #[test]
    fn timed_policy_sizes_by_rate_and_falls_back_guided() {
        let p = ChunkPolicy::Timed { target_ms: 100, min: 16 };
        // 1e6 keys/s × 0.1 s = 100_000 keys.
        assert_eq!(p.next_len_rated(1 << 40, 1e6), 100_000);
        // Clamped to the floor and the remainder.
        assert_eq!(p.next_len_rated(1 << 40, 10.0), 16, "slow rate hits the floor");
        assert_eq!(p.next_len_rated(50, 1e9), 50, "never more than remaining");
        assert_eq!(p.next_len_rated(0, 1e6), 0);
        // No usable rate: the guided rule applies.
        assert_eq!(p.next_len_rated(8000, 0.0), 1000);
        assert_eq!(p.next_len_rated(8000, f64::NAN), 1000);
        // Non-timed policies ignore the rate entirely.
        assert_eq!(ChunkPolicy::Fixed(64).next_len_rated(1000, 1e9), 64);
    }

    #[test]
    fn try_scatter_names_the_offending_weight() {
        let iv = Interval::new(0, 100);
        assert_eq!(IntervalDeques::try_scatter(iv, &[]).unwrap_err(), ScatterError::NoWorkers);
        match IntervalDeques::try_scatter(iv, &[1.0, f64::NAN]).unwrap_err() {
            ScatterError::BadWeight { index, value } => {
                assert_eq!(index, 1);
                assert!(value.is_nan());
            }
            other => panic!("expected BadWeight, got {other:?}"),
        }
        assert!(matches!(
            IntervalDeques::try_scatter(iv, &[1.0, -2.0]).unwrap_err(),
            ScatterError::BadWeight { index: 1, .. }
        ));
        assert_eq!(
            IntervalDeques::try_scatter(iv, &[0.0, 0.0]).unwrap_err(),
            ScatterError::ZeroTotal
        );
        let msg = ScatterError::BadWeight { index: 1, value: f64::NAN }.to_string();
        assert!(msg.contains("#1"), "message names the weight: {msg}");
        // The happy path still scatters proportionally.
        let d = IntervalDeques::try_scatter(iv, &[3.0, 1.0]).unwrap();
        assert_eq!(d.remaining(0), 75);
    }

    #[test]
    #[should_panic(expected = "weight #0")]
    fn scatter_panics_with_a_friendly_message_on_nan() {
        IntervalDeques::scatter(Interval::new(0, 10), &[f64::NAN, 1.0]);
    }

    #[test]
    fn scatter_keeps_the_even_fallback_for_all_zero_weights() {
        let d = IntervalDeques::scatter(Interval::new(0, 9), &[0.0, 0.0, 0.0]);
        assert_eq!(d.remaining(0), 3);
        assert_eq!(d.remaining(1), 3);
        assert_eq!(d.remaining(2), 3);
    }

    /// The plan must tile exactly the identifiers the remainders held.
    fn assert_tiles(plan: &[Interval], remainders: &[Interval]) {
        let mut got: Vec<Interval> = plan.iter().copied().filter(|p| !p.is_empty()).collect();
        got.sort_by_key(|p| p.start);
        let mut want: Vec<Interval> =
            remainders.iter().copied().filter(|r| !r.is_empty()).collect();
        want.sort_by_key(|r| r.start);
        // Coalesce both sides (adjacent pieces may have been merged or cut).
        let coalesce = |ivs: Vec<Interval>| {
            let mut out: Vec<Interval> = Vec::new();
            for iv in ivs {
                match out.last_mut() {
                    Some(last) if last.end() == iv.start => last.len += iv.len,
                    _ => out.push(iv),
                }
            }
            out
        };
        assert_eq!(coalesce(got), coalesce(want), "plan must tile the input exactly");
    }

    #[test]
    fn rescatter_plan_rebalances_toward_the_weights() {
        // Slow worker 0 holds everything; fast worker 1 (4x rate) is dry.
        let remainders = [Interval::new(0, 1000), Interval::new(1000, 0)];
        let plan = rescatter_plan(&remainders, &[1.0, 4.0]).expect("imbalance to fix");
        assert_tiles(&plan, &remainders);
        assert_eq!(plan[1].len, 800, "fast worker gets 4/5 of the work");
        assert_eq!(plan[0].len, 200);
    }

    #[test]
    fn rescatter_plan_is_a_noop_when_already_proportional() {
        let remainders = [Interval::new(0, 800), Interval::new(800, 200)];
        assert_eq!(rescatter_plan(&remainders, &[4.0, 1.0]), None);
        assert_eq!(rescatter_plan(&[Interval::new(0, 0)], &[1.0]), None, "no work");
        assert_eq!(rescatter_plan(&[Interval::new(0, 9)], &[0.0]), None, "no active slot");
    }

    #[test]
    fn rescatter_plan_leaves_passive_slots_their_work() {
        // Slot 1 has weight zero but still holds a range: only the
        // active slots' work is redistributed.
        let remainders =
            [Interval::new(0, 600), Interval::new(600, 100), Interval::new(700, 0)];
        let plan = rescatter_plan(&remainders, &[1.0, 0.0, 2.0]).expect("rebalance");
        assert_tiles(&plan, &remainders);
        assert_eq!(plan[1], Interval::new(600, 100), "passive slot keeps its range");
        assert_eq!(plan[0].len + plan[2].len, 600, "active work redistributed");
        assert_eq!(plan[2].len, 400, "2/3 of the movable work");
    }

    #[test]
    fn rescatter_plan_handles_more_ranges_than_weight_suggests() {
        // Target concentrated on the (empty) slot 3, but a slot holds at
        // most one contiguous range: the plan must still absorb every
        // loaded range somewhere instead of orphaning the ones the
        // weighted shares rounded down to zero.
        let remainders = [
            Interval::new(0, 10),
            Interval::new(50, 10),
            Interval::new(90, 10),
            Interval::new(200, 0),
        ];
        let plan = rescatter_plan(&remainders, &[1.0, 1.0, 1.0, 100.0]).expect("rebalance");
        assert_tiles(&plan, &remainders);
        let total: u128 = plan.iter().map(|p| p.len).sum();
        assert_eq!(total, 30, "no range orphaned: {plan:?}");
        assert!(!plan[3].is_empty(), "the heavy slot was fed");

        // The degenerate cousin: equal loaded slots with nowhere to move
        // work is a no-op, not a reshuffle.
        let stuck = [Interval::new(0, 10), Interval::new(50, 10), Interval::new(90, 10)];
        assert_eq!(rescatter_plan(&stuck, &[100.0, 1.0, 1.0]), None);
    }

    #[test]
    fn live_rescatter_respects_retired_slots() {
        let d = IntervalDeques::assign(vec![
            Interval::new(0, 1000),
            Interval::new(1000, 0),
            Interval::new(1000, 0),
        ]);
        assert!(d.retire_if_empty(2), "empty slot retires");
        assert!(!d.retire_if_empty(0), "loaded slot refuses to retire");
        assert!(d.rescatter(&[1.0, 1.0, 1.0]), "rebalance happened");
        assert_eq!(d.remaining(2), 0, "retired slot got nothing");
        assert_eq!(d.remaining(0) + d.remaining(1), 1000, "work conserved");
        assert!(d.remaining(1) > 0, "live empty slot was fed");
        assert_eq!(d.total_remaining(), 1000);
    }

    #[test]
    fn try_steal_hands_off_when_own_slot_was_refilled() {
        let d = IntervalDeques::assign(vec![Interval::new(0, 100), Interval::new(100, 0)]);
        // Simulate the conflict: a re-scatter refills slot 1 after its
        // owner decided to steal (we refill before the steal here — the
        // lock-order outcome is identical).
        assert!(d.rescatter(&[1.0, 1.0]));
        assert!(d.remaining(1) > 0, "slot 1 refilled");
        match d.try_steal(1) {
            StealOutcome::Handoff { victim, chunk } => {
                assert_eq!(victim, 0);
                assert!(!chunk.is_empty());
                assert_eq!(
                    chunk.len + d.remaining(0) + d.remaining(1),
                    100,
                    "handoff moved, never duplicated"
                );
            }
            other => panic!("expected handoff, got {other:?}"),
        }
    }
}
