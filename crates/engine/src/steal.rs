//! Adaptive work distribution: per-worker interval deques, steal-half
//! rebalancing, and guided chunk sizing.
//!
//! The paper's scatter step (Section III) hands every worker a contiguous
//! interval sized by its tuned rate (`N_j = N_max · X_j / X_max`), so the
//! common case touches no shared state at all. The tuning step is an
//! estimate, though: when a worker drains its share early — a mis-tuned
//! rate, a heterogeneous neighbour, a first-hit race — it *steals* the
//! back half of the largest remaining remote interval instead of idling
//! until the gather. Three pieces implement that here:
//!
//! * [`IntervalDeques`] — one interval slot per worker. The owner pops
//!   chunks off the front (oldest identifiers first, so per-owner
//!   coverage stays a contiguous prefix); a thief splits the *back* half
//!   off the largest remote slot. Both ends are guarded by one mutex per
//!   slot, held for O(1) arithmetic, never across a scan; at most one
//!   lock is held at a time, so the scheme cannot deadlock.
//! * [`ChunkPolicy`] — how much an owner pops at once. `Fixed` is the
//!   classic shared-queue granularity; `Guided` starts at
//!   `remaining / 8` and shrinks toward the tail, so early chunks
//!   amortize dispatch overhead while late chunks leave work for
//!   thieves and keep the makespan tail short.
//! * [`SchedPolicy`] — the CLI-facing knob (`--sched static|queue|steal`)
//!   naming the three dispatcher modes built from the two pieces above.
//!
//! Exactly-once coverage is structural: the slots start as a partition of
//! the search interval, `pop` and the steal split only ever *move*
//! identifier ranges between disjoint owners, and nothing is ever copied
//! or re-inserted — properties the seeded interleaving tests pin down.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use eks_keyspace::Interval;

/// Denominator of the guided self-scheduling rule: each pop takes
/// `remaining / GUIDED_DIVISOR` keys (clamped below by the policy's
/// floor), the classic "start large, shrink toward the tail" schedule.
pub const GUIDED_DIVISOR: u128 = 8;

/// How an owner sizes the chunk it pops from its own deque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Every pop takes the same number of keys (at least one).
    Fixed(u128),
    /// Guided self-scheduling: pop `remaining / 8`, never less than
    /// `min` (and never less than one key).
    Guided {
        /// Smallest chunk the schedule decays to.
        min: u128,
    },
}

impl ChunkPolicy {
    /// Keys the next pop should take from a deque holding `remaining`
    /// keys. Positive whenever `remaining` is.
    pub fn next_len(&self, remaining: u128) -> u128 {
        match *self {
            ChunkPolicy::Fixed(n) => n.max(1),
            ChunkPolicy::Guided { min } => (remaining / GUIDED_DIVISOR).max(min).max(1),
        }
    }
}

/// The dispatcher's scheduling mode, as named on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Pure scatter: every worker scans exactly its pre-assigned
    /// interval; no stealing. Accounting equals the split shares.
    Static,
    /// Fixed-size chunks with stealing — the load-balancing profile of
    /// the old shared-cursor queue, without the shared cursor.
    Queue,
    /// Guided chunks with stealing: the adaptive default.
    Steal,
}

impl SchedPolicy {
    /// Every policy, in CLI vocabulary order.
    pub const ALL: [SchedPolicy; 3] =
        [SchedPolicy::Static, SchedPolicy::Queue, SchedPolicy::Steal];

    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "static" => Some(SchedPolicy::Static),
            "queue" => Some(SchedPolicy::Queue),
            "steal" => Some(SchedPolicy::Steal),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Static => "static",
            SchedPolicy::Queue => "queue",
            SchedPolicy::Steal => "steal",
        }
    }

    /// Whether idle workers steal under this policy.
    pub fn steals(&self) -> bool {
        !matches!(self, SchedPolicy::Static)
    }

    /// The chunk policy this mode pairs with, given the caller's chunk
    /// knob (the fixed size for [`SchedPolicy::Queue`], the guided floor
    /// otherwise).
    pub fn chunk_policy(&self, chunk: u128) -> ChunkPolicy {
        match self {
            SchedPolicy::Queue => ChunkPolicy::Fixed(chunk),
            _ => ChunkPolicy::Guided { min: chunk },
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The steal-half split, as pure interval arithmetic: the victim keeps
/// the front half (it scans lowest identifiers first), the thief takes
/// the back half — never less than one key when the victim is nonempty.
/// Returns `(keep, stolen)` with `keep.end() == stolen.start` and
/// `keep.len + stolen.len == victim.len`.
///
/// This is the one definition of the split both the live
/// [`IntervalDeques::steal_into`] path and the `eks-verify` model
/// checker share, so the verified transition relation cannot drift from
/// the shipped arithmetic.
pub fn steal_split(victim: Interval) -> (Interval, Interval) {
    let keep = victim.len / 2;
    (
        Interval { start: victim.start, len: keep },
        Interval { start: victim.start + keep, len: victim.len - keep },
    )
}

/// Per-worker scheduler accounting, gathered alongside the tested
/// counts: how often this worker stole, how often it was stolen from,
/// and where its wall-clock went. `idle_ns` is time spent looking for
/// work (successful or not); `busy_ns` is time inside scans. The bench
/// derives measured parallel efficiency from `busy / (busy + idle)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Display label, registration order.
    pub label: String,
    /// Candidates tested by this worker.
    pub tested: u128,
    /// Successful steals this worker performed.
    pub steals: u64,
    /// Times this worker's deque was split by a thief.
    pub splits: u64,
    /// Nanoseconds spent out of work (steal attempts included).
    pub idle_ns: u64,
    /// Nanoseconds spent scanning.
    pub busy_ns: u64,
}

impl WorkerStats {
    /// Fresh zeroed stats for a labelled worker.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), tested: 0, steals: 0, splits: 0, idle_ns: 0, busy_ns: 0 }
    }

    /// Busy share of accounted wall time, in percent. A run too short
    /// for either clock to tick reports 0 — never NaN.
    pub fn utilization_pct(&self) -> f64 {
        let total = self.busy_ns.saturating_add(self.idle_ns);
        if total == 0 {
            0.0
        } else {
            100.0 * self.busy_ns as f64 / total as f64
        }
    }

    /// Tested keys per busy second. A zero-duration run (a hit in the
    /// first chunk before the clock ticks) reports 0 — never NaN or
    /// infinite.
    pub fn keys_per_sec(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.tested as f64 / (self.busy_ns as f64 / 1e9)
        }
    }
}

/// One interval deque per worker: the scatter step's partition, made
/// stealable. See the module docs for the locking and exactly-once
/// arguments.
#[derive(Debug)]
pub struct IntervalDeques {
    slots: Vec<Mutex<Interval>>,
    splits: Vec<AtomicU64>,
}

impl IntervalDeques {
    /// Deques over pre-split parts (the cluster planners' scatter: parts
    /// were already sized by tuned rates, slot `i` belongs to leaf `i`).
    pub fn assign(parts: Vec<Interval>) -> Self {
        assert!(!parts.is_empty(), "need at least one deque");
        let splits = parts.iter().map(|_| AtomicU64::new(0)).collect();
        Self { slots: parts.into_iter().map(Mutex::new).collect(), splits }
    }

    /// Scatter `interval` into one contiguous slot per weight,
    /// proportionally to `weights` (the paper's `N_j = N_max·X_j/X_max`
    /// step; equal weights give an even split).
    pub fn scatter(interval: Interval, weights: &[f64]) -> Self {
        Self::assign(interval.split_weighted(weights))
    }

    /// Number of deques (== workers).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no deques at all (never: `assign` rejects it).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Keys currently left in `slot`'s deque.
    pub fn remaining(&self, slot: usize) -> u128 {
        self.slots[slot].lock().expect("deque slot").len
    }

    /// Times `slot`'s deque has been split by thieves so far.
    pub fn splits(&self, slot: usize) -> u64 {
        self.splits[slot].load(Ordering::Relaxed)
    }

    /// Pop the next chunk off the front of `slot`'s own deque, sized by
    /// `policy`. `None` when the deque is empty (time to steal).
    pub fn pop(&self, slot: usize, policy: ChunkPolicy) -> Option<Interval> {
        let mut own = self.slots[slot].lock().expect("deque slot");
        if own.is_empty() {
            return None;
        }
        let n = policy.next_len(own.len);
        Some(own.take_front(n))
    }

    /// Pick the remote slot with the most work left, skipping `thief`'s
    /// own slot *by index* before any lock is taken (a self-steal would
    /// be a no-op lock round-trip: the thief only steals when its own
    /// deque is already drained).
    ///
    /// ## The benign stale-snapshot race
    ///
    /// Locks are taken one slot at a time, so the lengths observed here
    /// are **not** a consistent snapshot: by the time the thief locks
    /// its chosen victim, an owner may have popped the slot down (or
    /// empty), and some *other* slot may now be larger. That is safe —
    /// and deliberately cheap — for two reasons:
    ///
    /// * **Safety** never depends on the choice: the split in
    ///   [`IntervalDeques::steal_into`] re-checks the victim *under its
    ///   lock* and rescans if it was drained in the meantime, so work is
    ///   only ever moved, never invented or lost.
    /// * **Quality** of the choice only affects load balance: stealing
    ///   from a stale "largest" victim costs at most one extra future
    ///   steal. The `eks-verify` model makes exactly this
    ///   nondeterminism explicit — its `Steal` transition allows *any*
    ///   nonempty remote victim, so every outcome the race can produce
    ///   is inside the verified state space.
    fn largest_remote(&self, thief: usize) -> Option<usize> {
        let mut best: Option<(usize, u128)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if i == thief {
                continue;
            }
            let len = slot.lock().expect("deque slot").len;
            if len > 0 && best.is_none_or(|(_, l)| len > l) {
                best = Some((i, len));
            }
        }
        best.map(|(i, _)| i)
    }

    /// The current per-slot intervals, in slot order (empty slots
    /// included, so indices line up with leaves). Taken one lock at a
    /// time: only meaningful as a *checkpoint* when the owning round is
    /// quiescent — between rounds, or after `run_deques` returned —
    /// where it is exact. [`IntervalDeques::assign`] restores it.
    pub fn snapshot(&self) -> Vec<Interval> {
        self.slots.iter().map(|s| *s.lock().expect("deque slot")).collect()
    }

    /// Steal-half: split the back half of the largest remote deque into
    /// `thief`'s (empty) slot. Returns the victim's slot index, or
    /// `None` when every remote deque is empty — the queue is drained
    /// (up to chunks already being scanned) and the thief should exit.
    ///
    /// Victim selection ([`Self::largest_remote`]) reads slot lengths
    /// without a consistent snapshot; see its docs for why that race is
    /// benign and how the model checker covers it.
    pub fn steal_into(&self, thief: usize) -> Option<usize> {
        loop {
            let victim = self.largest_remote(thief)?;
            let stolen = {
                let mut v = self.slots[victim].lock().expect("deque slot");
                if v.is_empty() {
                    continue; // raced with the owner; look again
                }
                let (keep, stolen) = steal_split(*v);
                *v = keep;
                stolen
            };
            self.splits[victim].fetch_add(1, Ordering::Relaxed);
            let mut own = self.slots[thief].lock().expect("deque slot");
            debug_assert!(own.is_empty(), "thieves only steal when drained");
            *own = stolen;
            return Some(victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_partitions_contiguously_and_proportionally() {
        let d = IntervalDeques::scatter(Interval::new(100, 1000), &[3.0, 1.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.remaining(0), 750);
        assert_eq!(d.remaining(1), 250);
        // Contiguous: slot 1 starts where slot 0 ends.
        let p0 = d.pop(0, ChunkPolicy::Fixed(750)).unwrap();
        let p1 = d.pop(1, ChunkPolicy::Fixed(250)).unwrap();
        assert_eq!(p0.end(), p1.start);
        assert_eq!(p1.end(), 1100);
    }

    #[test]
    fn guided_chunks_start_large_and_shrink_to_the_floor() {
        let d = IntervalDeques::assign(vec![Interval::new(0, 80_000)]);
        let policy = ChunkPolicy::Guided { min: 1000 };
        let mut sizes = Vec::new();
        while let Some(chunk) = d.pop(0, policy) {
            sizes.push(chunk.len);
        }
        assert_eq!(sizes[0], 10_000, "first pop takes remaining/8");
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "monotone shrink {sizes:?}");
        assert!(sizes.iter().all(|&s| s >= 1), "every pop is nonempty");
        assert!(sizes.iter().rev().skip(1).all(|&s| s >= 1000), "floor respected");
        assert_eq!(sizes.iter().sum::<u128>(), 80_000, "pops cover the deque exactly");
    }

    #[test]
    fn fixed_chunks_pop_from_the_front_in_order() {
        let d = IntervalDeques::assign(vec![Interval::new(10, 100)]);
        let a = d.pop(0, ChunkPolicy::Fixed(64)).unwrap();
        let b = d.pop(0, ChunkPolicy::Fixed(64)).unwrap();
        assert_eq!(a, Interval::new(10, 64));
        assert_eq!(b, Interval::new(74, 36), "tail pop is clipped");
        assert!(d.pop(0, ChunkPolicy::Fixed(64)).is_none());
    }

    #[test]
    fn steal_takes_the_back_half_of_the_largest_remote() {
        let d = IntervalDeques::assign(vec![
            Interval::new(0, 10),
            Interval::new(10, 1000),
            Interval::new(1010, 0),
        ]);
        let victim = d.steal_into(2).expect("work to steal");
        assert_eq!(victim, 1, "largest deque is the victim");
        assert_eq!(d.remaining(1), 500, "victim keeps the front half");
        assert_eq!(d.remaining(2), 500, "thief holds the back half");
        let stolen = d.pop(2, ChunkPolicy::Fixed(500)).unwrap();
        assert_eq!(stolen, Interval::new(510, 500));
        assert_eq!(d.splits(1), 1);
        assert_eq!(d.splits(2), 0);
    }

    #[test]
    fn steal_of_a_single_key_takes_the_whole_thing() {
        let d = IntervalDeques::assign(vec![Interval::new(5, 1), Interval::new(6, 0)]);
        assert_eq!(d.steal_into(1), Some(0));
        assert_eq!(d.remaining(0), 0);
        assert_eq!(d.remaining(1), 1);
    }

    #[test]
    fn steal_returns_none_when_everything_is_drained() {
        let d = IntervalDeques::assign(vec![Interval::new(0, 4), Interval::new(4, 0)]);
        while d.pop(0, ChunkPolicy::Fixed(2)).is_some() {}
        assert!(d.steal_into(1).is_none());
        assert_eq!(d.splits(0), 0);
    }

    #[test]
    fn steal_split_is_a_partition_with_a_nonempty_back_half() {
        for len in 1u128..=9 {
            let v = Interval::new(100, len);
            let (keep, stolen) = steal_split(v);
            assert_eq!(keep.start, v.start);
            assert_eq!(keep.end(), stolen.start, "halves are adjacent");
            assert_eq!(keep.len + stolen.len, v.len, "nothing lost or doubled");
            assert!(!stolen.is_empty(), "thief always gets at least one key");
            assert!(keep.len <= stolen.len, "victim keeps the smaller-or-equal front");
        }
    }

    #[test]
    fn sched_policy_round_trips_through_the_cli_vocabulary() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(SchedPolicy::parse("turbo"), None);
        assert!(!SchedPolicy::Static.steals());
        assert!(SchedPolicy::Queue.steals() && SchedPolicy::Steal.steals());
        assert_eq!(SchedPolicy::Queue.chunk_policy(64), ChunkPolicy::Fixed(64));
        assert_eq!(SchedPolicy::Steal.chunk_policy(64), ChunkPolicy::Guided { min: 64 });
    }

    #[test]
    fn chunk_policies_never_return_zero_for_nonempty_work() {
        assert_eq!(ChunkPolicy::Fixed(0).next_len(5), 1, "degenerate fixed clamps to 1");
        assert_eq!(ChunkPolicy::Guided { min: 0 }.next_len(3), 1);
        assert_eq!(ChunkPolicy::Guided { min: 16 }.next_len(80), 16);
        assert_eq!(ChunkPolicy::Guided { min: 16 }.next_len(8000), 1000);
    }
}
