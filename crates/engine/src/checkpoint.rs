//! Serializable search checkpoints: the frontier of completed work plus
//! the dispatcher's in-flight state, in a stable schema-stamped JSON form.
//!
//! The paper's dispatch pattern makes progress trivially checkpointable
//! because work is identifier intervals: remembering which sub-intervals
//! are still pending is enough to resume exactly where a crash or
//! shutdown interrupted, with no key rescanned and none skipped. This
//! module owns that bookkeeping for every layer above:
//!
//! * [`Checkpoint`] — the **frontier**: the full interval a search covers
//!   and the sorted, non-overlapping sub-intervals not yet completed.
//!   (This type began life in `eks-cracker`'s resume module and moved
//!   down here so the job service, the cluster rounds driver, and the
//!   audit session all share one implementation.)
//! * [`SearchCheckpoint`] — a **mid-search snapshot**: the frontier plus
//!   the per-slot contents of an [`IntervalDeques`] and the per-worker
//!   [`WorkerStats`], i.e. everything needed to reconstruct
//!   consumed-vs-outstanding intervals after a restart.
//!
//! Two serialized forms exist:
//!
//! * the legacy line-oriented text format (`eks-checkpoint v1`), kept for
//!   the audit-session files already in the wild;
//! * a schema-stamped JSON document ([`SearchCheckpoint::to_json`]),
//!   std-only like the telemetry expositions. All `u128`/`u64` fields are
//!   serialized as **decimal strings** — JSON numbers round-trip through
//!   `f64` and silently lose precision past 2^53, which a 62^8 keyspace
//!   identifier exceeds. Readers reject unknown future `schema` values
//!   instead of guessing.

use std::fmt;
use std::fmt::Write as _;

use eks_keyspace::Interval;
use eks_telemetry::parse::{parse_json, Json};

use crate::steal::{IntervalDeques, WorkerStats};

/// Version stamp of the JSON checkpoint document. Any layout change must
/// bump this and update the goldens in `tests/jobs_schema.rs` in the same
/// commit.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 1;

/// Why a serialized checkpoint was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The document is not JSON at all.
    Parse(String),
    /// The document is JSON but stamped with a schema version this
    /// build does not understand (forward-compat reject, never a guess).
    Schema(u64),
    /// The document is schema-1 JSON but a field is missing or invalid.
    Invalid(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Parse(e) => write!(f, "checkpoint is not valid JSON: {e}"),
            CheckpointError::Schema(v) => write!(
                f,
                "checkpoint schema version {v} is not supported (this build reads {CHECKPOINT_SCHEMA_VERSION})"
            ),
            CheckpointError::Invalid(e) => write!(f, "malformed checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Persistent search progress: the original interval and what remains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The full interval the search covers.
    pub full: Interval,
    /// Sub-intervals not yet completed, sorted, non-overlapping.
    pub pending: Vec<Interval>,
}

impl Checkpoint {
    /// A fresh checkpoint with everything pending.
    pub fn new(full: Interval) -> Self {
        Self { full, pending: if full.is_empty() { Vec::new() } else { vec![full] } }
    }

    /// Keys still to be tested.
    pub fn remaining(&self) -> u128 {
        self.pending.iter().map(|iv| iv.len).sum()
    }

    /// Keys whose coverage is already complete. The two views always
    /// reconcile: `consumed() + remaining() == full.len`.
    pub fn consumed(&self) -> u128 {
        self.full.len - self.remaining()
    }

    /// Completed fraction in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.full.len == 0 {
            return 1.0;
        }
        1.0 - self.remaining() as f64 / self.full.len as f64
    }

    /// True when nothing remains.
    pub fn is_complete(&self) -> bool {
        self.pending.is_empty()
    }

    /// Mark `done` as completed, splitting pending intervals as needed.
    ///
    /// Completing an interval twice (or one never pending) is a no-op for
    /// the already-complete part — idempotent by design, since cluster
    /// workers may re-report after a requeue.
    pub fn complete(&mut self, done: Interval) {
        if done.is_empty() {
            return;
        }
        let mut next = Vec::with_capacity(self.pending.len() + 1);
        for iv in &self.pending {
            let overlap = iv.intersect(&done);
            if overlap.is_empty() {
                next.push(*iv);
                continue;
            }
            // Left remainder.
            if iv.start < overlap.start {
                next.push(Interval::new(iv.start, overlap.start - iv.start));
            }
            // Right remainder.
            if overlap.end() < iv.end() {
                next.push(Interval::new(overlap.end(), iv.end() - overlap.end()));
            }
        }
        next.sort_by_key(|iv| iv.start);
        self.pending = next;
    }

    /// Pop up to `n` keys of pending work (the resume-side dispatcher).
    pub fn take_work(&mut self, n: u128) -> Option<Interval> {
        let first = self.pending.first_mut()?;
        let take = first.take_front(n);
        if first.is_empty() {
            self.pending.remove(0);
        }
        Some(take)
    }

    /// Return work taken with [`Checkpoint::take_work`] that was never
    /// scanned (a worker went silent mid-round): the interval becomes
    /// pending again, merged with its neighbours.
    ///
    /// # Panics
    /// Panics when the interval escapes the checkpoint's full range or
    /// overlaps work that is still pending (double-requeue).
    pub fn requeue(&mut self, interval: Interval) {
        if interval.is_empty() {
            return;
        }
        assert_eq!(
            interval.intersect(&self.full),
            interval,
            "requeued interval escapes the checkpoint range"
        );
        for iv in &self.pending {
            assert!(
                iv.intersect(&interval).is_empty(),
                "requeued interval overlaps pending work"
            );
        }
        self.pending.push(interval);
        self.pending.sort_by_key(|iv| iv.start);
        // Merge adjacent fragments to keep the list compact.
        let mut merged: Vec<Interval> = Vec::with_capacity(self.pending.len());
        for iv in self.pending.drain(..) {
            match merged.last_mut() {
                Some(last) if last.end() == iv.start => last.len += iv.len,
                _ => merged.push(iv),
            }
        }
        self.pending = merged;
    }

    /// Serialize to the legacy checkpoint text format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        writeln!(out, "eks-checkpoint v1 {} {}", self.full.start, self.full.len)
            .expect("write to string");
        for iv in &self.pending {
            writeln!(out, "{} {}", iv.start, iv.len).expect("write to string");
        }
        out
    }

    /// Parse the legacy checkpoint text format.
    pub fn deserialize(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty checkpoint")?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("eks-checkpoint") || parts.next() != Some("v1") {
            return Err("bad checkpoint header".into());
        }
        let start: u128 = parts
            .next()
            .ok_or("missing start")?
            .parse()
            .map_err(|_| "bad start")?;
        let len: u128 = parts
            .next()
            .ok_or("missing len")?
            .parse()
            .map_err(|_| "bad len")?;
        let full = Interval::new(start, len);
        let mut pending = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut p = line.split_whitespace();
            let s: u128 = p
                .next()
                .ok_or(format!("line {i}: missing start"))?
                .parse()
                .map_err(|_| format!("line {i}: bad start"))?;
            let l: u128 = p
                .next()
                .ok_or(format!("line {i}: missing len"))?
                .parse()
                .map_err(|_| format!("line {i}: bad len"))?;
            let iv = Interval::new(s, l);
            if iv.intersect(&full) != iv {
                return Err(format!("line {i}: pending interval escapes the full range"));
            }
            pending.push(iv);
        }
        pending.sort_by_key(|iv| iv.start);
        // Reject overlaps: they would double-count work.
        for w in pending.windows(2) {
            if let [a, b] = w {
                if a.end() > b.start {
                    return Err("overlapping pending intervals".into());
                }
            }
        }
        Ok(Self { full, pending })
    }
}

/// A mid-search snapshot of the dispatcher: the frontier, the exact
/// per-slot contents of the [`IntervalDeques`] (outstanding work already
/// scattered but not yet scanned), and the per-worker accounting.
///
/// `frontier.pending` and `slots` answer different questions: the
/// frontier says what the *search* still owes, the slots say how the
/// *current round* had scattered part of that debt when the snapshot was
/// taken. Restoring re-assigns the saved slots verbatim
/// ([`SearchCheckpoint::restore_deques`]), so a resumed round continues
/// with the same partition the stealing had converged to.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCheckpoint {
    /// Completed-vs-pending coverage of the whole search.
    pub frontier: Checkpoint,
    /// Per-slot outstanding intervals, one per deque (may be empty).
    pub slots: Vec<Interval>,
    /// Per-worker accounting at snapshot time.
    pub workers: Vec<WorkerStats>,
}

impl SearchCheckpoint {
    /// A fresh snapshot: everything pending, nothing scattered, no
    /// workers yet.
    pub fn fresh(full: Interval) -> Self {
        Self { frontier: Checkpoint::new(full), slots: Vec::new(), workers: Vec::new() }
    }

    /// Snapshot a live round: the frontier plus the deques' current slot
    /// contents and the workers' accounting so far.
    pub fn snapshot(frontier: Checkpoint, deques: &IntervalDeques, workers: Vec<WorkerStats>) -> Self {
        Self { frontier, slots: deques.snapshot(), workers }
    }

    /// Rebuild the deques exactly as they were at snapshot time.
    ///
    /// # Panics
    /// Panics when the snapshot holds no slots (a fresh checkpoint never
    /// entered a round; scatter the frontier's pending work instead).
    pub fn restore_deques(&self) -> IntervalDeques {
        IntervalDeques::assign(self.slots.clone())
    }

    /// Keys outstanding in the snapshot's scattered slots.
    pub fn scattered(&self) -> u128 {
        self.slots.iter().map(|iv| iv.len).sum()
    }

    /// Render the schema-stamped JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        let _ = write!(out, "{CHECKPOINT_SCHEMA_VERSION}");
        out.push_str(",\"full\":");
        push_interval(&mut out, &self.frontier.full);
        out.push_str(",\"pending\":[");
        for (i, iv) in self.frontier.pending.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_interval(&mut out, iv);
        }
        out.push_str("],\"slots\":[");
        for (i, iv) in self.slots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_interval(&mut out, iv);
        }
        out.push_str("],\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"tested\":\"{}\",\"steals\":\"{}\",\"splits\":\"{}\",\"idle_ns\":\"{}\",\"busy_ns\":\"{}\"}}",
                escape_json(&w.label),
                w.tested,
                w.steals,
                w.splits,
                w.idle_ns,
                w.busy_ns
            );
        }
        out.push_str("]}");
        out
    }

    /// Parse a schema-stamped JSON document, rejecting unknown schema
    /// versions and structurally invalid state (overlapping pending
    /// intervals, slots escaping the full range) rather than resuming a
    /// search that would rescan or skip keys.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let doc = parse_json(text).map_err(CheckpointError::Parse)?;
        let schema = u64_field(&doc, "schema")?;
        if schema != CHECKPOINT_SCHEMA_VERSION {
            return Err(CheckpointError::Schema(schema));
        }
        let full = interval_field(&doc, "full")?;
        let mut pending = interval_array(&doc, "pending")?;
        pending.sort_by_key(|iv| iv.start);
        for w in pending.windows(2) {
            if let [a, b] = w {
                if a.end() > b.start {
                    return Err(CheckpointError::Invalid(
                        "pending intervals overlap (work would be double-counted)".into(),
                    ));
                }
            }
        }
        for iv in &pending {
            if iv.intersect(&full) != *iv {
                return Err(CheckpointError::Invalid(
                    "pending interval escapes the full range".into(),
                ));
            }
        }
        let slots = interval_array(&doc, "slots")?;
        for iv in &slots {
            if !iv.is_empty() && iv.intersect(&full) != *iv {
                return Err(CheckpointError::Invalid(
                    "slot interval escapes the full range".into(),
                ));
            }
        }
        let workers = match doc.get("workers") {
            Some(Json::Arr(items)) => {
                let mut ws = Vec::with_capacity(items.len());
                for item in items {
                    ws.push(worker_from_json(item)?);
                }
                ws
            }
            Some(_) => return Err(CheckpointError::Invalid("workers must be an array".into())),
            None => return Err(CheckpointError::Invalid("missing field: workers".into())),
        };
        Ok(Self { frontier: Checkpoint { full, pending }, slots, workers })
    }
}

// ---------------------------------------------------------------------
// JSON helpers (std-only; decimal-string integers for exact round-trips).
// Public: the job store up-stack writes the same dialect, so the two
// schemas can never drift on integer encoding.
// ---------------------------------------------------------------------

/// Append an interval as `{"start":"<dec>","len":"<dec>"}`.
pub fn push_interval(out: &mut String, iv: &Interval) {
    let _ = write!(out, "{{\"start\":\"{}\",\"len\":\"{}\"}}", iv.start, iv.len);
}

/// Escape a string for embedding in a JSON document.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Required string member of a JSON object.
pub fn str_field<'j>(obj: &'j Json, key: &str) -> Result<&'j str, CheckpointError> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s),
        Some(_) => Err(CheckpointError::Invalid(format!("field {key} must be a string"))),
        None => Err(CheckpointError::Invalid(format!("missing field: {key}"))),
    }
}

/// Integers appear as decimal strings (exact) — but `schema` itself is a
/// plain JSON number for greppability, so accept both spellings.
pub fn u64_field(obj: &Json, key: &str) -> Result<u64, CheckpointError> {
    match obj.get(key) {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
            Ok(*n as u64)
        }
        Some(Json::Str(s)) => s
            .parse::<u64>()
            .map_err(|_| CheckpointError::Invalid(format!("field {key} is not a u64: {s:?}"))),
        Some(_) => Err(CheckpointError::Invalid(format!("field {key} must be an integer"))),
        None => Err(CheckpointError::Invalid(format!("missing field: {key}"))),
    }
}

/// Required `u128` member, spelled as a decimal string.
pub fn u128_field(obj: &Json, key: &str) -> Result<u128, CheckpointError> {
    let s = str_field(obj, key)?;
    s.parse::<u128>()
        .map_err(|_| CheckpointError::Invalid(format!("field {key} is not a u128: {s:?}")))
}

/// Parse one `{"start":...,"len":...}` interval object, with overflow
/// checked instead of panicking.
pub fn interval_from_json(value: &Json) -> Result<Interval, CheckpointError> {
    let start = u128_field(value, "start")?;
    let len = u128_field(value, "len")?;
    start
        .checked_add(len)
        .ok_or_else(|| CheckpointError::Invalid("interval start + len overflows u128".into()))?;
    Ok(Interval::new(start, len))
}

/// Required interval member of a JSON object.
pub fn interval_field(obj: &Json, key: &str) -> Result<Interval, CheckpointError> {
    match obj.get(key) {
        Some(v @ Json::Obj(_)) => interval_from_json(v),
        Some(_) => Err(CheckpointError::Invalid(format!("field {key} must be an object"))),
        None => Err(CheckpointError::Invalid(format!("missing field: {key}"))),
    }
}

/// Required array-of-intervals member of a JSON object.
pub fn interval_array(obj: &Json, key: &str) -> Result<Vec<Interval>, CheckpointError> {
    match obj.get(key) {
        Some(Json::Arr(items)) => items.iter().map(interval_from_json).collect(),
        Some(_) => Err(CheckpointError::Invalid(format!("field {key} must be an array"))),
        None => Err(CheckpointError::Invalid(format!("missing field: {key}"))),
    }
}

fn worker_from_json(value: &Json) -> Result<WorkerStats, CheckpointError> {
    Ok(WorkerStats {
        label: str_field(value, "label")?.to_string(),
        tested: u128_field(value, "tested")?,
        steals: u64_field(value, "steals")?,
        splits: u64_field(value, "splits")?,
        idle_ns: u64_field(value, "idle_ns")?,
        busy_ns: u64_field(value, "busy_ns")?,
    })
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn fresh_checkpoint_has_everything_pending() {
        let c = Checkpoint::new(Interval::new(100, 1000));
        assert_eq!(c.remaining(), 1000);
        assert_eq!(c.consumed(), 0);
        assert_eq!(c.progress(), 0.0);
        assert!(!c.is_complete());
    }

    #[test]
    fn completing_middle_splits_pending() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        c.complete(Interval::new(40, 20));
        assert_eq!(c.pending, vec![Interval::new(0, 40), Interval::new(60, 40)]);
        assert_eq!(c.remaining(), 80);
        assert_eq!(c.consumed(), 20);
        assert!((c.progress() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn completing_everything_finishes() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        c.complete(Interval::new(0, 60));
        c.complete(Interval::new(60, 40));
        assert!(c.is_complete());
        assert_eq!(c.progress(), 1.0);
    }

    #[test]
    fn complete_is_idempotent() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        c.complete(Interval::new(10, 30));
        let snapshot = c.clone();
        c.complete(Interval::new(10, 30));
        c.complete(Interval::new(15, 10));
        assert_eq!(c, snapshot);
    }

    #[test]
    fn take_work_drains_in_order() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        c.complete(Interval::new(30, 10));
        assert_eq!(c.take_work(20), Some(Interval::new(0, 20)));
        assert_eq!(c.take_work(20), Some(Interval::new(20, 10)), "clipped at the gap");
        assert_eq!(c.take_work(100), Some(Interval::new(40, 60)));
        assert_eq!(c.take_work(1), None);
    }

    #[test]
    fn text_serialization_round_trip() {
        let mut c = Checkpoint::new(Interval::new(5, 1_000_000));
        c.complete(Interval::new(100, 500));
        c.complete(Interval::new(999_000, 100));
        let text = c.serialize();
        let back = Checkpoint::deserialize(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn text_deserialize_rejects_garbage() {
        assert!(Checkpoint::deserialize("").is_err());
        assert!(Checkpoint::deserialize("nope v1 0 10").is_err());
        assert!(Checkpoint::deserialize("eks-checkpoint v1 0").is_err());
        assert!(
            Checkpoint::deserialize("eks-checkpoint v1 0 10\n5 20").is_err(),
            "pending escapes range"
        );
        assert!(
            Checkpoint::deserialize("eks-checkpoint v1 0 100\n0 20\n10 20").is_err(),
            "overlap"
        );
    }

    #[test]
    fn requeue_restores_and_merges() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        let a = c.take_work(30).unwrap();
        let b = c.take_work(30).unwrap();
        c.complete(a);
        // b was lost: requeue it; it must merge with the remaining tail.
        c.requeue(b);
        assert_eq!(c.remaining(), 70);
        assert_eq!(c.pending, vec![Interval::new(30, 70)], "merged with the tail");
        assert_eq!(c.take_work(1000), Some(Interval::new(30, 70)));
    }

    #[test]
    #[should_panic]
    fn double_requeue_rejected() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        let a = c.take_work(30).unwrap();
        c.requeue(a);
        c.requeue(a);
    }

    #[test]
    fn resumed_search_covers_exactly_the_remainder() {
        let full = Interval::new(0, 10_000);
        let mut c = Checkpoint::new(full);
        c.complete(Interval::new(0, 4_321));
        let restored = Checkpoint::deserialize(&c.serialize()).unwrap();
        let mut resumed = restored;
        let mut covered = 0u128;
        while let Some(iv) = resumed.take_work(1_000) {
            covered += iv.len;
        }
        assert_eq!(covered, 10_000 - 4_321);
    }

    // ------------------------------------------------------------------
    // JSON snapshot round-trips.
    // ------------------------------------------------------------------

    fn sample_snapshot() -> SearchCheckpoint {
        let full = Interval::new(0, 1u128 << 70);
        let mut frontier = Checkpoint::new(full);
        frontier.complete(Interval::new(0, 1u128 << 69));
        let deques = IntervalDeques::scatter(Interval::new(1u128 << 69, 4096), &[3.0, 1.0]);
        let mut w0 = WorkerStats::new("cpu#0");
        w0.tested = (1u128 << 69) + 17;
        w0.steals = 3;
        w0.busy_ns = 987_654_321;
        let w1 = WorkerStats::new("gpu#1 [simgpu]");
        SearchCheckpoint::snapshot(frontier, &deques, vec![w0, w1])
    }

    #[test]
    fn json_round_trips_mid_search_state_exactly() {
        let snap = sample_snapshot();
        let back = SearchCheckpoint::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // u128 precision beyond f64: the tested count survives exactly.
        assert_eq!(back.workers[0].tested, (1u128 << 69) + 17);
    }

    #[test]
    fn restored_deques_resume_the_same_partition() {
        let snap = sample_snapshot();
        let back = SearchCheckpoint::from_json(&snap.to_json()).unwrap();
        let deques = back.restore_deques();
        assert_eq!(deques.len(), 2);
        assert_eq!(deques.snapshot(), snap.slots);
        assert_eq!(snap.scattered(), 4096);
    }

    #[test]
    fn unknown_future_schema_is_rejected() {
        let snap = sample_snapshot();
        let bumped = snap.to_json().replacen(
            &format!("\"schema\":{CHECKPOINT_SCHEMA_VERSION}"),
            "\"schema\":99",
            1,
        );
        match SearchCheckpoint::from_json(&bumped) {
            Err(CheckpointError::Schema(99)) => {}
            other => panic!("expected schema reject, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_are_rejected_not_panicked() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"schema\":1}",
            // Overlapping pending intervals.
            "{\"schema\":1,\"full\":{\"start\":\"0\",\"len\":\"100\"},\"pending\":[{\"start\":\"0\",\"len\":\"20\"},{\"start\":\"10\",\"len\":\"20\"}],\"slots\":[],\"workers\":[]}",
            // Pending escapes the full range.
            "{\"schema\":1,\"full\":{\"start\":\"0\",\"len\":\"10\"},\"pending\":[{\"start\":\"5\",\"len\":\"20\"}],\"slots\":[],\"workers\":[]}",
            // Interval overflows u128.
            "{\"schema\":1,\"full\":{\"start\":\"340282366920938463463374607431768211455\",\"len\":\"2\"},\"pending\":[],\"slots\":[],\"workers\":[]}",
            // Non-string u128.
            "{\"schema\":1,\"full\":{\"start\":0,\"len\":10},\"pending\":[],\"slots\":[],\"workers\":[]}",
        ] {
            assert!(SearchCheckpoint::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn worker_labels_with_quotes_survive() {
        let mut snap = SearchCheckpoint::fresh(Interval::new(0, 10));
        snap.workers.push(WorkerStats::new("odd \"label\"\\with\tescapes"));
        let back = SearchCheckpoint::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.workers[0].label, "odd \"label\"\\with\tescapes");
    }
}
