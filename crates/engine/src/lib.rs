//! # eks-engine — pluggable backends, one dispatch core
//!
//! The paper's whole point (Section III) is *one* parallelization
//! pattern dispatched over a heterogeneous tree of devices: split the
//! identifier interval by tuned throughput (`N_j = N_max · X_j / X_max`),
//! scan, poll a stop condition, gather and merge. This crate is that
//! pattern as a library, independent of *how* a leaf tests candidates:
//!
//! * [`poll`] — the single chunk/poll/cancel loop ([`PollCursor`]): every
//!   scan in the workspace walks its interval through this cursor, so
//!   cancellation latency has exactly one source of truth
//!   ([`POLL_CHUNK`]);
//! * [`target`] — the test function `C`: hash targets and target sets;
//! * [`backend`] — the [`Backend`] trait: a leaf executor that scans an
//!   interval and reports a tuned throughput for the balancing step;
//! * [`steal`] — the adaptive scheduling vocabulary: per-worker interval
//!   deques with steal-half rebalancing ([`IntervalDeques`]), guided
//!   chunk sizing ([`ChunkPolicy`]), the `static|queue|steal` policy
//!   names ([`SchedPolicy`]) and per-worker [`WorkerStats`];
//! * [`dispatch`] — the [`Dispatcher`]: owns the stop flag, the hit
//!   merge (lowest identifier wins under first-hit), per-worker
//!   accounting and progress hooks, with three frontends over the same
//!   core — deque-scheduled workers ([`Dispatcher::run_deques`] /
//!   [`Dispatcher::run_workers`]), the classic work queue
//!   ([`Dispatcher::run_queue`], now a thin wrapper) and tree dispatch
//!   ([`Dispatcher::scan_as`]);
//! * [`checkpoint`] — serializable search state: the completed-work
//!   frontier ([`Checkpoint`]) and the schema-stamped JSON snapshot of a
//!   mid-search dispatcher ([`SearchCheckpoint`]), the substrate the
//!   multi-tenant job service persists and resumes from.
//!
//! Backend *implementations* live up-stack: `eks-cracker` provides the
//! scalar and lane-batched CPU backends, `eks-cluster` the simulated-GPU
//! kernel backend. This crate only depends on `eks-keyspace` and
//! `eks-hashes`, so every layer above can plug in.

pub mod backend;
pub mod checkpoint;
pub mod dispatch;
pub mod poll;
pub mod rate;
pub mod steal;
pub mod target;

pub use backend::{Backend, BackendKind, ScanMode, ScanReport};
pub use checkpoint::{
    Checkpoint, CheckpointError, SearchCheckpoint, CHECKPOINT_SCHEMA_VERSION,
};
pub use dispatch::{
    DequeLeaf, DispatchReport, Dispatcher, ProgressEvent, Retune, SchedOptions, WorkerId,
};
pub use poll::{poll_quantum, PollCursor, POLL_CHUNK};
pub use rate::{eta_drift_pct, RateBook, RateEstimator, RetuneControl, WARMUP_SAMPLES};
pub use steal::{
    rescatter_plan, steal_split, ChunkPolicy, IntervalDeques, ScatterError, SchedPolicy,
    StealOutcome, WorkerStats, GUIDED_DIVISOR,
};
pub use target::{HashTarget, TargetSet};
