//! The single dispatch core: stop flag, hit merge, accounting, hooks.
//!
//! A [`Dispatcher`] owns everything the paper's master does between
//! scatter and merge: the shared stop condition, the gathered hits, the
//! per-worker tested counts and scheduler stats, and an optional
//! progress hook. Three frontends drive the same core:
//!
//! * [`Dispatcher::run_deques`] — the adaptive shape: every worker owns
//!   a pre-scattered interval deque ([`IntervalDeques`]), pops chunks
//!   off its own front ([`ChunkPolicy`]), and steals the back half of
//!   the largest remote deque when drained;
//! * [`Dispatcher::run_queue`] / [`Dispatcher::run_workers`] — thin
//!   wrappers that scatter evenly and run `run_deques` in the requested
//!   [`SchedPolicy`] mode (`run_queue` keeps the old shared-queue
//!   granularity: fixed chunks, stealing on);
//! * [`Dispatcher::scan_as`] — the coarse-grain shape: a caller that
//!   already split the interval by tuned rates (the cluster runtimes)
//!   runs each pre-assigned slice as a registered worker.
//!
//! ## Merge semantics
//!
//! Hits are merged under one lock and sorted by identifier at
//! [`Dispatcher::finish`]; under [`ScanMode::FirstHit`] the report keeps
//! only the lowest-identifier hit, so the winner is deterministic across
//! backends given the same set of reported hits. *Which* hits get
//! reported under first-hit is inherently timing-dependent — therefore
//! `tested` is exact per worker but the total varies run-to-run once a
//! first hit cancels the others. In [`ScanMode::Exhaustive`] every
//! identifier is tested exactly once and `tested` is exact.
//!
//! ## Cancellation bound
//!
//! Once the stop flag is raised, a worker scans at most **one poll
//! quantum** more: every backend walks its chunk through a
//! [`crate::poll::PollCursor`], which re-checks the flag every
//! [`crate::poll::POLL_CHUNK`] keys (rounded up to the backend's lane
//! stride). With `W` workers in flight, total post-cancel work is
//! therefore bounded by `W × quantum` keys — a checked bound, see the
//! cancellation-latency test in `tests/steal_scheduler.rs`.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use eks_keyspace::{Interval, Key, KeySpace};
use eks_telemetry::{names, Counter, Gauge, Histogram, LivePlane, Telemetry};

use crate::backend::{Backend, ScanMode, ScanReport};
use crate::rate::{eta_drift_pct, RateBook, RetuneControl};
use crate::steal::{ChunkPolicy, IntervalDeques, SchedPolicy, StealOutcome, WorkerStats};
use crate::target::TargetSet;

/// Handle to a registered worker (index into the accounting table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerId(usize);

impl WorkerId {
    /// The registration index, as used by [`DispatchReport::per_worker`]
    /// and [`Dispatcher::worker_stats`] snapshots.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A progress observation, emitted after each merged scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressEvent {
    /// The worker that finished a scan.
    pub worker: usize,
    /// Candidates tested by that scan.
    pub tested: u128,
    /// Candidates tested so far across all workers.
    pub total_tested: u128,
    /// Hits gathered so far across all workers.
    pub total_hits: usize,
}

impl ProgressEvent {
    /// Share of `total` keys covered so far, in percent, clamped to
    /// `[0, 100]`. An empty space reports 100 (nothing left to do) —
    /// never NaN.
    pub fn percent_of(&self, total: u128) -> f64 {
        if total == 0 {
            100.0
        } else {
            (100.0 * self.total_tested as f64 / total as f64).clamp(0.0, 100.0)
        }
    }

    /// Aggregate keys per second over `elapsed_secs` of wall time. A
    /// zero-duration run (a hit in the first chunk) reports 0 — never
    /// NaN or infinite.
    pub fn keys_per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs > 0.0 {
            self.total_tested as f64 / elapsed_secs
        } else {
            0.0
        }
    }

    /// Estimated seconds until `total` keys are covered at the current
    /// aggregate rate. `None` while the rate is still zero or the space
    /// is already covered.
    pub fn eta_secs(&self, total: u128, elapsed_secs: f64) -> Option<f64> {
        let remaining = total.saturating_sub(self.total_tested);
        if remaining == 0 {
            return Some(0.0);
        }
        let rate = self.keys_per_sec(elapsed_secs);
        if rate > 0.0 {
            Some(remaining as f64 / rate)
        } else {
            None
        }
    }
}

/// Final state of a dispatch: the paper's gather + merge step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchReport {
    /// Hits in identifier order; truncated to the lowest-identifier hit
    /// under [`ScanMode::FirstHit`].
    pub hits: Vec<(u128, Key, usize)>,
    /// Total candidates tested (sum of `per_worker`).
    pub tested: u128,
    /// Per-worker `(label, tested)` in registration order.
    pub per_worker: Vec<(String, u128)>,
    /// Full per-worker scheduler stats (steals, splits, idle/busy time),
    /// same order as `per_worker`.
    pub stats: Vec<WorkerStats>,
}

struct Gathered {
    hits: Vec<(u128, Key, usize)>,
    workers: Vec<WorkerStats>,
    /// Live per-worker `eks_keys_tested_total{worker}` handles, parallel
    /// to `workers`: each chunk's tested count is added as it merges, so
    /// a mid-run scrape (and the sliding-window anomaly detector behind
    /// it) sees per-worker progress without waiting for
    /// [`Dispatcher::finish`]. Noop handles when telemetry is disabled.
    live_tested: Vec<Counter>,
}

type ProgressFn<'a> = Box<dyn Fn(&ProgressEvent) + Sync + 'a>;

/// Pre-registered instrument handles for the chunk-granular hot path,
/// so `scan_as` never touches the registry's striped lock: enabled
/// updates are plain atomic ops, disabled ones a null check.
struct DispatchInstruments {
    chunks: Counter,
    scan_ns: Histogram,
    cancel_latency_ns: Histogram,
    rescatters: Counter,
}

impl DispatchInstruments {
    fn new(telemetry: &Telemetry) -> Self {
        Self {
            chunks: telemetry.counter(names::CHUNKS, &[]),
            scan_ns: telemetry.histogram(names::SCAN_NS, &[]),
            cancel_latency_ns: telemetry.histogram(names::CANCEL_LATENCY_NS, &[]),
            rescatters: telemetry.counter(names::RESCATTERS, &[]),
        }
    }
}

/// Sentinel for "cancel not observed yet" in the cancel-time cell.
const CANCEL_UNSET: u64 = u64::MAX;

/// One executor in a [`Dispatcher::run_deques`] run: deque slot `i`
/// belongs to leaf `i`. Several leaves may share a [`WorkerId`] (a CPU
/// device fanning out over threads), so accounting stays per-device.
pub struct DequeLeaf<'b> {
    /// The worker this leaf's scans are credited to.
    pub worker: WorkerId,
    /// The backend that scans this leaf's chunks.
    pub backend: &'b dyn Backend,
}

/// The closed-loop retune knobs: when set on [`SchedOptions`], every
/// worker feeds its chunk timings into a shared [`RateBook`], and every
/// `every_chunks` pops one worker is elected to compare the live rates
/// against the queued remainders ([`eta_drift_pct`]) and re-scatter the
/// deques when the divergence exceeds `drift_pct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retune {
    /// Fleet-wide chunk count between drift checks.
    pub every_chunks: u64,
    /// Estimated-time-to-drain divergence (percent) that triggers a
    /// re-scatter.
    pub drift_pct: u32,
}

impl Default for Retune {
    fn default() -> Self {
        // A check every 8 chunks keeps the controller off the hot path;
        // 25 % drift is well past split_weighted rounding noise but far
        // below the 100 % a starved worker shows.
        Self { every_chunks: 8, drift_pct: 25 }
    }
}

/// Knobs of a [`Dispatcher::run_deques`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedOptions {
    /// How owners size the chunks they pop.
    pub chunk: ChunkPolicy,
    /// Whether drained workers steal from remote deques.
    pub steal: bool,
    /// Closed-loop adaptive rebalancing; `None` reproduces the static
    /// (tuned-rate) accounting exactly.
    pub retune: Option<Retune>,
}

impl SchedOptions {
    /// The options a [`SchedPolicy`] names, with `chunk` as the fixed
    /// size (queue mode) or guided floor (static/steal modes). Retune
    /// is off; see [`SchedOptions::with_retune`].
    pub fn for_policy(policy: SchedPolicy, chunk: u128) -> Self {
        Self { chunk: policy.chunk_policy(chunk), steal: policy.steals(), retune: None }
    }

    /// The same options with closed-loop retuning enabled.
    pub fn with_retune(mut self, retune: Retune) -> Self {
        self.retune = Some(retune);
        self
    }
}

/// Shared state of one `run_deques` round when retuning is on.
struct RetuneShared {
    rates: RateBook,
    control: RetuneControl,
    drift_pct: f64,
    steal: bool,
    /// Per-slot `(worker label, rate-est gauge, rate-tuned gauge)`:
    /// the elected retune tick publishes the live estimates through
    /// these, so a mid-run scrape sees current rates, not the tuned
    /// priors — the feedstock of the straggler detector.
    slots: Vec<(String, Gauge, Gauge)>,
    /// The live observability plane, when one is attached: flagged
    /// workers get their re-scatter weight halved.
    plane: Option<Arc<LivePlane>>,
}

impl RetuneShared {
    /// Export the live rate estimates (and tuned baselines) as
    /// per-worker gauges — run at every elected retune tick and once
    /// more as the run ends.
    fn publish_rates(&self) {
        for (slot, (_, est, tuned)) in self.slots.iter().enumerate() {
            est.set(self.rates.mkeys(slot));
            tuned.set(self.rates.tuned_mkeys(slot));
        }
    }

    /// Drift check + re-scatter, run by the elected worker. Returns
    /// true when a re-scatter happened.
    fn maybe_rescatter(&self, deques: &IntervalDeques) -> bool {
        let remaining: Vec<u128> = (0..deques.len()).map(|s| deques.remaining(s)).collect();
        let mut rates = self.rates.weights();
        if let Some(plane) = &self.plane {
            // An anomaly-flagged worker is deprioritized beyond what its
            // measured rate already says: halving its weight sheds keys
            // onto healthy slots now instead of waiting for the rate
            // estimate to decay chunk by chunk.
            for (slot, (label, _, _)) in self.slots.iter().enumerate() {
                if plane.is_flagged(label) {
                    rates[slot] *= 0.5;
                }
            }
        }
        // Under a stealing policy an empty slot feeds itself, so only
        // imbalance among loaded slots argues for a re-scatter; under
        // static scatter the empty slots are exactly the starved ones.
        let drift = eta_drift_pct(&remaining, &rates, !self.steal);
        if drift <= self.drift_pct {
            return false;
        }
        let changed = deques.rescatter(&rates);
        if changed {
            self.control.record_rescatter();
        }
        changed
    }
}

/// The one dispatch core every execution path runs through.
pub struct Dispatcher<'a> {
    space: &'a KeySpace,
    targets: &'a TargetSet,
    mode: ScanMode,
    stop: AtomicBool,
    gathered: Mutex<Gathered>,
    progress: Option<ProgressFn<'a>>,
    telemetry: Telemetry,
    instruments: DispatchInstruments,
    cancel_ns: AtomicU64,
}

impl<'a> Dispatcher<'a> {
    /// A dispatcher for one search over `space` against `targets`.
    pub fn new(space: &'a KeySpace, targets: &'a TargetSet, mode: ScanMode) -> Self {
        let telemetry = Telemetry::disabled();
        let instruments = DispatchInstruments::new(&telemetry);
        Self {
            space,
            targets,
            mode,
            stop: AtomicBool::new(false),
            gathered: Mutex::new(Gathered {
                hits: Vec::new(),
                workers: Vec::new(),
                live_tested: Vec::new(),
            }),
            progress: None,
            telemetry,
            instruments,
            cancel_ns: AtomicU64::new(CANCEL_UNSET),
        }
    }

    /// Attach a progress hook, called after every merged scan.
    pub fn on_progress(mut self, hook: impl Fn(&ProgressEvent) + Sync + 'a) -> Self {
        self.progress = Some(Box::new(hook));
        self
    }

    /// Attach a telemetry handle: chunk scans get spans, latency
    /// histograms and live per-worker tested counters, steals get
    /// events, and [`Dispatcher::finish`] flushes the scheduler stats
    /// into labelled counters. Call this before [`Dispatcher::register`]
    /// — registration binds each worker's live counter to the handle
    /// attached at that moment. The default ([`Telemetry::disabled`])
    /// records nothing.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.instruments = DispatchInstruments::new(&telemetry);
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The search mode.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    /// The shared stop flag (for backends driven outside `scan_as`).
    pub fn stop_flag(&self) -> &AtomicBool {
        &self.stop
    }

    /// Raise the stop condition: in-flight scans cancel at their next
    /// poll boundary.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            // Remember when the flag first went up so cancelled scans can
            // report how long the stop condition took to propagate (K_D).
            let now = self.telemetry.now_ns().min(CANCEL_UNSET - 1);
            let _ = self.cancel_ns.compare_exchange(
                CANCEL_UNSET,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// True once any hit has been gathered.
    pub fn any_hits(&self) -> bool {
        !self.gathered.lock().expect("dispatch lock").hits.is_empty()
    }

    /// A point-in-time copy of the gathered per-worker stats — the live
    /// counterpart of [`DispatchReport::stats`]. Round masters diff
    /// successive snapshots to turn each round's `(tested, busy)`
    /// deltas into rate observations.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.gathered.lock().expect("dispatch lock").workers.clone()
    }

    /// Register a worker for accounting; labels appear in
    /// [`DispatchReport::per_worker`] in registration order.
    pub fn register(&self, label: impl Into<String>) -> WorkerId {
        let stats = WorkerStats::new(label);
        let live = self.telemetry.counter(names::KEYS_TESTED, &[("worker", stats.label.as_str())]);
        let mut g = self.gathered.lock().expect("dispatch lock");
        g.workers.push(stats);
        g.live_tested.push(live);
        WorkerId(g.workers.len() - 1)
    }

    /// Scan one interval on `backend`, credited to `worker`: raises the
    /// stop flag on a first-hit match and merges the scan's hits and
    /// tested count. Returns the backend's report so tree frontends can
    /// do their own round bookkeeping.
    pub fn scan_as(
        &self,
        worker: WorkerId,
        backend: &dyn Backend,
        interval: Interval,
    ) -> ScanReport {
        let observed = self.telemetry.is_enabled();
        let scan_start = if observed { self.telemetry.now_ns() } else { 0 };
        let report = backend.scan(self.space, self.targets, interval, &self.stop, self.mode);
        if self.mode.first_hit_only() && !report.hits.is_empty() {
            self.cancel();
        }
        if observed {
            let scan_end = self.telemetry.now_ns();
            self.instruments.chunks.inc();
            self.instruments.scan_ns.observe(scan_end.saturating_sub(scan_start));
            if report.cancelled {
                let raised = self.cancel_ns.load(Ordering::Relaxed);
                if raised != CANCEL_UNSET {
                    self.instruments
                        .cancel_latency_ns
                        .observe(scan_end.saturating_sub(raised));
                }
            }
            self.telemetry
                .push_record(eks_telemetry::TraceRecord {
                    ts_ns: scan_start,
                    dur_ns: scan_end.saturating_sub(scan_start),
                    kind: eks_telemetry::TraceKind::Span,
                    name: names::SPAN_SCAN.to_string(),
                    worker: Some(worker.0),
                    device: None,
                    fields: vec![
                        ("tested".to_string(), report.tested.to_string()),
                        ("hits".to_string(), report.hits.len().to_string()),
                    ],
                });
        }
        let event = {
            let mut g = self.gathered.lock().expect("dispatch lock");
            g.workers[worker.0].tested += report.tested;
            // Mirror the exact accounting into the live labelled counter
            // so scrapes and window flushes see it chunk by chunk.
            g.live_tested[worker.0].add(u64::try_from(report.tested).unwrap_or(u64::MAX));
            g.hits.extend(report.hits.iter().cloned());
            ProgressEvent {
                worker: worker.0,
                tested: report.tested,
                total_tested: g.workers.iter().map(|w| w.tested).sum(),
                total_hits: g.hits.len(),
            }
        };
        if let Some(hook) = &self.progress {
            hook(&event);
        }
        // Give an attached live plane a chance to close a window and run
        // the anomaly pass: a single atomic load when no window is due.
        self.telemetry.observe_plane();
        report
    }

    /// Merge a worker thread's scheduler accounting (called once per
    /// leaf as its run loop exits).
    fn credit_sched(&self, worker: WorkerId, steals: u64, splits: u64, idle_ns: u64, busy_ns: u64) {
        let mut g = self.gathered.lock().expect("dispatch lock");
        let w = &mut g.workers[worker.0];
        w.steals += steals;
        w.splits += splits;
        w.idle_ns += idle_ns;
        w.busy_ns += busy_ns;
    }

    /// The adaptive frontend: one thread per leaf, leaf `i` owning deque
    /// slot `i`. Each worker pops chunks off its own deque (sized by
    /// `opts.chunk`) and scans them via [`Dispatcher::scan_as`]; when
    /// drained it steals the back half of the largest remote deque
    /// (`opts.steal`), or exits under the static policy. The run ends
    /// when every deque is empty or the stop flag is raised; coverage is
    /// exactly-once by construction (the deques partition the interval
    /// and chunks only ever move, never duplicate).
    ///
    /// # Panics
    /// Panics when `leaves` is empty or its length differs from the
    /// number of deque slots.
    pub fn run_deques(&self, leaves: &[DequeLeaf<'_>], deques: &IntervalDeques, opts: SchedOptions) {
        assert!(!leaves.is_empty(), "need at least one leaf");
        assert_eq!(leaves.len(), deques.len(), "one deque slot per leaf");
        let retune = opts.retune.map(|r| {
            let slots = {
                let g = self.gathered.lock().expect("dispatch lock");
                leaves
                    .iter()
                    .map(|l| {
                        let label = g.workers[l.worker.0].label.clone();
                        let est = self
                            .telemetry
                            .gauge(names::WORKER_RATE_EST, &[("worker", label.as_str())]);
                        let tuned = self
                            .telemetry
                            .gauge(names::WORKER_RATE_TUNED, &[("worker", label.as_str())]);
                        (label, est, tuned)
                    })
                    .collect()
            };
            RetuneShared {
                rates: RateBook::new(
                    leaves.iter().map(|l| l.backend.tuned_rate(self.targets.algo())).collect(),
                ),
                control: RetuneControl::new(r.every_chunks),
                drift_pct: f64::from(r.drift_pct),
                steal: opts.steal,
                slots,
                plane: self.telemetry.plane(),
            }
        });
        let retune = retune.as_ref();
        std::thread::scope(|scope| {
            for (slot, leaf) in leaves.iter().enumerate() {
                scope.spawn(move || self.drive_leaf(slot, leaf, deques, opts, retune));
            }
        });
        // Fold the split counters into the owning workers' stats once the
        // threads are done (splits are per-slot; workers may own several
        // slots).
        for (slot, leaf) in leaves.iter().enumerate() {
            self.credit_sched(leaf.worker, 0, deques.splits(slot), 0, 0);
        }
        if let Some(shared) = retune {
            // Final export of the live-rate estimates — the feedstock of
            // the rate-drift column in `eks report`.
            shared.publish_rates();
        }
    }

    /// Scan one chunk inside the worker loop: time it, feed the rate
    /// estimator, run the elected drift check. Returns true when the
    /// worker must exit (stop raised or first hit found).
    fn drive_chunk(
        &self,
        slot: usize,
        leaf: &DequeLeaf<'_>,
        deques: &IntervalDeques,
        retune: Option<&RetuneShared>,
        chunk: Interval,
        busy_ns: &mut u64,
    ) -> bool {
        let t0 = Instant::now();
        let out = self.scan_as(leaf.worker, leaf.backend, chunk);
        let elapsed = t0.elapsed().as_nanos() as u64;
        *busy_ns += elapsed;
        if let Some(shared) = retune {
            shared.rates.observe(slot, out.tested, elapsed);
            if shared.control.tick() {
                shared.publish_rates();
                if !self.stop.load(Ordering::Relaxed) && shared.maybe_rescatter(deques) {
                    self.instruments.rescatters.inc();
                }
            }
        }
        self.stop.load(Ordering::Relaxed)
            || (self.mode.first_hit_only() && !out.hits.is_empty())
    }

    /// One worker's pop/scan/steal loop.
    fn drive_leaf(
        &self,
        slot: usize,
        leaf: &DequeLeaf<'_>,
        deques: &IntervalDeques,
        opts: SchedOptions,
        retune: Option<&RetuneShared>,
    ) {
        let mut steals = 0u64;
        let mut idle_ns = 0u64;
        let mut busy_ns = 0u64;
        'work: loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            loop {
                let chunk = match retune {
                    Some(shared) => {
                        deques.pop_rated(slot, opts.chunk, shared.rates.keys_per_sec(slot))
                    }
                    None => deques.pop(slot, opts.chunk),
                };
                let Some(chunk) = chunk else { break };
                if self.drive_chunk(slot, leaf, deques, retune, chunk, &mut busy_ns) {
                    break 'work;
                }
            }
            if !opts.steal {
                if retune.is_none() {
                    break; // pure static scatter: drained means done
                }
                // Static scatter with retune on: a drained worker waits
                // for the controller to move work its way instead of
                // exiting while the fleet still holds keys. Retirement
                // is the handshake that makes the wait safe: work is
                // only assigned to slots that have not retired.
                let mut spins = 0u32;
                loop {
                    if self.stop.load(Ordering::Relaxed) {
                        break 'work;
                    }
                    if deques.remaining(slot) > 0 {
                        continue 'work;
                    }
                    if deques.total_remaining() == 0 {
                        let _ = deques.retire_if_empty(slot);
                        break 'work;
                    }
                    spins += 1;
                    if spins < 16 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
            }
            let t0 = Instant::now();
            let outcome = deques.try_steal(slot);
            idle_ns += t0.elapsed().as_nanos() as u64;
            match outcome {
                StealOutcome::Stolen { victim } => {
                    steals += 1;
                    self.telemetry
                        .event(names::EVENT_STEAL)
                        .worker(leaf.worker.0)
                        .field("slot", slot)
                        .field("victim", victim)
                        .finish();
                }
                StealOutcome::Handoff { victim, chunk } => {
                    // A concurrent re-scatter refilled this slot while
                    // the steal was in flight; the split half cannot be
                    // installed, so scan it directly.
                    steals += 1;
                    self.telemetry
                        .event(names::EVENT_STEAL)
                        .worker(leaf.worker.0)
                        .field("slot", slot)
                        .field("victim", victim)
                        .finish();
                    if self.drive_chunk(slot, leaf, deques, retune, chunk, &mut busy_ns) {
                        break 'work;
                    }
                }
                StealOutcome::Drained => {
                    // Nothing to steal; exit unless a re-scatter slipped
                    // work into this slot in the meantime.
                    if deques.retire_if_empty(slot) {
                        break;
                    }
                }
            }
        }
        self.credit_sched(leaf.worker, steals, 0, idle_ns, busy_ns);
    }

    /// Even-scatter frontend over one backend: `workers` threads, each
    /// owning a contiguous share of `interval` (clamped to the space),
    /// scheduled per `sched` with `chunk` as the fixed size (queue mode)
    /// or guided floor (static/steal). One worker is registered per
    /// thread, labelled `{backend.name()}#{index}`.
    ///
    /// # Panics
    /// Panics when `workers == 0` or `chunk == 0`.
    pub fn run_workers(
        &self,
        backend: &dyn Backend,
        interval: Interval,
        workers: usize,
        chunk: u64,
        sched: SchedPolicy,
    ) {
        assert!(chunk >= 1, "chunk must be positive");
        let opts = SchedOptions::for_policy(sched, chunk as u128);
        self.run_workers_opts(backend, interval, workers, opts);
    }

    /// [`Dispatcher::run_workers`] with the full [`SchedOptions`] knob
    /// set, for callers that want closed-loop retuning on top of a
    /// named policy.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn run_workers_opts(
        &self,
        backend: &dyn Backend,
        interval: Interval,
        workers: usize,
        opts: SchedOptions,
    ) {
        assert!(workers >= 1, "need at least one worker");
        let clamped = interval.intersect(&self.space.interval());
        let ids: Vec<WorkerId> = (0..workers)
            .map(|w| self.register(format!("{}#{w}", backend.name())))
            .collect();
        let leaves: Vec<DequeLeaf<'_>> =
            ids.iter().map(|&worker| DequeLeaf { worker, backend }).collect();
        let deques = IntervalDeques::scatter(clamped, &vec![1.0; workers]);
        self.run_deques(&leaves, &deques, opts);
    }

    /// The classic work-queue frontend, kept as a thin wrapper over
    /// [`Dispatcher::run_workers`] in [`SchedPolicy::Queue`] mode: even
    /// scatter, fixed `chunk`-sized pops, stealing on. Identifier
    /// intervals are `u128`-native throughout, so arbitrarily huge (if
    /// impractical) spaces need no chunk widening.
    ///
    /// # Panics
    /// Panics when `workers == 0` or `chunk == 0`.
    pub fn run_queue(&self, backend: &dyn Backend, interval: Interval, workers: usize, chunk: u64) {
        self.run_workers(backend, interval, workers, chunk, SchedPolicy::Queue);
    }

    /// Gather + merge: sort hits by identifier, keep only the
    /// lowest-identifier one under first-hit, sum the accounting. Keys
    /// tested flow into their labelled counters live, chunk by chunk in
    /// [`Dispatcher::scan_as`]; the scheduler stats (steals, splits,
    /// busy/idle time) and the hit count are flushed here — once per
    /// run — so the registry total still equals the sum the report
    /// carries.
    pub fn finish(self) -> DispatchReport {
        let g = self.gathered.into_inner().expect("dispatch lock");
        let mut hits = g.hits;
        hits.sort_by_key(|(id, _, _)| *id);
        hits.dedup_by_key(|(id, _, _)| *id);
        if self.mode.first_hit_only() {
            hits.truncate(1);
        }
        if self.telemetry.is_enabled() {
            for w in &g.workers {
                let labels = [("worker", w.label.as_str())];
                self.telemetry.counter(names::STEALS, &labels).add(w.steals);
                self.telemetry.counter(names::SPLITS, &labels).add(w.splits);
                self.telemetry.counter(names::BUSY_NS, &labels).add(w.busy_ns);
                self.telemetry.counter(names::IDLE_NS, &labels).add(w.idle_ns);
            }
            self.telemetry.counter(names::HITS, &[]).add(hits.len() as u64);
        }
        let tested = g.workers.iter().map(|w| w.tested).sum();
        let per_worker = g.workers.iter().map(|w| (w.label.clone(), w.tested)).collect();
        DispatchReport {
            hits,
            tested,
            per_worker,
            stats: g.workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::PollCursor;
    use eks_hashes::HashAlgo;
    use eks_keyspace::{Charset, Order};

    /// Minimal reference backend: the canonical PollCursor walk with the
    /// one-at-a-time test function. (The production scalar backend in
    /// `eks-cracker` is this same shape.)
    struct TestBackend;

    impl Backend for TestBackend {
        fn name(&self) -> String {
            "test".into()
        }

        fn scan(
            &self,
            space: &KeySpace,
            targets: &TargetSet,
            interval: Interval,
            stop: &AtomicBool,
            mode: ScanMode,
        ) -> ScanReport {
            let clamped = interval.intersect(&space.interval());
            let mut cursor = PollCursor::new(clamped, stop);
            let mut report = ScanReport::empty();
            'outer: while let Some(chunk) = cursor.next_chunk() {
                let mut stop_now = false;
                space.iter(chunk).for_each_key(|id, key| {
                    report.tested += 1;
                    if let Some(t) = targets.matches(key) {
                        report.hits.push((id, key.clone(), t));
                        if mode.first_hit_only() {
                            stop_now = true;
                            return false;
                        }
                    }
                    true
                });
                if stop_now {
                    break 'outer;
                }
            }
            report.cancelled = cursor.cancelled();
            report
        }

        fn tuned_rate(&self, _algo: HashAlgo) -> f64 {
            1.0
        }
    }

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 3, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn queue_exhaustive_covers_everything() {
        let s = space();
        let t = targets(&[b"cat", b"a", b"zzz"]);
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        d.run_queue(&TestBackend, s.interval(), 3, 1024);
        let r = d.finish();
        assert_eq!(r.tested, s.size());
        assert_eq!(r.hits.len(), 3);
        let ids: Vec<u128> = r.hits.iter().map(|(id, _, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "hits come back in identifier order");
        assert_eq!(r.per_worker.len(), 3);
        assert_eq!(r.per_worker.iter().map(|(_, c)| *c).sum::<u128>(), r.tested);
        assert!(r.per_worker[0].0.starts_with("test#"));
    }

    #[test]
    fn every_sched_policy_covers_exhaustively() {
        let s = space();
        let t = targets(&[b"cat", b"a", b"zzz"]);
        for sched in SchedPolicy::ALL {
            let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
            d.run_workers(&TestBackend, s.interval(), 3, 512, sched);
            let r = d.finish();
            assert_eq!(r.tested, s.size(), "{sched}");
            assert_eq!(r.hits.len(), 3, "{sched}");
            assert_eq!(r.stats.len(), 3, "{sched}");
            let steals: u64 = r.stats.iter().map(|w| w.steals).sum();
            let splits: u64 = r.stats.iter().map(|w| w.splits).sum();
            assert_eq!(steals, splits, "{sched}: every steal splits exactly one victim");
            if sched == SchedPolicy::Static {
                assert_eq!(steals, 0, "static never steals");
                // Static accounting equals the even split shares.
                let parts = s.interval().split_even(3);
                for (w, part) in r.stats.iter().zip(&parts) {
                    assert_eq!(w.tested, part.len, "static share of {}", w.label);
                }
            }
        }
    }

    #[test]
    fn forced_steal_is_accounted_in_worker_stats() {
        // Leaf 1 starts with an empty deque: everything it tests must
        // come from stealing. (Whether it wins any chunk is a race on
        // one core, but the counters must stay consistent either way.)
        let s = space();
        let t = targets(&[b"zzz"]);
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        let ids = [d.register("owner"), d.register("thief")];
        let leaves: Vec<DequeLeaf<'_>> =
            ids.iter().map(|&worker| DequeLeaf { worker, backend: &TestBackend }).collect();
        let deques =
            IntervalDeques::assign(vec![s.interval(), Interval::new(s.interval().end(), 0)]);
        d.run_deques(
            &leaves,
            &deques,
            SchedOptions { chunk: ChunkPolicy::Guided { min: 256 }, steal: true, retune: None },
        );
        let r = d.finish();
        assert_eq!(r.tested, s.size(), "nothing lost, nothing doubled");
        let thief = &r.stats[1];
        assert_eq!(thief.tested > 0, thief.steals > 0, "thief only tests what it stole");
        let steals: u64 = r.stats.iter().map(|w| w.steals).sum();
        let splits: u64 = r.stats.iter().map(|w| w.splits).sum();
        assert_eq!(steals, splits);
    }

    #[test]
    fn queue_first_hit_keeps_the_lowest_identifier() {
        let s = space();
        let t = targets(&[b"a", b"zzz"]); // identifiers 0 and last
        let d = Dispatcher::new(&s, &t, ScanMode::FirstHit);
        d.run_queue(&TestBackend, s.interval(), 4, 256);
        let r = d.finish();
        assert_eq!(r.hits.len(), 1, "first-hit truncates to one");
        assert_eq!(r.hits[0].1.as_bytes(), b"a", "lowest identifier wins");
    }

    #[test]
    fn tree_dispatch_accounts_per_worker_in_registration_order() {
        let s = space();
        let t = targets(&[b"zzz"]);
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        let left = d.register("node/left");
        let right = d.register("node/right");
        let parts = s.interval().split_even(2);
        std::thread::scope(|scope| {
            scope.spawn(|| d.scan_as(left, &TestBackend, parts[0]));
            scope.spawn(|| d.scan_as(right, &TestBackend, parts[1]));
        });
        let r = d.finish();
        assert_eq!(r.per_worker[0].0, "node/left");
        assert_eq!(r.per_worker[1].0, "node/right");
        assert_eq!(r.per_worker[0].1, parts[0].len);
        assert_eq!(r.per_worker[1].1, parts[1].len);
        assert_eq!(r.tested, s.size());
        assert_eq!(r.hits.len(), 1);
    }

    #[test]
    fn first_hit_scan_raises_the_shared_stop() {
        let s = space();
        let t = targets(&[b"b"]);
        let d = Dispatcher::new(&s, &t, ScanMode::FirstHit);
        let w = d.register("solo");
        let out = d.scan_as(w, &TestBackend, s.interval());
        assert_eq!(out.hits.len(), 1);
        assert!(d.stop_flag().load(Ordering::Relaxed), "stop raised on hit");
        assert!(d.any_hits());
    }

    #[test]
    fn cancel_stops_the_queue_early() {
        let s = space();
        let t = targets(&[b"zzz"]);
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        d.cancel();
        d.run_queue(&TestBackend, s.interval(), 2, 1024);
        let r = d.finish();
        assert_eq!(r.tested, 0, "pre-cancelled queue tests nothing");
        assert!(r.hits.is_empty());
    }

    #[test]
    fn progress_hook_observes_monotone_totals() {
        let s = space();
        let t = targets(&[b"dog"]);
        let events: Mutex<Vec<ProgressEvent>> = Mutex::new(Vec::new());
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive)
            .on_progress(|e| events.lock().unwrap().push(*e));
        d.run_queue(&TestBackend, s.interval(), 1, 4096);
        let r = d.finish();
        let events = events.into_inner().unwrap();
        assert!(!events.is_empty());
        let mut last = 0u128;
        for e in &events {
            assert!(e.total_tested >= last, "total_tested is monotone");
            last = e.total_tested;
        }
        assert_eq!(last, r.tested);
        assert_eq!(events.last().unwrap().total_hits, 1);
    }

    #[test]
    fn huge_intervals_dispatch_without_overflow() {
        // A u128-sized interval with chunk = 1: the deques are
        // u128-native, so no cursor-width widening is needed; the
        // planted key at identifier 0 is found at once.
        let s = KeySpace::new(Charset::alphanumeric(), 1, 20, Order::FirstCharFastest).unwrap();
        let t = targets(&[b"a"]);
        let d = Dispatcher::new(&s, &t, ScanMode::FirstHit);
        d.run_queue(&TestBackend, s.interval(), 2, 1);
        let r = d.finish();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].1.as_bytes(), b"a");
    }

    #[test]
    fn empty_interval_reports_zero() {
        let s = space();
        let t = targets(&[b"dog"]);
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        d.run_queue(&TestBackend, Interval::new(0, 0), 2, 64);
        let r = d.finish();
        assert_eq!(r.tested, 0);
        assert!(r.hits.is_empty());
    }
}
