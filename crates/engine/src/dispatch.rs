//! The single dispatch core: stop flag, hit merge, accounting, hooks.
//!
//! A [`Dispatcher`] owns everything the paper's master does between
//! scatter and merge: the shared stop condition, the gathered hits, the
//! per-worker tested counts, and an optional progress hook. Two
//! frontends drive the same core:
//!
//! * [`Dispatcher::run_queue`] — the fine-grain shape: `workers` threads
//!   pull fixed-size chunks from a shared cursor (dynamic
//!   self-balancing, the degenerate single-level dispatch tree);
//! * [`Dispatcher::scan_as`] — the coarse-grain shape: a caller that
//!   already split the interval by tuned rates (the cluster runtimes)
//!   runs each pre-assigned slice as a registered worker.
//!
//! ## Merge semantics
//!
//! Hits are merged under one lock and sorted by identifier at
//! [`Dispatcher::finish`]; under [`ScanMode::FirstHit`] the report keeps
//! only the lowest-identifier hit, so the winner is deterministic across
//! backends given the same set of reported hits. *Which* hits get
//! reported under first-hit is inherently timing-dependent — a worker
//! may race past the stop flag for up to one poll chunk — therefore
//! `tested` is exact per worker but the total varies run-to-run once a
//! first hit cancels the others. In [`ScanMode::Exhaustive`] every
//! identifier is tested exactly once and `tested` is exact.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use eks_keyspace::{Interval, Key, KeySpace};

use crate::backend::{Backend, ScanMode, ScanReport};
use crate::target::TargetSet;

/// Handle to a registered worker (index into the accounting table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerId(usize);

/// A progress observation, emitted after each merged scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressEvent {
    /// The worker that finished a scan.
    pub worker: usize,
    /// Candidates tested by that scan.
    pub tested: u128,
    /// Candidates tested so far across all workers.
    pub total_tested: u128,
    /// Hits gathered so far across all workers.
    pub total_hits: usize,
}

/// Final state of a dispatch: the paper's gather + merge step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchReport {
    /// Hits in identifier order; truncated to the lowest-identifier hit
    /// under [`ScanMode::FirstHit`].
    pub hits: Vec<(u128, Key, usize)>,
    /// Total candidates tested (sum of `per_worker`).
    pub tested: u128,
    /// Per-worker `(label, tested)` in registration order.
    pub per_worker: Vec<(String, u128)>,
}

struct Gathered {
    hits: Vec<(u128, Key, usize)>,
    workers: Vec<(String, u128)>,
}

type ProgressFn<'a> = Box<dyn Fn(&ProgressEvent) + Sync + 'a>;

/// The one dispatch core every execution path runs through.
pub struct Dispatcher<'a> {
    space: &'a KeySpace,
    targets: &'a TargetSet,
    mode: ScanMode,
    stop: AtomicBool,
    gathered: Mutex<Gathered>,
    progress: Option<ProgressFn<'a>>,
}

impl<'a> Dispatcher<'a> {
    /// A dispatcher for one search over `space` against `targets`.
    pub fn new(space: &'a KeySpace, targets: &'a TargetSet, mode: ScanMode) -> Self {
        Self {
            space,
            targets,
            mode,
            stop: AtomicBool::new(false),
            gathered: Mutex::new(Gathered {
                hits: Vec::new(),
                workers: Vec::new(),
            }),
            progress: None,
        }
    }

    /// Attach a progress hook, called after every merged scan.
    pub fn on_progress(mut self, hook: impl Fn(&ProgressEvent) + Sync + 'a) -> Self {
        self.progress = Some(Box::new(hook));
        self
    }

    /// The search mode.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    /// The shared stop flag (for backends driven outside `scan_as`).
    pub fn stop_flag(&self) -> &AtomicBool {
        &self.stop
    }

    /// Raise the stop condition: in-flight scans cancel at their next
    /// poll boundary.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// True once any hit has been gathered.
    pub fn any_hits(&self) -> bool {
        !self.gathered.lock().expect("dispatch lock").hits.is_empty()
    }

    /// Register a worker for accounting; labels appear in
    /// [`DispatchReport::per_worker`] in registration order.
    pub fn register(&self, label: impl Into<String>) -> WorkerId {
        let mut g = self.gathered.lock().expect("dispatch lock");
        g.workers.push((label.into(), 0));
        WorkerId(g.workers.len() - 1)
    }

    /// Scan one interval on `backend`, credited to `worker`: raises the
    /// stop flag on a first-hit match and merges the scan's hits and
    /// tested count. Returns the backend's report so tree frontends can
    /// do their own round bookkeeping.
    pub fn scan_as(
        &self,
        worker: WorkerId,
        backend: &dyn Backend,
        interval: Interval,
    ) -> ScanReport {
        let report = backend.scan(self.space, self.targets, interval, &self.stop, self.mode);
        if self.mode.first_hit_only() && !report.hits.is_empty() {
            self.cancel();
        }
        let event = {
            let mut g = self.gathered.lock().expect("dispatch lock");
            g.workers[worker.0].1 += report.tested;
            g.hits.extend(report.hits.iter().cloned());
            ProgressEvent {
                worker: worker.0,
                tested: report.tested,
                total_tested: g.workers.iter().map(|(_, t)| *t).sum(),
                total_hits: g.hits.len(),
            }
        };
        if let Some(hook) = &self.progress {
            hook(&event);
        }
        report
    }

    /// The shared-cursor frontend: `workers` threads pull `chunk`-sized
    /// slices of `interval` (clamped to the space) until exhaustion or a
    /// first-hit stop. One worker is registered per thread, labelled
    /// `{backend.name()}#{index}`.
    ///
    /// Intervals can span up to `u128::MAX` identifiers while the cursor
    /// is a `u64`: the effective chunk is widened just enough that the
    /// chunk count always fits, instead of panicking on huge (if
    /// impractical) spaces.
    ///
    /// # Panics
    /// Panics when `workers == 0` or `chunk == 0`.
    pub fn run_queue(&self, backend: &dyn Backend, interval: Interval, workers: usize, chunk: u64) {
        assert!(workers >= 1, "need at least one worker");
        assert!(chunk >= 1, "chunk must be positive");
        let clamped = interval.intersect(&self.space.interval());
        let chunk: u128 = (chunk as u128).max(clamped.len.div_ceil(u64::MAX as u128));
        let total_chunks: u64 = clamped
            .len
            .div_ceil(chunk)
            .try_into()
            .expect("len/ceil(len/u64::MAX) chunks always fit a u64");
        let cursor = AtomicU64::new(0);
        let ids: Vec<WorkerId> = (0..workers)
            .map(|w| self.register(format!("{}#{w}", backend.name())))
            .collect();

        std::thread::scope(|scope| {
            for id in ids {
                let cursor = &cursor;
                scope.spawn(move || loop {
                    if self.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let n = cursor.fetch_add(1, Ordering::Relaxed);
                    if n >= total_chunks {
                        break;
                    }
                    let lo = clamped.start + (n as u128) * chunk;
                    let len = chunk.min(clamped.end() - lo);
                    let out = self.scan_as(id, backend, Interval::new(lo, len));
                    if self.mode.first_hit_only() && !out.hits.is_empty() {
                        break;
                    }
                });
            }
        });
    }

    /// Gather + merge: sort hits by identifier, keep only the
    /// lowest-identifier one under first-hit, sum the accounting.
    pub fn finish(self) -> DispatchReport {
        let g = self.gathered.into_inner().expect("dispatch lock");
        let mut hits = g.hits;
        hits.sort_by_key(|(id, _, _)| *id);
        hits.dedup_by_key(|(id, _, _)| *id);
        if self.mode.first_hit_only() {
            hits.truncate(1);
        }
        let tested = g.workers.iter().map(|(_, t)| *t).sum();
        DispatchReport {
            hits,
            tested,
            per_worker: g.workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::PollCursor;
    use eks_hashes::HashAlgo;
    use eks_keyspace::{Charset, Order};

    /// Minimal reference backend: the canonical PollCursor walk with the
    /// one-at-a-time test function. (The production scalar backend in
    /// `eks-cracker` is this same shape.)
    struct TestBackend;

    impl Backend for TestBackend {
        fn name(&self) -> String {
            "test".into()
        }

        fn scan(
            &self,
            space: &KeySpace,
            targets: &TargetSet,
            interval: Interval,
            stop: &AtomicBool,
            mode: ScanMode,
        ) -> ScanReport {
            let clamped = interval.intersect(&space.interval());
            let mut cursor = PollCursor::new(clamped, stop);
            let mut report = ScanReport::empty();
            'outer: while let Some(chunk) = cursor.next_chunk() {
                let mut stop_now = false;
                space.iter(chunk).for_each_key(|id, key| {
                    report.tested += 1;
                    if let Some(t) = targets.matches(key) {
                        report.hits.push((id, key.clone(), t));
                        if mode.first_hit_only() {
                            stop_now = true;
                            return false;
                        }
                    }
                    true
                });
                if stop_now {
                    break 'outer;
                }
            }
            report.cancelled = cursor.cancelled();
            report
        }

        fn tuned_rate(&self, _algo: HashAlgo) -> f64 {
            1.0
        }
    }

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 3, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn queue_exhaustive_covers_everything() {
        let s = space();
        let t = targets(&[b"cat", b"a", b"zzz"]);
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        d.run_queue(&TestBackend, s.interval(), 3, 1024);
        let r = d.finish();
        assert_eq!(r.tested, s.size());
        assert_eq!(r.hits.len(), 3);
        let ids: Vec<u128> = r.hits.iter().map(|(id, _, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "hits come back in identifier order");
        assert_eq!(r.per_worker.len(), 3);
        assert_eq!(r.per_worker.iter().map(|(_, c)| *c).sum::<u128>(), r.tested);
        assert!(r.per_worker[0].0.starts_with("test#"));
    }

    #[test]
    fn queue_first_hit_keeps_the_lowest_identifier() {
        let s = space();
        let t = targets(&[b"a", b"zzz"]); // identifiers 0 and last
        let d = Dispatcher::new(&s, &t, ScanMode::FirstHit);
        d.run_queue(&TestBackend, s.interval(), 4, 256);
        let r = d.finish();
        assert_eq!(r.hits.len(), 1, "first-hit truncates to one");
        assert_eq!(r.hits[0].1.as_bytes(), b"a", "lowest identifier wins");
    }

    #[test]
    fn tree_dispatch_accounts_per_worker_in_registration_order() {
        let s = space();
        let t = targets(&[b"zzz"]);
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        let left = d.register("node/left");
        let right = d.register("node/right");
        let parts = s.interval().split_even(2);
        std::thread::scope(|scope| {
            scope.spawn(|| d.scan_as(left, &TestBackend, parts[0]));
            scope.spawn(|| d.scan_as(right, &TestBackend, parts[1]));
        });
        let r = d.finish();
        assert_eq!(r.per_worker[0].0, "node/left");
        assert_eq!(r.per_worker[1].0, "node/right");
        assert_eq!(r.per_worker[0].1, parts[0].len);
        assert_eq!(r.per_worker[1].1, parts[1].len);
        assert_eq!(r.tested, s.size());
        assert_eq!(r.hits.len(), 1);
    }

    #[test]
    fn first_hit_scan_raises_the_shared_stop() {
        let s = space();
        let t = targets(&[b"b"]);
        let d = Dispatcher::new(&s, &t, ScanMode::FirstHit);
        let w = d.register("solo");
        let out = d.scan_as(w, &TestBackend, s.interval());
        assert_eq!(out.hits.len(), 1);
        assert!(d.stop_flag().load(Ordering::Relaxed), "stop raised on hit");
        assert!(d.any_hits());
    }

    #[test]
    fn cancel_stops_the_queue_early() {
        let s = space();
        let t = targets(&[b"zzz"]);
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        d.cancel();
        d.run_queue(&TestBackend, s.interval(), 2, 1024);
        let r = d.finish();
        assert_eq!(r.tested, 0, "pre-cancelled queue tests nothing");
        assert!(r.hits.is_empty());
    }

    #[test]
    fn progress_hook_observes_monotone_totals() {
        let s = space();
        let t = targets(&[b"dog"]);
        let events: Mutex<Vec<ProgressEvent>> = Mutex::new(Vec::new());
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive)
            .on_progress(|e| events.lock().unwrap().push(*e));
        d.run_queue(&TestBackend, s.interval(), 1, 4096);
        let r = d.finish();
        let events = events.into_inner().unwrap();
        assert!(!events.is_empty());
        let mut last = 0u128;
        for e in &events {
            assert!(e.total_tested >= last, "total_tested is monotone");
            last = e.total_tested;
        }
        assert_eq!(last, r.tested);
        assert_eq!(events.last().unwrap().total_hits, 1);
    }

    #[test]
    fn queue_widens_chunks_for_huge_intervals() {
        // A u128-sized interval with chunk = 1 must not overflow the u64
        // chunk cursor; the planted key at identifier 0 is found at once.
        let s = KeySpace::new(Charset::alphanumeric(), 1, 20, Order::FirstCharFastest).unwrap();
        let t = targets(&[b"a"]);
        let d = Dispatcher::new(&s, &t, ScanMode::FirstHit);
        d.run_queue(&TestBackend, s.interval(), 2, 1);
        let r = d.finish();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].1.as_bytes(), b"a");
    }

    #[test]
    fn empty_interval_reports_zero() {
        let s = space();
        let t = targets(&[b"dog"]);
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        d.run_queue(&TestBackend, Interval::new(0, 0), 2, 64);
        let r = d.finish();
        assert_eq!(r.tested, 0);
        assert!(r.hits.is_empty());
    }
}
