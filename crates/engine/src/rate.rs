//! Live per-worker throughput estimation: the feedback half of the
//! closed-loop balancer.
//!
//! The paper's balancing step (Section III) sizes every scatter share
//! from a rate measured *once*, in the tuning step (Section VI). That
//! estimate goes stale the moment the test function's per-key cost
//! varies (iterated KDFs) or a neighbour steals cycles. This module
//! closes the loop: every chunk scan already gets timed for the
//! `eks_scan_ns` histogram, and the same `(tested, elapsed)` pair feeds
//! a per-worker EWMA [`RateEstimator`]. A confidence gate keeps cold
//! estimates honest — until a worker has [`WARMUP_SAMPLES`] scans on
//! record, its estimate *is* its tuned rate, so consumers can always
//! read a usable weight.
//!
//! [`RateBook`] is the shared, thread-safe fleet view the dispatcher
//! threads write into and the re-scatter controller reads; the pure
//! helpers ([`eta_drift_pct`]) turn a `(remaining, rate)` snapshot into
//! the divergence figure the controller thresholds on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// EWMA smoothing factor: one third of each new sample, two thirds of
/// history — reactive enough to track a KDF's cost drift within a few
/// chunks, damped enough that one cache-cold chunk does not flip the
/// scatter.
pub const EWMA_ALPHA: f64 = 1.0 / 3.0;

/// Scans a worker must complete before its live estimate is trusted
/// over the tuned rate.
pub const WARMUP_SAMPLES: u64 = 3;

/// Exponentially-weighted moving average of one worker's observed scan
/// throughput, gated by a warm-up count.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    tuned_mkeys: f64,
    est_keys_per_sec: f64,
    samples: u64,
}

impl RateEstimator {
    /// A cold estimator falling back to `tuned_mkeys` (the Section VI
    /// tuning figure) until warmed up. Non-finite or non-positive tuned
    /// rates are clamped to a small positive floor so weights derived
    /// from the estimator never degenerate.
    pub fn new(tuned_mkeys: f64) -> Self {
        let tuned = if tuned_mkeys.is_finite() && tuned_mkeys > 0.0 { tuned_mkeys } else { 0.01 };
        Self { tuned_mkeys: tuned, est_keys_per_sec: 0.0, samples: 0 }
    }

    /// Feed one timed scan: `tested` keys in `dur_ns` nanoseconds.
    /// Zero-duration or zero-work scans are ignored (no information).
    pub fn observe(&mut self, tested: u128, dur_ns: u64) {
        if dur_ns == 0 || tested == 0 {
            return;
        }
        let sample = tested as f64 * 1e9 / dur_ns as f64;
        if !sample.is_finite() {
            return;
        }
        self.est_keys_per_sec = if self.samples == 0 {
            sample
        } else {
            EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * self.est_keys_per_sec
        };
        self.samples += 1;
    }

    /// Scans observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Whether the estimate has cleared the warm-up gate.
    pub fn is_warm(&self) -> bool {
        self.samples >= WARMUP_SAMPLES
    }

    /// The gated rate in MKey/s: the live EWMA once warm, the tuned
    /// fallback before.
    pub fn mkeys(&self) -> f64 {
        if self.is_warm() {
            self.est_keys_per_sec / 1e6
        } else {
            self.tuned_mkeys
        }
    }

    /// The gated rate in keys per second.
    pub fn keys_per_sec(&self) -> f64 {
        self.mkeys() * 1e6
    }

    /// The tuned fallback this estimator was seeded with, MKey/s.
    pub fn tuned_mkeys(&self) -> f64 {
        self.tuned_mkeys
    }
}

/// The fleet's shared rate ledger: one estimator per deque slot,
/// written by the owning worker thread at chunk granularity, read by
/// whichever worker the re-scatter controller elects.
#[derive(Debug)]
pub struct RateBook {
    slots: Vec<Mutex<RateEstimator>>,
}

impl RateBook {
    /// One estimator per slot, seeded with that slot's tuned rate.
    pub fn new(tuned_mkeys: Vec<f64>) -> Self {
        Self { slots: tuned_mkeys.into_iter().map(|t| Mutex::new(RateEstimator::new(t))).collect() }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the book tracks no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Feed one timed scan for `slot`.
    pub fn observe(&self, slot: usize, tested: u128, dur_ns: u64) {
        if let Some(cell) = self.slots.get(slot) {
            cell.lock().expect("rate cell").observe(tested, dur_ns);
        }
    }

    /// The gated rate of `slot` in keys per second.
    pub fn keys_per_sec(&self, slot: usize) -> f64 {
        self.slots.get(slot).map_or(0.0, |c| c.lock().expect("rate cell").keys_per_sec())
    }

    /// The gated rate of `slot` in MKey/s.
    pub fn mkeys(&self, slot: usize) -> f64 {
        self.slots.get(slot).map_or(0.0, |c| c.lock().expect("rate cell").mkeys())
    }

    /// Whether `slot` has cleared its warm-up gate.
    pub fn is_warm(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|c| c.lock().expect("rate cell").is_warm())
    }

    /// The tuned fallback `slot` was seeded with, MKey/s.
    pub fn tuned_mkeys(&self, slot: usize) -> f64 {
        self.slots.get(slot).map_or(0.0, |c| c.lock().expect("rate cell").tuned_mkeys())
    }

    /// The gated per-slot rates as scatter weights (MKey/s).
    pub fn weights(&self) -> Vec<f64> {
        (0..self.slots.len()).map(|s| self.mkeys(s)).collect()
    }
}

/// Estimated-time-to-drain divergence across a fleet snapshot, in
/// percent: `100 × (eta_max − eta_min) / eta_max`, where each slot's
/// `eta` is `remaining / rate`. Zero means the remainders are already
/// rate-proportional (every worker finishes together — the paper's
/// ideal scatter); 100 means at least one worker would sit idle for the
/// whole tail.
///
/// When `include_empty` is false, drained slots are ignored — under a
/// stealing policy an empty slot feeds itself, so only the imbalance
/// *among loaded slots* argues for a re-scatter. Under a static policy
/// the caller passes true: a drained worker stays idle unless the
/// controller moves work to it.
///
/// Returns 0 for degenerate snapshots (no work, no positive rates).
pub fn eta_drift_pct(remaining: &[u128], rates_mkeys: &[f64], include_empty: bool) -> f64 {
    let mut eta_max = 0.0f64;
    let mut eta_min = f64::INFINITY;
    let mut seen = false;
    for (rem, rate) in remaining.iter().zip(rates_mkeys) {
        if !rate.is_finite() || *rate <= 0.0 {
            continue;
        }
        if *rem == 0 && !include_empty {
            continue;
        }
        let eta = *rem as f64 / rate;
        eta_max = eta_max.max(eta);
        eta_min = eta_min.min(eta);
        seen = true;
    }
    if !seen || eta_max <= 0.0 {
        return 0.0;
    }
    100.0 * (eta_max - eta_min) / eta_max
}

/// The re-scatter controller: fleet-wide chunk counter electing one
/// worker to re-evaluate the balance every `every_chunks` pops. The CAS
/// reset guarantees at most one worker wins each election, so rescatter
/// attempts never pile up.
#[derive(Debug)]
pub struct RetuneControl {
    every_chunks: u64,
    chunks: AtomicU64,
    rescatters: AtomicU64,
}

impl RetuneControl {
    /// A controller re-evaluating every `every_chunks` chunk scans
    /// (clamped to at least 1).
    pub fn new(every_chunks: u64) -> Self {
        Self {
            every_chunks: every_chunks.max(1),
            chunks: AtomicU64::new(0),
            rescatters: AtomicU64::new(0),
        }
    }

    /// Count one chunk; true when this call elected the caller to run a
    /// drift check.
    pub fn tick(&self) -> bool {
        let n = self.chunks.fetch_add(1, Ordering::Relaxed) + 1;
        // Only one caller observes each exact multiple, so the fetch_add
        // itself is the election.
        n.is_multiple_of(self.every_chunks)
    }

    /// Record one performed re-scatter.
    pub fn record_rescatter(&self) {
        self.rescatters.fetch_add(1, Ordering::Relaxed);
    }

    /// Re-scatters performed so far.
    pub fn rescatters(&self) -> u64 {
        self.rescatters.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_estimator_reports_the_tuned_rate() {
        let e = RateEstimator::new(12.5);
        assert!(!e.is_warm());
        assert_eq!(e.mkeys(), 12.5);
        assert_eq!(e.keys_per_sec(), 12.5e6);
    }

    #[test]
    fn warmup_gate_opens_after_three_samples() {
        let mut e = RateEstimator::new(1.0);
        // 2e6 keys/s observed, tuned says 1e6.
        for _ in 0..WARMUP_SAMPLES {
            assert_eq!(e.mkeys(), 1.0, "cold estimate falls back to tuned");
            e.observe(2_000_000, 1_000_000_000);
        }
        assert!(e.is_warm());
        assert!((e.mkeys() - 2.0).abs() < 1e-9, "warm estimate tracks observations");
    }

    #[test]
    fn ewma_converges_toward_a_rate_step() {
        let mut e = RateEstimator::new(1.0);
        for _ in 0..10 {
            e.observe(4_000_000, 1_000_000_000);
        }
        // Step down: cost quadruples.
        for _ in 0..20 {
            e.observe(1_000_000, 1_000_000_000);
        }
        assert!((e.mkeys() - 1.0).abs() < 0.01, "EWMA follows the step, got {}", e.mkeys());
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut e = RateEstimator::new(3.0);
        e.observe(0, 100);
        e.observe(100, 0);
        assert_eq!(e.samples(), 0);
        assert_eq!(e.mkeys(), 3.0);
    }

    #[test]
    fn bad_tuned_rates_are_clamped_positive() {
        for bad in [0.0, -4.0, f64::NAN, f64::INFINITY] {
            let e = RateEstimator::new(bad);
            assert!(e.mkeys() > 0.0, "tuned {bad} must clamp positive");
        }
    }

    #[test]
    fn rate_book_gates_per_slot() {
        let book = RateBook::new(vec![2.0, 8.0]);
        assert_eq!(book.weights(), vec![2.0, 8.0], "cold book returns tuned weights");
        for _ in 0..WARMUP_SAMPLES {
            book.observe(0, 4_000_000, 1_000_000_000);
        }
        assert!(book.is_warm(0));
        assert!(!book.is_warm(1));
        let w = book.weights();
        assert!((w[0] - 4.0).abs() < 1e-9, "slot 0 is live");
        assert_eq!(w[1], 8.0, "slot 1 still tuned");
    }

    #[test]
    fn eta_drift_is_zero_for_proportional_remainders() {
        // remaining 4:1 over rates 4:1 — both drain together.
        assert_eq!(eta_drift_pct(&[4000, 1000], &[4.0, 1.0], true), 0.0);
    }

    #[test]
    fn eta_drift_flags_a_starved_fast_worker() {
        // The fast worker is empty while the slow one holds everything.
        let d = eta_drift_pct(&[0, 8000], &[4.0, 1.0], true);
        assert!((d - 100.0).abs() < 1e-9, "got {d}");
        // Under stealing, the empty slot is not an argument to rescatter.
        assert_eq!(eta_drift_pct(&[0, 8000], &[4.0, 1.0], false), 0.0);
    }

    #[test]
    fn eta_drift_handles_degenerate_inputs() {
        assert_eq!(eta_drift_pct(&[], &[], true), 0.0);
        assert_eq!(eta_drift_pct(&[100], &[0.0], true), 0.0);
        assert_eq!(eta_drift_pct(&[0, 0], &[1.0, 1.0], true), 0.0);
    }

    #[test]
    fn retune_control_elects_exactly_one_caller_per_period() {
        let c = RetuneControl::new(4);
        let wins: usize = (0..16).map(|_| usize::from(c.tick())).sum();
        assert_eq!(wins, 4, "one election per 4 ticks");
        c.record_rescatter();
        assert_eq!(c.rescatters(), 1);
    }
}
