//! Hash targets — moved down into `eks-engine` so the backend layer can
//! be implemented below this crate; re-exported here for compatibility.

pub use eks_engine::target::{HashTarget, TargetSet};
