//! Hash targets: what the test function `C` compares against.
//!
//! Supports the paper's auditing scenario: one or many digests, optionally
//! *salted* (Section I: salting defeats lookup/rainbow tables but "does
//! not increment the search space since the random part of the string ...
//! is known by definition" — the salt is simply concatenated before
//! hashing).

use eks_hashes::HashAlgo;
use eks_keyspace::Key;

/// A single hash target with optional salt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashTarget {
    algo: HashAlgo,
    digest: Vec<u8>,
    salt_prefix: Vec<u8>,
    salt_suffix: Vec<u8>,
}

impl HashTarget {
    /// An unsalted target.
    ///
    /// # Panics
    /// Panics when the digest length does not match the algorithm.
    pub fn new(algo: HashAlgo, digest: &[u8]) -> Self {
        assert_eq!(digest.len(), algo.digest_len(), "digest length mismatch");
        Self { algo, digest: digest.to_vec(), salt_prefix: Vec::new(), salt_suffix: Vec::new() }
    }

    /// A salted target: the stored digest is `hash(prefix ‖ key ‖ suffix)`.
    pub fn salted(algo: HashAlgo, digest: &[u8], prefix: &[u8], suffix: &[u8]) -> Self {
        let mut t = Self::new(algo, digest);
        t.salt_prefix = prefix.to_vec();
        t.salt_suffix = suffix.to_vec();
        t
    }

    /// Build a target from a plaintext (for tests and examples).
    pub fn from_plaintext(algo: HashAlgo, plaintext: &[u8]) -> Self {
        Self::new(algo, &algo.hash_long(plaintext))
    }

    /// The algorithm.
    pub fn algo(&self) -> HashAlgo {
        self.algo
    }

    /// The stored digest.
    pub fn digest(&self) -> &[u8] {
        &self.digest
    }

    /// Whether a salt is attached.
    pub fn is_salted(&self) -> bool {
        !self.salt_prefix.is_empty() || !self.salt_suffix.is_empty()
    }

    /// The test function `C`: does this candidate produce the digest?
    pub fn matches(&self, key: &Key) -> bool {
        if self.is_salted() {
            let mut msg =
                Vec::with_capacity(self.salt_prefix.len() + key.len() + self.salt_suffix.len());
            msg.extend_from_slice(&self.salt_prefix);
            msg.extend_from_slice(key.as_bytes());
            msg.extend_from_slice(&self.salt_suffix);
            self.algo.hash_long(&msg) == self.digest
        } else {
            self.algo.hash(key.as_bytes()) == self.digest
        }
    }
}

/// Several targets of the same algorithm, tested together — the audit
/// scenario where one sweep cracks a whole password table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetSet {
    algo: HashAlgo,
    /// Sorted digests for binary search.
    digests: Vec<Vec<u8>>,
}

impl TargetSet {
    /// Build from digests (all must match the algorithm's length).
    ///
    /// # Panics
    /// Panics on a digest of the wrong length.
    pub fn new(algo: HashAlgo, digests: &[Vec<u8>]) -> Self {
        for d in digests {
            assert_eq!(d.len(), algo.digest_len(), "digest length mismatch");
        }
        let mut digests = digests.to_vec();
        digests.sort();
        digests.dedup();
        Self { algo, digests }
    }

    /// Number of distinct targets.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// True when there are no targets.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// The algorithm.
    pub fn algo(&self) -> HashAlgo {
        self.algo
    }

    /// Test a candidate; returns the index of the matched digest.
    pub fn matches(&self, key: &Key) -> Option<usize> {
        let h = self.algo.hash(key.as_bytes());
        self.digests.binary_search(&h).ok()
    }

    /// The digest at `index` (as returned by [`TargetSet::matches`]).
    pub fn digest(&self, index: usize) -> &[u8] {
        &self.digests[index]
    }

    /// Iterate over the stored digests (sorted order).
    pub fn iter_digests(&self) -> impl Iterator<Item = &[u8]> {
        self.digests.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsalted_match() {
        let t = HashTarget::from_plaintext(HashAlgo::Md5, b"abc");
        assert!(t.matches(&Key::from_bytes(b"abc")));
        assert!(!t.matches(&Key::from_bytes(b"abd")));
        assert!(!t.is_salted());
    }

    #[test]
    fn salted_match() {
        let algo = HashAlgo::Sha1;
        let digest = algo.hash_long(b"PRE-hunter2-POST");
        let t = HashTarget::salted(algo, &digest, b"PRE-", b"-POST");
        assert!(t.is_salted());
        assert!(t.matches(&Key::from_bytes(b"hunter2")));
        assert!(!t.matches(&Key::from_bytes(b"hunter3")));
    }

    #[test]
    fn salting_changes_the_digest() {
        let plain = HashTarget::from_plaintext(HashAlgo::Md5, b"pw");
        let salted_digest = HashAlgo::Md5.hash_long(b"saltpw");
        assert_ne!(plain.digest(), &salted_digest[..]);
    }

    #[test]
    fn target_set_finds_members() {
        let algo = HashAlgo::Md5;
        let digests: Vec<Vec<u8>> =
            [&b"one"[..], b"two", b"three"].iter().map(|p| algo.hash_long(p)).collect();
        let set = TargetSet::new(algo, &digests);
        assert_eq!(set.len(), 3);
        assert!(set.matches(&Key::from_bytes(b"two")).is_some());
        assert!(set.matches(&Key::from_bytes(b"four")).is_none());
        let idx = set.matches(&Key::from_bytes(b"three")).unwrap();
        assert_eq!(set.digest(idx), &algo.hash_long(b"three")[..]);
    }

    #[test]
    fn target_set_dedups() {
        let algo = HashAlgo::Md5;
        let d = algo.hash_long(b"dup");
        let set = TargetSet::new(algo, &[d.clone(), d]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    #[should_panic]
    fn wrong_length_digest_rejected() {
        HashTarget::new(HashAlgo::Md5, &[0u8; 20]);
    }
}
