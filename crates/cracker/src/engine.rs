//! Sequential interval scanning with cooperative cancellation.
//!
//! One call = one node's `K_search` (Section III): generate `f(start)`
//! once, walk the interval with the `next` operator, test every
//! candidate, and poll a stop flag between fixed-size chunks so a
//! dispatcher can cancel in-flight work once another node finds the key.
//!
//! The chunk/poll/cancel loop itself lives in `eks-engine`
//! ([`PollCursor`]) — this module supplies only the scalar test body.

use std::sync::atomic::AtomicBool;

use eks_engine::PollCursor;
use eks_keyspace::{Interval, KeySpace};

use crate::target::TargetSet;

/// Candidates between stop-flag polls (re-exported from the dispatch
/// core, the single source of truth for cancellation latency).
pub use eks_engine::POLL_CHUNK;

/// Result of scanning one interval (the engine layer's [`ScanReport`],
/// under its historical name).
///
/// [`ScanReport`]: eks_engine::ScanReport
pub use eks_engine::ScanReport as CrackOutcome;

/// Scan `interval` against a target set, stopping early when `stop` is
/// raised or — if `first_hit_only` — at the first match.
pub fn crack_interval(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    stop: &AtomicBool,
    first_hit_only: bool,
) -> CrackOutcome {
    let clamped = interval.intersect(&space.interval());
    let mut cursor = PollCursor::new(clamped, stop);
    let mut out = CrackOutcome::empty();
    'outer: while let Some(chunk) = cursor.next_chunk() {
        let mut stop_now = false;
        space.iter(chunk).for_each_key(|id, key| {
            out.tested += 1;
            if let Some(t) = targets.matches(key) {
                out.hits.push((id, key.clone(), t));
                if first_hit_only {
                    stop_now = true;
                    return false;
                }
            }
            true
        });
        if stop_now {
            break 'outer;
        }
    }
    out.cancelled = cursor.cancelled();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_hashes::HashAlgo;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn finds_single_target() {
        let s = space();
        let t = targets(&[b"dog"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval(&s, &t, s.interval(), &stop, true);
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].1.as_bytes(), b"dog");
        assert!(!out.cancelled);
        // First-hit scan stops at the hit.
        assert_eq!(out.tested, out.hits[0].0 + 1);
    }

    #[test]
    fn finds_all_targets_when_not_first_hit() {
        let s = space();
        let t = targets(&[b"cat", b"dog", b"pig"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval(&s, &t, s.interval(), &stop, false);
        assert_eq!(out.hits.len(), 3);
        let found: Vec<&[u8]> = out.hits.iter().map(|(_, k, _)| k.as_bytes()).collect();
        // Hits come back in identifier order.
        let mut ids: Vec<u128> = out.hits.iter().map(|(id, _, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        ids.dedup();
        assert_eq!(ids.len(), 3);
        for w in [&b"cat"[..], b"dog", b"pig"] {
            assert!(found.contains(&w), "{w:?}");
        }
        assert_eq!(out.tested, s.size());
    }

    #[test]
    fn pre_raised_stop_tests_nothing() {
        let s = space();
        let t = targets(&[b"dog"]);
        let stop = AtomicBool::new(true);
        let out = crack_interval(&s, &t, s.interval(), &stop, true);
        assert!(out.cancelled);
        assert_eq!(out.tested, 0);
        assert!(out.hits.is_empty());
    }

    #[test]
    fn interval_is_clamped_to_space() {
        let s = space();
        let t = targets(&[b"zzzz"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval(&s, &t, Interval::new(0, u64::MAX as u128), &stop, false);
        assert_eq!(out.tested, s.size());
        assert_eq!(out.hits.len(), 1);
    }

    #[test]
    fn empty_interval() {
        let s = space();
        let t = targets(&[b"dog"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval(&s, &t, Interval::new(5, 0), &stop, true);
        assert_eq!(out.tested, 0);
        assert!(out.hits.is_empty());
        assert!(!out.cancelled);
    }

    #[test]
    fn hit_exactly_at_interval_boundaries() {
        let s = space();
        let t = targets(&[b"dog"]);
        let id = s.id_of(&eks_keyspace::Key::from_bytes(b"dog")).unwrap();
        let stop = AtomicBool::new(false);
        // Interval starting exactly at the hit.
        let out = crack_interval(&s, &t, Interval::new(id, 1), &stop, true);
        assert_eq!(out.hits.len(), 1);
        // Interval ending just before the hit.
        let out = crack_interval(&s, &t, Interval::new(0, id), &stop, true);
        assert!(out.hits.is_empty());
    }
}
