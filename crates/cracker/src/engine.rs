//! Sequential interval scanning with cooperative cancellation.
//!
//! One call = one node's `K_search` (Section III): generate `f(start)`
//! once, walk the interval with the `next` operator, test every
//! candidate, and poll a stop flag between fixed-size chunks so a
//! dispatcher can cancel in-flight work once another node finds the key.

use std::sync::atomic::{AtomicBool, Ordering};

use eks_keyspace::{Interval, Key, KeySpace};

use crate::target::TargetSet;

/// Candidates between stop-flag polls. Small enough for sub-millisecond
/// cancellation latency, large enough to amortize the atomic load.
pub const POLL_CHUNK: u128 = 4096;

/// Result of scanning one interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrackOutcome {
    /// `(identifier, key, target index)` per hit, in identifier order.
    pub hits: Vec<(u128, Key, usize)>,
    /// Candidates actually tested.
    pub tested: u128,
    /// True when the scan stopped on the stop flag rather than exhaustion
    /// or a first-hit return.
    pub cancelled: bool,
}

/// Scan `interval` against a target set, stopping early when `stop` is
/// raised or — if `first_hit_only` — at the first match.
pub fn crack_interval(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    stop: &AtomicBool,
    first_hit_only: bool,
) -> CrackOutcome {
    let mut hits = Vec::new();
    let mut tested: u128 = 0;
    let mut cancelled = false;
    let clamped = interval.intersect(&space.interval());
    let mut remaining = clamped;
    'outer: while !remaining.is_empty() {
        if stop.load(Ordering::Relaxed) {
            cancelled = true;
            break;
        }
        let chunk = remaining.take_front(POLL_CHUNK);
        let mut stop_now = false;
        space.iter(chunk).for_each_key(|id, key| {
            tested += 1;
            if let Some(t) = targets.matches(key) {
                hits.push((id, key.clone(), t));
                if first_hit_only {
                    stop_now = true;
                    return false;
                }
            }
            true
        });
        if stop_now {
            break 'outer;
        }
    }
    CrackOutcome { hits, tested, cancelled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_hashes::HashAlgo;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn finds_single_target() {
        let s = space();
        let t = targets(&[b"dog"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval(&s, &t, s.interval(), &stop, true);
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].1.as_bytes(), b"dog");
        assert!(!out.cancelled);
        // First-hit scan stops at the hit.
        assert_eq!(out.tested, out.hits[0].0 + 1);
    }

    #[test]
    fn finds_all_targets_when_not_first_hit() {
        let s = space();
        let t = targets(&[b"cat", b"dog", b"pig"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval(&s, &t, s.interval(), &stop, false);
        assert_eq!(out.hits.len(), 3);
        let found: Vec<&[u8]> = out.hits.iter().map(|(_, k, _)| k.as_bytes()).collect();
        // Hits come back in identifier order.
        let mut ids: Vec<u128> = out.hits.iter().map(|(id, _, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        ids.dedup();
        assert_eq!(ids.len(), 3);
        for w in [&b"cat"[..], b"dog", b"pig"] {
            assert!(found.contains(&w), "{w:?}");
        }
        assert_eq!(out.tested, s.size());
    }

    #[test]
    fn pre_raised_stop_tests_nothing() {
        let s = space();
        let t = targets(&[b"dog"]);
        let stop = AtomicBool::new(true);
        let out = crack_interval(&s, &t, s.interval(), &stop, true);
        assert!(out.cancelled);
        assert_eq!(out.tested, 0);
        assert!(out.hits.is_empty());
    }

    #[test]
    fn interval_is_clamped_to_space() {
        let s = space();
        let t = targets(&[b"zzzz"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval(&s, &t, Interval::new(0, u64::MAX as u128), &stop, false);
        assert_eq!(out.tested, s.size());
        assert_eq!(out.hits.len(), 1);
    }

    #[test]
    fn empty_interval() {
        let s = space();
        let t = targets(&[b"dog"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval(&s, &t, Interval::new(5, 0), &stop, true);
        assert_eq!(out.tested, 0);
        assert!(out.hits.is_empty());
        assert!(!out.cancelled);
    }

    #[test]
    fn hit_exactly_at_interval_boundaries() {
        let s = space();
        let t = targets(&[b"dog"]);
        let id = s.id_of(&eks_keyspace::Key::from_bytes(b"dog")).unwrap();
        let stop = AtomicBool::new(false);
        // Interval starting exactly at the hit.
        let out = crack_interval(&s, &t, Interval::new(id, 1), &stop, true);
        assert_eq!(out.hits.len(), 1);
        // Interval ending just before the hit.
        let out = crack_interval(&s, &t, Interval::new(0, id), &stop, true);
        assert!(out.hits.is_empty());
    }
}
