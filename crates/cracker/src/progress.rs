//! Throughput metering — the tuning step's measurement primitive.

use std::time::Instant;

/// Accumulates tested-candidate counts and reports MKey/s.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    started: Instant,
    tested: u128,
}

impl ThroughputMeter {
    /// Start a meter.
    pub fn start() -> Self {
        Self { started: Instant::now(), tested: 0 }
    }

    /// Record `n` tested candidates.
    pub fn record(&mut self, n: u128) {
        self.tested += n;
    }

    /// Candidates recorded so far.
    pub fn tested(&self) -> u128 {
        self.tested
    }

    /// Elapsed seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Throughput in million key tests per second.
    pub fn mkeys_per_s(&self) -> f64 {
        self.tested as f64 / self.elapsed_s().max(1e-9) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut m = ThroughputMeter::start();
        m.record(10);
        m.record(5);
        assert_eq!(m.tested(), 15);
        assert!(m.elapsed_s() >= 0.0);
        assert!(m.mkeys_per_s() >= 0.0);
    }
}
