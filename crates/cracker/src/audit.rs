//! Audit sessions (paper §I: "in some working environments, it is a
//! standard procedure to make periodic cracking tests, called auditing
//! sessions, to assess the reliability of the employees' passwords").
//!
//! An [`AuditSession`] sweeps one keyspace against a whole table of
//! digests, checkpointing between chunks so multi-hour audits survive
//! interruption, and produces the report a security team actually wants:
//! which accounts fell, how quickly, and how much of the space was
//! needed.

use std::time::Instant;

use eks_hashes::{to_hex, HashAlgo};
use eks_keyspace::{Key, KeySpace};

use crate::engine::crack_interval;
use crate::resume::Checkpoint;
use crate::target::TargetSet;

/// One entry of the audited table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Account label ("alice", "uid 1007", ...).
    pub account: String,
    /// The stored digest.
    pub digest: Vec<u8>,
}

/// The outcome for one account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// Account label.
    pub account: String,
    /// Recovered plaintext.
    pub password: Key,
    /// Identifier at which it fell (a proxy for password strength within
    /// this keyspace).
    pub found_at_id: u128,
}

/// Final report of an audit sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Cracked accounts, in the order they fell.
    pub findings: Vec<AuditFinding>,
    /// Accounts that survived the sweep.
    pub survivors: Vec<String>,
    /// Candidates tested.
    pub tested: u128,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
}

impl AuditReport {
    /// Fraction of accounts cracked.
    pub fn crack_rate(&self) -> f64 {
        let total = self.findings.len() + self.survivors.len();
        if total == 0 {
            return 0.0;
        }
        self.findings.len() as f64 / total as f64
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "audit: {}/{} accounts cracked ({:.0}%) after {} candidates in {:.2} s",
            self.findings.len(),
            self.findings.len() + self.survivors.len(),
            self.crack_rate() * 100.0,
            self.tested,
            self.elapsed_s
        )
        .expect("write to string");
        for f in &self.findings {
            writeln!(out, "  CRACKED {:<12} -> {:?} (id {})", f.account, f.password.to_string(), f.found_at_id)
                .expect("write to string");
        }
        for s in &self.survivors {
            writeln!(out, "  ok      {s}").expect("write to string");
        }
        out
    }
}

/// A resumable audit over one keyspace.
#[derive(Debug, Clone)]
pub struct AuditSession {
    algo: HashAlgo,
    entries: Vec<AuditEntry>,
    checkpoint: Checkpoint,
    /// Chunk size between checkpoint updates.
    chunk: u128,
}

impl AuditSession {
    /// Start an audit of `entries` over `space`.
    ///
    /// # Panics
    /// Panics when a digest's length does not match `algo`.
    pub fn new(algo: HashAlgo, entries: Vec<AuditEntry>, space: &KeySpace) -> Self {
        for e in &entries {
            assert_eq!(e.digest.len(), algo.digest_len(), "digest length for {}", e.account);
        }
        Self {
            algo,
            entries,
            checkpoint: Checkpoint::new(space.interval()),
            chunk: 1 << 16,
        }
    }

    /// Resume from a serialized checkpoint.
    pub fn resume(
        algo: HashAlgo,
        entries: Vec<AuditEntry>,
        checkpoint_text: &str,
    ) -> Result<Self, String> {
        Ok(Self {
            algo,
            entries,
            checkpoint: Checkpoint::deserialize(checkpoint_text)?,
            chunk: 1 << 16,
        })
    }

    /// Set the candidates scanned between checkpoint persists.
    ///
    /// # Panics
    /// Panics when `chunk == 0`.
    pub fn with_chunk(mut self, chunk: u128) -> Self {
        assert!(chunk > 0);
        self.chunk = chunk;
        self
    }

    /// Current checkpoint, serializable between chunks.
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }

    /// Run until the space is exhausted or every account is cracked.
    /// `persist` is called with the serialized checkpoint after every
    /// chunk (write it to disk in a real deployment).
    pub fn run<F: FnMut(&str)>(&mut self, space: &KeySpace, mut persist: F) -> AuditReport {
        let start = Instant::now();
        let mut findings: Vec<AuditFinding> = Vec::new();
        let mut tested: u128 = 0;
        let stop = std::sync::atomic::AtomicBool::new(false);
        // Map digest -> accounts (duplicate passwords are common).
        let digests: Vec<Vec<u8>> = self.entries.iter().map(|e| e.digest.clone()).collect();
        let mut remaining_set = TargetSet::new(self.algo, &digests);

        while let Some(work) = self.checkpoint.take_work(self.chunk) {
            if remaining_set.is_empty() {
                break;
            }
            let out = crack_interval(space, &remaining_set, work, &stop, false);
            tested += out.tested;
            if !out.hits.is_empty() {
                // Indices refer to the set used for this scan; resolve all
                // of them before rebuilding it.
                let mut cracked_digests: Vec<Vec<u8>> = Vec::new();
                for (id, key, t) in out.hits {
                    let hit_digest = remaining_set.digest(t).to_vec();
                    for e in self.entries.iter().filter(|e| e.digest == hit_digest) {
                        findings.push(AuditFinding {
                            account: e.account.clone(),
                            password: key.clone(),
                            found_at_id: id,
                        });
                    }
                    cracked_digests.push(hit_digest);
                }
                // Rebuild the set without the cracked digests so the scan
                // cheapens as accounts fall.
                let left: Vec<Vec<u8>> = remaining_set
                    .iter_digests()
                    .filter(|d| !cracked_digests.iter().any(|c| c.as_slice() == *d))
                    .map(|d| d.to_vec())
                    .collect();
                remaining_set = TargetSet::new(self.algo, &left);
            }
            self.checkpoint.complete(work);
            persist(&self.checkpoint.serialize());
        }

        let cracked: Vec<&str> = findings.iter().map(|f| f.account.as_str()).collect();
        let survivors = self
            .entries
            .iter()
            .map(|e| e.account.clone())
            .filter(|a| !cracked.contains(&a.as_str()))
            .collect();
        AuditReport {
            findings,
            survivors,
            tested,
            elapsed_s: start.elapsed().as_secs_f64(),
        }
    }

    /// Accounts in the table.
    pub fn accounts(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.account.as_str())
    }

    /// Pretty-print an entry table (account, digest hex).
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            writeln!(out, "{:<16} {}", e.account, to_hex(&e.digest)).expect("write to string");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 3, Order::FirstCharFastest).unwrap()
    }

    fn entries(pairs: &[(&str, &[u8])]) -> Vec<AuditEntry> {
        pairs
            .iter()
            .map(|(a, pw)| AuditEntry {
                account: a.to_string(),
                digest: HashAlgo::Md5.hash(pw),
            })
            .collect()
    }

    #[test]
    fn audit_cracks_weak_and_spares_strong() {
        let s = space();
        // "zzzzzz" is outside the 1..=3 space: a survivor.
        let table = entries(&[("alice", b"cab"), ("bob", b"zz"), ("carol", b"zzzzzz")]);
        let mut session = AuditSession::new(HashAlgo::Md5, table, &s);
        let report = session.run(&s, |_| {});
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.survivors, vec!["carol".to_string()]);
        assert!((report.crack_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.tested, s.size(), "survivors force a full sweep");
    }

    #[test]
    fn duplicate_passwords_crack_together() {
        let s = space();
        let table = entries(&[("u1", b"dog"), ("u2", b"dog"), ("u3", b"cat")]);
        let mut session = AuditSession::new(HashAlgo::Md5, table, &s);
        let report = session.run(&s, |_| {});
        assert_eq!(report.findings.len(), 3);
        let dogs: Vec<&str> = report
            .findings
            .iter()
            .filter(|f| f.password.as_bytes() == b"dog")
            .map(|f| f.account.as_str())
            .collect();
        assert_eq!(dogs.len(), 2);
    }

    #[test]
    fn audit_stops_early_when_everything_falls() {
        let s = space();
        // Both targets are very early keys.
        let table = entries(&[("a", b"a"), ("b", b"b")]);
        let mut session = AuditSession::new(HashAlgo::Md5, table, &s).with_chunk(512);
        let report = session.run(&s, |_| {});
        assert_eq!(report.survivors.len(), 0);
        assert!(report.tested < s.size(), "tested {} of {}", report.tested, s.size());
    }

    #[test]
    fn checkpoint_resume_finds_the_same_results() {
        let s = space();
        let table = entries(&[("alice", b"cab"), ("bob", b"zzz")]);
        // Full run as the reference.
        let mut full = AuditSession::new(HashAlgo::Md5, table.clone(), &s).with_chunk(2000);
        let reference = full.run(&s, |_| {});
        // Interrupted run: scan one 2000-key chunk manually, persist, drop.
        let mut first = AuditSession::new(HashAlgo::Md5, table.clone(), &s);
        let work = first.checkpoint.take_work(2000).unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let digests: Vec<Vec<u8>> = table.iter().map(|e| e.digest.clone()).collect();
        let set = TargetSet::new(HashAlgo::Md5, &digests);
        let out = crack_interval(&s, &set, work, &stop, false);
        let mut accounts: Vec<String> = out
            .hits
            .iter()
            .flat_map(|(_, _, t)| {
                let d = set.digest(*t);
                table
                    .iter()
                    .filter(move |e| e.digest == d)
                    .map(|e| e.account.clone())
            })
            .collect();
        first.checkpoint.complete(work);
        let saved = first.checkpoint.serialize();
        // Resume from the save and finish.
        let mut resumed = AuditSession::resume(HashAlgo::Md5, table, &saved)
            .unwrap()
            .with_chunk(2000);
        let rest = resumed.run(&s, |_| {});
        accounts.extend(rest.findings.iter().map(|f| f.account.clone()));
        accounts.sort();
        let mut want: Vec<String> =
            reference.findings.iter().map(|f| f.account.clone()).collect();
        want.sort();
        assert_eq!(accounts, want);
    }

    #[test]
    fn render_outputs_are_informative() {
        let s = space();
        let table = entries(&[("alice", b"me")]);
        let mut session = AuditSession::new(HashAlgo::Md5, table, &s);
        assert!(session.render_table().contains("alice"));
        let report = session.run(&s, |_| {});
        let text = report.render();
        assert!(text.contains("CRACKED"));
        assert!(text.contains("alice"));
    }
}
