//! CPU implementations of the engine-layer [`Backend`] trait.
//!
//! * [`ScalarBackend`] — the one-candidate-at-a-time reference path
//!   ([`crate::engine::crack_interval`]);
//! * [`LaneBackend`] — the lane-batched SIMD path
//!   ([`crate::batch::crack_interval_batched`]), the CPU stand-in for a
//!   warp of GPU threads.
//!
//! `tuned_rate` is a *measured* throughput (the paper's tuning step run
//! on the host): a short timed sweep per `(lanes, algo)`, cached for the
//! process lifetime so the balancing step stays cheap.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use eks_engine::{Backend, ScanMode, ScanReport};
use eks_hashes::HashAlgo;
use eks_keyspace::{Charset, Interval, KeySpace, Order};
use eks_telemetry::Telemetry;

use crate::batch::{crack_interval_batched, crack_interval_batched_observed, Lanes};
use crate::engine::crack_interval;
use crate::target::TargetSet;

/// The scalar reference backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> String {
        "scalar".into()
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport {
        crack_interval(space, targets, interval, stop, mode.first_hit_only())
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        measured_rate(Lanes::Scalar, algo)
    }
}

/// The lane-batched SIMD backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneBackend {
    /// Lane width of the batched test path.
    pub lanes: Lanes,
}

impl LaneBackend {
    /// A backend with the given lane width.
    pub fn new(lanes: Lanes) -> Self {
        Self { lanes }
    }
}

impl Backend for LaneBackend {
    fn name(&self) -> String {
        match self.lanes {
            Lanes::Scalar => "scalar".into(),
            lanes => format!("lanes{}", lanes.width()),
        }
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport {
        crack_interval_batched(
            space,
            targets,
            interval,
            stop,
            mode.first_hit_only(),
            self.lanes,
        )
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        measured_rate(self.lanes, algo)
    }
}

/// The CPU backend for a lane width, boxed for heterogeneous dispatch.
pub fn cpu_backend(lanes: Lanes) -> Box<dyn Backend> {
    match lanes {
        Lanes::Scalar => Box::new(ScalarBackend),
        lanes => Box::new(LaneBackend::new(lanes)),
    }
}

/// A [`LaneBackend`] with batch-path telemetry attached: identical
/// scans and tuned rate, plus sampled batch-fill/hash timing and
/// prefilter hit/miss counters flowing into the shared registry.
#[derive(Debug, Clone)]
pub struct ObservedLaneBackend {
    lanes: Lanes,
    telemetry: Telemetry,
}

impl ObservedLaneBackend {
    /// An observed backend for a lane width.
    pub fn new(lanes: Lanes, telemetry: Telemetry) -> Self {
        Self { lanes, telemetry }
    }
}

impl Backend for ObservedLaneBackend {
    fn name(&self) -> String {
        LaneBackend::new(self.lanes).name()
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport {
        crack_interval_batched_observed(
            space,
            targets,
            interval,
            stop,
            mode.first_hit_only(),
            self.lanes,
            &self.telemetry,
        )
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        measured_rate(self.lanes, algo)
    }
}

/// Like [`cpu_backend`] but with telemetry attached to the batch path.
pub fn cpu_backend_observed(lanes: Lanes, telemetry: Telemetry) -> Box<dyn Backend> {
    Box::new(ObservedLaneBackend::new(lanes, telemetry))
}

/// Keys swept per tuning measurement — enough to amortize startup,
/// small enough to stay well under a second even on the scalar path.
const TUNE_KEYS: u128 = 96_000;

/// Measured single-thread throughput (MKey/s) of a lane width on one
/// algorithm, cached per process.
fn measured_rate(lanes: Lanes, algo: HashAlgo) -> f64 {
    static CACHE: OnceLock<Mutex<HashMap<(Lanes, HashAlgo), f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(rate) = cache.lock().expect("tune cache").get(&(lanes, algo)) {
        return *rate;
    }
    // Compute OUTSIDE the lock so concurrent tuners of different keys
    // don't serialize on each other's sweeps.
    let space =
        KeySpace::new(Charset::lowercase(), 1, 5, Order::FirstCharFastest).expect("valid space");
    // A digest no 1..=5-char lowercase key can produce: nothing matches,
    // so the sweep measures the pure test-function cost.
    let impossible = TargetSet::new(algo, &[algo.hash_long(b"not-in-this-space")]);
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let out = crack_interval_batched(
        &space,
        &impossible,
        Interval::new(0, TUNE_KEYS),
        &stop,
        false,
        lanes,
    );
    let rate = out.tested as f64 / t0.elapsed().as_secs_f64().max(1e-9) / 1e6;
    *cache
        .lock()
        .expect("tune cache")
        .entry((lanes, algo))
        .or_insert(rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_keyspace::Key;

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn scalar_and_lane_backends_agree() {
        let s = space();
        let t = targets(&[b"cat", b"mnop"]);
        let stop = AtomicBool::new(false);
        let reference = ScalarBackend.scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
        for lanes in [Lanes::L8, Lanes::L16] {
            let got =
                LaneBackend::new(lanes).scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
            assert_eq!(got.hits, reference.hits, "{lanes}");
            assert_eq!(got.tested, reference.tested, "{lanes}");
        }
    }

    #[test]
    fn backend_names_match_the_cli_vocabulary() {
        assert_eq!(ScalarBackend.name(), "scalar");
        assert_eq!(LaneBackend::new(Lanes::L8).name(), "lanes8");
        assert_eq!(LaneBackend::new(Lanes::L16).name(), "lanes16");
        assert_eq!(LaneBackend::new(Lanes::Scalar).name(), "scalar");
    }

    #[test]
    fn cpu_backend_picks_the_right_implementation() {
        let s = space();
        let t = targets(&[b"dog"]);
        let stop = AtomicBool::new(false);
        for lanes in [Lanes::Scalar, Lanes::L8, Lanes::L16] {
            let b = cpu_backend(lanes);
            let out = b.scan(&s, &t, s.interval(), &stop, ScanMode::FirstHit);
            assert_eq!(out.hits[0].1.as_bytes(), b"dog", "{lanes}");
        }
    }

    #[test]
    fn tuned_rate_is_positive_and_cached() {
        let first = LaneBackend::default().tuned_rate(HashAlgo::Md5);
        assert!(first > 0.0);
        // Second call must hit the cache and return the identical value.
        let second = LaneBackend::default().tuned_rate(HashAlgo::Md5);
        assert_eq!(first, second);
    }

    #[test]
    fn first_hit_mode_maps_through() {
        let s = space();
        let key = Key::from_bytes(b"b"); // identifier 1
        let t = TargetSet::new(HashAlgo::Md5, &[HashAlgo::Md5.hash_long(key.as_bytes())]);
        let stop = AtomicBool::new(false);
        let out = ScalarBackend.scan(&s, &t, s.interval(), &stop, ScanMode::FirstHit);
        assert_eq!(out.tested, 2, "scalar first-hit stops at the match");
    }
}
