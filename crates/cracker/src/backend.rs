//! CPU implementations of the engine-layer [`Backend`] trait.
//!
//! * [`ScalarBackend`] — the one-candidate-at-a-time reference path
//!   ([`crate::engine::crack_interval`]);
//! * [`LaneBackend`] — the autovectorized lane-batched path
//!   ([`crate::batch::crack_interval_batched`]), the CPU stand-in for a
//!   warp of GPU threads;
//! * [`SimdBackend`] — the explicit AVX2/AVX-512/NEON kernels
//!   ([`crate::batch::crack_interval_simd`]), built only when runtime
//!   detection proves the ISA;
//! * [`AutoBackend`] — the paper's tuning step as a backend: times every
//!   candidate implementation per algorithm once and dispatches each
//!   scan to the winner (widths are *not* monotonic — lanes16 loses to
//!   lanes8 on MD5 here — so the choice is per-algorithm, not global).
//!
//! `tuned_rate` is a *measured* throughput (the paper's tuning step run
//! on the host): a short timed sweep per `(implementation, algo)`,
//! cached for the process lifetime so the balancing step stays cheap.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use eks_engine::{Backend, ScanMode, ScanReport};
use eks_hashes::{HashAlgo, SimdHasher, SimdIsa};
use eks_keyspace::{Charset, Interval, KeySpace, Order};
use eks_telemetry::Telemetry;

use crate::batch::{
    crack_interval_batched, crack_interval_batched_observed, crack_interval_simd,
    crack_interval_simd_observed, Lanes,
};
use crate::engine::crack_interval;
use crate::target::TargetSet;

/// The scalar reference backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> String {
        "scalar".into()
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport {
        crack_interval(space, targets, interval, stop, mode.first_hit_only())
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        measured_rate(TuneKey::Lanes(Lanes::Scalar), algo)
    }

    fn isa(&self, _algo: HashAlgo) -> Option<String> {
        Some("scalar".into())
    }
}

/// The lane-batched SIMD backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneBackend {
    /// Lane width of the batched test path.
    pub lanes: Lanes,
}

impl LaneBackend {
    /// A backend with the given lane width.
    pub fn new(lanes: Lanes) -> Self {
        Self { lanes }
    }
}

impl Backend for LaneBackend {
    fn name(&self) -> String {
        match self.lanes {
            Lanes::Scalar => "scalar".into(),
            lanes => format!("lanes{}", lanes.width()),
        }
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport {
        crack_interval_batched(
            space,
            targets,
            interval,
            stop,
            mode.first_hit_only(),
            self.lanes,
        )
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        measured_rate(TuneKey::Lanes(self.lanes), algo)
    }

    fn isa(&self, _algo: HashAlgo) -> Option<String> {
        Some(lanes_isa(self.lanes).into())
    }
}

/// The ISA label of an autovectorized lane width.
fn lanes_isa(lanes: Lanes) -> &'static str {
    match lanes {
        Lanes::Scalar => "scalar",
        _ => "autovec",
    }
}

/// The CPU backend for a lane width, boxed for heterogeneous dispatch.
pub fn cpu_backend(lanes: Lanes) -> Box<dyn Backend> {
    match lanes {
        Lanes::Scalar => Box::new(ScalarBackend),
        lanes => Box::new(LaneBackend::new(lanes)),
    }
}

/// A [`LaneBackend`] with batch-path telemetry attached: identical
/// scans and tuned rate, plus sampled batch-fill/hash timing and
/// prefilter hit/miss counters flowing into the shared registry.
#[derive(Debug, Clone)]
pub struct ObservedLaneBackend {
    lanes: Lanes,
    telemetry: Telemetry,
}

impl ObservedLaneBackend {
    /// An observed backend for a lane width.
    pub fn new(lanes: Lanes, telemetry: Telemetry) -> Self {
        Self { lanes, telemetry }
    }
}

impl Backend for ObservedLaneBackend {
    fn name(&self) -> String {
        LaneBackend::new(self.lanes).name()
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport {
        crack_interval_batched_observed(
            space,
            targets,
            interval,
            stop,
            mode.first_hit_only(),
            self.lanes,
            &self.telemetry,
        )
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        measured_rate(TuneKey::Lanes(self.lanes), algo)
    }

    fn isa(&self, _algo: HashAlgo) -> Option<String> {
        Some(lanes_isa(self.lanes).into())
    }
}

/// Like [`cpu_backend`] but with telemetry attached to the batch path.
pub fn cpu_backend_observed(lanes: Lanes, telemetry: Telemetry) -> Box<dyn Backend> {
    Box::new(ObservedLaneBackend::new(lanes, telemetry))
}

/// The explicit-SIMD backend: a [`SimdHasher`] (whose construction
/// proved the ISA at runtime) driving [`crack_interval_simd_observed`].
#[derive(Debug, Clone)]
pub struct SimdBackend {
    hasher: SimdHasher,
    telemetry: Telemetry,
}

impl SimdBackend {
    /// A backend for `isa`, or a user-facing error naming what the CPU
    /// actually supports when the ISA is unavailable (the CLI surfaces
    /// this verbatim instead of panicking).
    pub fn new(isa: SimdIsa) -> Result<Self, String> {
        match SimdHasher::new(isa) {
            Some(hasher) => Ok(Self {
                hasher,
                telemetry: Telemetry::disabled(),
            }),
            None => {
                let available: Vec<&str> = SimdIsa::ALL
                    .into_iter()
                    .filter(|i| i.is_available())
                    .map(|i| i.name())
                    .collect();
                let detected = if available.is_empty() {
                    "none".to_string()
                } else {
                    available.join(", ")
                };
                Err(format!(
                    "SIMD ISA '{isa}' is not available on this CPU (detected: {detected}); \
                     drop --isa to auto-detect or pick a listed one"
                ))
            }
        }
    }

    /// The widest available ISA's backend, if any explicit kernel runs
    /// on this CPU.
    pub fn best() -> Option<Self> {
        SimdHasher::best().map(|hasher| Self {
            hasher,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attach a telemetry handle (batch fill/hash timing, prefilter
    /// counters), like [`ObservedLaneBackend`] for the lane path.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The ISA this backend's kernels run on.
    pub fn isa(&self) -> SimdIsa {
        self.hasher.isa()
    }
}

impl Backend for SimdBackend {
    fn name(&self) -> String {
        format!("simd-{}", self.hasher.isa())
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport {
        crack_interval_simd_observed(
            space,
            targets,
            interval,
            stop,
            mode.first_hit_only(),
            self.hasher,
            &self.telemetry,
        )
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        measured_rate(TuneKey::Simd(self.hasher.isa()), algo)
    }

    fn isa(&self, _algo: HashAlgo) -> Option<String> {
        Some(self.hasher.isa().name().into())
    }
}

/// One candidate implementation of the auto-tuned backend.
#[derive(Debug, Clone, Copy)]
enum AutoChoice {
    /// An autovectorized lane width.
    Lanes(Lanes),
    /// An explicit-SIMD implementation.
    Simd(SimdHasher),
}

impl AutoChoice {
    fn tune_key(self) -> TuneKey {
        match self {
            AutoChoice::Lanes(lanes) => TuneKey::Lanes(lanes),
            AutoChoice::Simd(hasher) => TuneKey::Simd(hasher.isa()),
        }
    }

    fn name(self) -> String {
        match self {
            AutoChoice::Lanes(lanes) => format!("lanes{}", lanes.width()),
            AutoChoice::Simd(hasher) => format!("simd-{}", hasher.isa()),
        }
    }
}

/// The auto-tuned backend: the paper's "tune, then run" rule applied to
/// backend selection. For each algorithm the first scan (or tuned-rate
/// query) times every candidate — the autovectorized widths plus every
/// explicit ISA the CPU supports — and the winner handles all subsequent
/// scans of that algorithm.
///
/// Selection is deliberately per-algorithm: measured rates are not
/// monotonic in width (on the reference host, MD5 runs faster at lanes8
/// than lanes16 because the 16-wide autovectorized MD5 spills registers)
/// and the explicit kernels shift the ranking again per algorithm.
pub struct AutoBackend {
    telemetry: Telemetry,
    choices: Mutex<HashMap<HashAlgo, AutoChoice>>,
}

impl AutoBackend {
    /// An auto-tuned backend; `telemetry` flows into whichever
    /// implementation wins each algorithm's tuning race.
    pub fn new(telemetry: Telemetry) -> Self {
        Self {
            telemetry,
            choices: Mutex::new(HashMap::new()),
        }
    }

    /// Every implementation the running CPU can try.
    fn candidates() -> Vec<AutoChoice> {
        let mut c = vec![
            AutoChoice::Lanes(Lanes::L8),
            AutoChoice::Lanes(Lanes::L16),
        ];
        for isa in SimdIsa::ALL {
            if let Some(hasher) = SimdHasher::new(isa) {
                c.push(AutoChoice::Simd(hasher));
            }
        }
        c
    }

    /// The tuned winner for `algo`, racing the candidates on first use.
    fn choice(&self, algo: HashAlgo) -> AutoChoice {
        if let Some(choice) = self.choices.lock().expect("auto choices").get(&algo) {
            return *choice;
        }
        // Tune outside the lock: measured_rate has its own cache and
        // concurrent tuners of different algorithms shouldn't serialize.
        let winner = Self::candidates()
            .into_iter()
            .map(|c| (c, measured_rate(c.tune_key(), algo)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _)| c)
            .expect("candidate list is never empty");
        *self
            .choices
            .lock()
            .expect("auto choices")
            .entry(algo)
            .or_insert(winner)
    }

    /// The name of the implementation tuned in for `algo` (e.g.
    /// `lanes8`, `simd-avx512`) — for reports and telemetry labels.
    pub fn choice_name(&self, algo: HashAlgo) -> String {
        self.choice(algo).name()
    }
}

impl Backend for AutoBackend {
    fn name(&self) -> String {
        "auto".into()
    }

    fn scan(
        &self,
        space: &KeySpace,
        targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        mode: ScanMode,
    ) -> ScanReport {
        let first_hit_only = mode.first_hit_only();
        match self.choice(targets.algo()) {
            AutoChoice::Lanes(lanes) => crack_interval_batched_observed(
                space,
                targets,
                interval,
                stop,
                first_hit_only,
                lanes,
                &self.telemetry,
            ),
            AutoChoice::Simd(hasher) => crack_interval_simd_observed(
                space,
                targets,
                interval,
                stop,
                first_hit_only,
                hasher,
                &self.telemetry,
            ),
        }
    }

    fn tuned_rate(&self, algo: HashAlgo) -> f64 {
        measured_rate(self.choice(algo).tune_key(), algo)
    }

    fn isa(&self, algo: HashAlgo) -> Option<String> {
        Some(match self.choice(algo) {
            AutoChoice::Lanes(lanes) => lanes_isa(lanes).into(),
            AutoChoice::Simd(hasher) => hasher.isa().name().to_string(),
        })
    }
}

/// Keys swept per tuning measurement — enough to amortize startup,
/// small enough to stay well under a second even on the scalar path.
const TUNE_KEYS: u128 = 96_000;

/// A cacheable identity of one tunable implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TuneKey {
    /// The scalar or autovectorized path at a lane width.
    Lanes(Lanes),
    /// An explicit-SIMD ISA (the hasher is re-derived when sweeping).
    Simd(SimdIsa),
}

/// Measured single-thread throughput (MKey/s) of one implementation on
/// one algorithm, cached per process.
fn measured_rate(key: TuneKey, algo: HashAlgo) -> f64 {
    static CACHE: OnceLock<Mutex<HashMap<(TuneKey, HashAlgo), f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(rate) = cache.lock().expect("tune cache").get(&(key, algo)) {
        return *rate;
    }
    // Compute OUTSIDE the lock so concurrent tuners of different keys
    // don't serialize on each other's sweeps.
    let space =
        KeySpace::new(Charset::lowercase(), 1, 5, Order::FirstCharFastest).expect("valid space");
    // A digest no 1..=5-char lowercase key can produce: nothing matches,
    // so the sweep measures the pure test-function cost.
    let impossible = TargetSet::new(algo, &[algo.hash_long(b"not-in-this-space")]);
    let stop = AtomicBool::new(false);
    let interval = Interval::new(0, TUNE_KEYS);
    let t0 = Instant::now();
    let out = match key {
        TuneKey::Lanes(lanes) => {
            crack_interval_batched(&space, &impossible, interval, &stop, false, lanes)
        }
        TuneKey::Simd(isa) => {
            let hasher = SimdHasher::new(isa).expect("tuning requires an available ISA");
            crack_interval_simd(&space, &impossible, interval, &stop, false, hasher)
        }
    };
    let rate = out.tested as f64 / t0.elapsed().as_secs_f64().max(1e-9) / 1e6;
    *cache
        .lock()
        .expect("tune cache")
        .entry((key, algo))
        .or_insert(rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_keyspace::Key;

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn scalar_and_lane_backends_agree() {
        let s = space();
        let t = targets(&[b"cat", b"mnop"]);
        let stop = AtomicBool::new(false);
        let reference = ScalarBackend.scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
        for lanes in [Lanes::L8, Lanes::L16] {
            let got =
                LaneBackend::new(lanes).scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
            assert_eq!(got.hits, reference.hits, "{lanes}");
            assert_eq!(got.tested, reference.tested, "{lanes}");
        }
    }

    #[test]
    fn backend_names_match_the_cli_vocabulary() {
        assert_eq!(ScalarBackend.name(), "scalar");
        assert_eq!(LaneBackend::new(Lanes::L8).name(), "lanes8");
        assert_eq!(LaneBackend::new(Lanes::L16).name(), "lanes16");
        assert_eq!(LaneBackend::new(Lanes::Scalar).name(), "scalar");
    }

    #[test]
    fn isa_labels_name_the_implementation_class() {
        let md5 = HashAlgo::Md5;
        assert_eq!(ScalarBackend.isa(md5).as_deref(), Some("scalar"));
        assert_eq!(LaneBackend::new(Lanes::L8).isa(md5).as_deref(), Some("autovec"));
        assert_eq!(LaneBackend::new(Lanes::Scalar).isa(md5).as_deref(), Some("scalar"));
        if let Some(b) = SimdBackend::best() {
            // `Backend::isa` is shadowed by the inherent `SimdBackend::isa`.
            assert_eq!(Backend::isa(&b, md5).as_deref(), Some(b.isa().name()));
        }
        let auto = AutoBackend::new(Telemetry::disabled());
        let label = Backend::isa(&auto, md5).expect("auto always has a winner");
        assert!(
            ["autovec", "avx2", "avx512", "neon"].contains(&label.as_str()),
            "{label}"
        );
    }

    #[test]
    fn cpu_backend_picks_the_right_implementation() {
        let s = space();
        let t = targets(&[b"dog"]);
        let stop = AtomicBool::new(false);
        for lanes in [Lanes::Scalar, Lanes::L8, Lanes::L16] {
            let b = cpu_backend(lanes);
            let out = b.scan(&s, &t, s.interval(), &stop, ScanMode::FirstHit);
            assert_eq!(out.hits[0].1.as_bytes(), b"dog", "{lanes}");
        }
    }

    #[test]
    fn tuned_rate_is_positive_and_cached() {
        let first = LaneBackend::default().tuned_rate(HashAlgo::Md5);
        assert!(first > 0.0);
        // Second call must hit the cache and return the identical value.
        let second = LaneBackend::default().tuned_rate(HashAlgo::Md5);
        assert_eq!(first, second);
    }

    #[test]
    fn simd_backend_construction_mirrors_detection_and_errors_kindly() {
        for isa in SimdIsa::ALL {
            match SimdBackend::new(isa) {
                Ok(b) => {
                    assert!(isa.is_available());
                    assert_eq!(b.isa(), isa);
                    assert_eq!(b.name(), format!("simd-{isa}"));
                }
                Err(msg) => {
                    assert!(!isa.is_available());
                    assert!(msg.contains(isa.name()), "error names the ISA: {msg}");
                    assert!(msg.contains("detected"), "error lists detection: {msg}");
                }
            }
        }
    }

    #[test]
    fn simd_backend_agrees_with_scalar() {
        let Some(b) = SimdBackend::best() else {
            eprintln!("skipped: no explicit-SIMD ISA on this host");
            return;
        };
        let s = space();
        let t = targets(&[b"cat", b"mnop"]);
        let stop = AtomicBool::new(false);
        let reference = ScalarBackend.scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
        let got = b.scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
        assert_eq!(got.hits, reference.hits);
        assert_eq!(got.tested, reference.tested);
    }

    #[test]
    fn auto_backend_picks_a_winner_and_agrees_with_scalar() {
        let auto = AutoBackend::new(Telemetry::disabled());
        let s = space();
        let t = targets(&[b"cat", b"mnop"]);
        let stop = AtomicBool::new(false);
        let reference = ScalarBackend.scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
        let got = auto.scan(&s, &t, s.interval(), &stop, ScanMode::Exhaustive);
        assert_eq!(got.hits, reference.hits);
        assert_eq!(got.tested, reference.tested);
        assert_eq!(auto.name(), "auto");
        // The winner is a real implementation with a cached positive rate.
        let name = auto.choice_name(HashAlgo::Md5);
        assert!(
            name.starts_with("lanes") || name.starts_with("simd-"),
            "{name}"
        );
        assert!(auto.tuned_rate(HashAlgo::Md5) > 0.0);
        // Choices are per algorithm and stable across calls.
        assert_eq!(name, auto.choice_name(HashAlgo::Md5));
    }

    #[test]
    fn auto_backend_tunes_at_least_as_fast_as_every_lane_width() {
        let auto = AutoBackend::new(Telemetry::disabled());
        for algo in [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm] {
            let best = auto.tuned_rate(algo);
            for lanes in [Lanes::L8, Lanes::L16] {
                assert!(
                    best >= LaneBackend::new(lanes).tuned_rate(algo),
                    "{algo:?}: auto ({best}) slower than {lanes}"
                );
            }
        }
    }

    #[test]
    fn first_hit_mode_maps_through() {
        let s = space();
        let key = Key::from_bytes(b"b"); // identifier 1
        let t = TargetSet::new(HashAlgo::Md5, &[HashAlgo::Md5.hash_long(key.as_bytes())]);
        let stop = AtomicBool::new(false);
        let out = ScalarBackend.scan(&s, &t, s.interval(), &stop, ScanMode::FirstHit);
        assert_eq!(out.tested, 2, "scalar first-hit stops at the match");
    }
}
