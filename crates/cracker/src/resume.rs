//! Checkpointing long searches.
//!
//! A realistic audit sweeps days of keyspace; the paper's dispatch
//! pattern makes progress trivially checkpointable because work is
//! identifier intervals: remembering the frontier of completed chunks is
//! enough to resume exactly where a crash or shutdown interrupted.
//!
//! The format is a tiny line-oriented text file (no external
//! dependencies): a header line and one line per pending sub-interval.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::fmt::Write as _;

use eks_keyspace::Interval;

/// Persistent search progress: the original interval and what remains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The full interval the search covers.
    pub full: Interval,
    /// Sub-intervals not yet completed, sorted, non-overlapping.
    pub pending: Vec<Interval>,
}

impl Checkpoint {
    /// A fresh checkpoint with everything pending.
    pub fn new(full: Interval) -> Self {
        Self { full, pending: if full.is_empty() { Vec::new() } else { vec![full] } }
    }

    /// Keys still to be tested.
    pub fn remaining(&self) -> u128 {
        self.pending.iter().map(|iv| iv.len).sum()
    }

    /// Completed fraction in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.full.len == 0 {
            return 1.0;
        }
        1.0 - self.remaining() as f64 / self.full.len as f64
    }

    /// True when nothing remains.
    pub fn is_complete(&self) -> bool {
        self.pending.is_empty()
    }

    /// Mark `done` as completed, splitting pending intervals as needed.
    ///
    /// Completing an interval twice (or one never pending) is a no-op for
    /// the already-complete part — idempotent by design, since cluster
    /// workers may re-report after a requeue.
    pub fn complete(&mut self, done: Interval) {
        if done.is_empty() {
            return;
        }
        let mut next = Vec::with_capacity(self.pending.len() + 1);
        for iv in &self.pending {
            let overlap = iv.intersect(&done);
            if overlap.is_empty() {
                next.push(*iv);
                continue;
            }
            // Left remainder.
            if iv.start < overlap.start {
                next.push(Interval::new(iv.start, overlap.start - iv.start));
            }
            // Right remainder.
            if overlap.end() < iv.end() {
                next.push(Interval::new(overlap.end(), iv.end() - overlap.end()));
            }
        }
        next.sort_by_key(|iv| iv.start);
        self.pending = next;
    }

    /// Pop up to `n` keys of pending work (the resume-side dispatcher).
    pub fn take_work(&mut self, n: u128) -> Option<Interval> {
        let first = self.pending.first_mut()?;
        let take = first.take_front(n);
        if first.is_empty() {
            self.pending.remove(0);
        }
        Some(take)
    }

    /// Return work taken with [`Checkpoint::take_work`] that was never
    /// scanned (a worker went silent mid-round): the interval becomes
    /// pending again, merged with its neighbours.
    ///
    /// # Panics
    /// Panics when the interval escapes the checkpoint's full range or
    /// overlaps work that is still pending (double-requeue).
    pub fn requeue(&mut self, interval: Interval) {
        if interval.is_empty() {
            return;
        }
        assert_eq!(
            interval.intersect(&self.full),
            interval,
            "requeued interval escapes the checkpoint range"
        );
        for iv in &self.pending {
            assert!(
                iv.intersect(&interval).is_empty(),
                "requeued interval overlaps pending work"
            );
        }
        self.pending.push(interval);
        self.pending.sort_by_key(|iv| iv.start);
        // Merge adjacent fragments to keep the list compact.
        let mut merged: Vec<Interval> = Vec::with_capacity(self.pending.len());
        for iv in self.pending.drain(..) {
            match merged.last_mut() {
                Some(last) if last.end() == iv.start => last.len += iv.len,
                _ => merged.push(iv),
            }
        }
        self.pending = merged;
    }

    /// Serialize to the checkpoint text format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        writeln!(out, "eks-checkpoint v1 {} {}", self.full.start, self.full.len)
            .expect("write to string");
        for iv in &self.pending {
            writeln!(out, "{} {}", iv.start, iv.len).expect("write to string");
        }
        out
    }

    /// Parse the checkpoint text format.
    pub fn deserialize(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty checkpoint")?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("eks-checkpoint") || parts.next() != Some("v1") {
            return Err("bad checkpoint header".into());
        }
        let start: u128 = parts
            .next()
            .ok_or("missing start")?
            .parse()
            .map_err(|_| "bad start")?;
        let len: u128 = parts
            .next()
            .ok_or("missing len")?
            .parse()
            .map_err(|_| "bad len")?;
        let full = Interval::new(start, len);
        let mut pending = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut p = line.split_whitespace();
            let s: u128 = p
                .next()
                .ok_or(format!("line {i}: missing start"))?
                .parse()
                .map_err(|_| format!("line {i}: bad start"))?;
            let l: u128 = p
                .next()
                .ok_or(format!("line {i}: missing len"))?
                .parse()
                .map_err(|_| format!("line {i}: bad len"))?;
            let iv = Interval::new(s, l);
            if iv.intersect(&full) != iv {
                return Err(format!("line {i}: pending interval escapes the full range"));
            }
            pending.push(iv);
        }
        pending.sort_by_key(|iv| iv.start);
        // Reject overlaps: they would double-count work.
        for w in pending.windows(2) {
            if w[0].end() > w[1].start {
                return Err("overlapping pending intervals".into());
            }
        }
        Ok(Self { full, pending })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_checkpoint_has_everything_pending() {
        let c = Checkpoint::new(Interval::new(100, 1000));
        assert_eq!(c.remaining(), 1000);
        assert_eq!(c.progress(), 0.0);
        assert!(!c.is_complete());
    }

    #[test]
    fn completing_middle_splits_pending() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        c.complete(Interval::new(40, 20));
        assert_eq!(c.pending, vec![Interval::new(0, 40), Interval::new(60, 40)]);
        assert_eq!(c.remaining(), 80);
        assert!((c.progress() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn completing_everything_finishes() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        c.complete(Interval::new(0, 60));
        c.complete(Interval::new(60, 40));
        assert!(c.is_complete());
        assert_eq!(c.progress(), 1.0);
    }

    #[test]
    fn complete_is_idempotent() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        c.complete(Interval::new(10, 30));
        let snapshot = c.clone();
        c.complete(Interval::new(10, 30));
        c.complete(Interval::new(15, 10));
        assert_eq!(c, snapshot);
    }

    #[test]
    fn take_work_drains_in_order() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        c.complete(Interval::new(30, 10));
        assert_eq!(c.take_work(20), Some(Interval::new(0, 20)));
        assert_eq!(c.take_work(20), Some(Interval::new(20, 10)), "clipped at the gap");
        assert_eq!(c.take_work(100), Some(Interval::new(40, 60)));
        assert_eq!(c.take_work(1), None);
    }

    #[test]
    fn serialization_round_trip() {
        let mut c = Checkpoint::new(Interval::new(5, 1_000_000));
        c.complete(Interval::new(100, 500));
        c.complete(Interval::new(999_000, 100));
        let text = c.serialize();
        let back = Checkpoint::deserialize(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(Checkpoint::deserialize("").is_err());
        assert!(Checkpoint::deserialize("nope v1 0 10").is_err());
        assert!(Checkpoint::deserialize("eks-checkpoint v1 0").is_err());
        assert!(
            Checkpoint::deserialize("eks-checkpoint v1 0 10\n5 20").is_err(),
            "pending escapes range"
        );
        assert!(
            Checkpoint::deserialize("eks-checkpoint v1 0 100\n0 20\n10 20").is_err(),
            "overlap"
        );
    }

    #[test]
    fn requeue_restores_and_merges() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        let a = c.take_work(30).unwrap();
        let b = c.take_work(30).unwrap();
        c.complete(a);
        // b was lost: requeue it; it must merge with the remaining tail.
        c.requeue(b);
        assert_eq!(c.remaining(), 70);
        assert_eq!(c.pending, vec![Interval::new(30, 70)], "merged with the tail");
        assert_eq!(c.take_work(1000), Some(Interval::new(30, 70)));
    }

    #[test]
    #[should_panic]
    fn double_requeue_rejected() {
        let mut c = Checkpoint::new(Interval::new(0, 100));
        let a = c.take_work(30).unwrap();
        c.requeue(a);
        c.requeue(a);
    }

    #[test]
    fn resumed_search_covers_exactly_the_remainder() {
        // Simulate an interrupted sweep: complete a prefix, serialize,
        // deserialize, drain the rest, and check total coverage.
        let full = Interval::new(0, 10_000);
        let mut c = Checkpoint::new(full);
        c.complete(Interval::new(0, 4_321));
        let restored = Checkpoint::deserialize(&c.serialize()).unwrap();
        let mut resumed = restored;
        let mut covered = 0u128;
        while let Some(iv) = resumed.take_work(1_000) {
            covered += iv.len;
        }
        assert_eq!(covered, 10_000 - 4_321);
    }
}
