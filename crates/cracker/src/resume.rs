//! Checkpointing long searches.
//!
//! The frontier type itself now lives in the engine layer
//! ([`eks_engine::checkpoint`]) so the multi-tenant job service, the
//! cluster rounds driver, and this crate's audit session all share one
//! implementation of the pending-interval arithmetic and its two
//! serialized forms (legacy text and schema-stamped JSON). This module
//! re-exports it under the historical path.

pub use eks_engine::checkpoint::{Checkpoint, CheckpointError, SearchCheckpoint};
