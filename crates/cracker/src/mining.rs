//! Bitcoin-style mining as exhaustive search (paper Section I).
//!
//! "An exhaustive search is performed to find a 32-bit value (nonce) that
//! is used as input to a hashing function based on the SHA256 algorithm,
//! producing a hash with a certain number of leading zero bits." The
//! solution space is the nonce range, `f` appends the nonce to the header
//! template, and `C` counts leading zero bits of the double-SHA-256 —
//! the same pattern, a different test function.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use eks_hashes::sha256::{leading_zero_bits, sha256d};
use std::sync::Mutex;

/// A mining work item: header template plus difficulty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiningJob {
    /// Block-header bytes without the trailing 4-byte nonce.
    pub header: Vec<u8>,
    /// Required leading zero bits of `sha256d(header ‖ nonce)`.
    pub difficulty_bits: u32,
}

impl MiningJob {
    /// The test function `C` for one nonce.
    pub fn test(&self, nonce: u32) -> Option<[u8; 32]> {
        let digest = self.digest(nonce);
        (leading_zero_bits(&digest) >= self.difficulty_bits).then_some(digest)
    }

    /// Hash of the header with the given nonce.
    pub fn digest(&self, nonce: u32) -> [u8; 32] {
        let mut msg = Vec::with_capacity(self.header.len() + 4);
        msg.extend_from_slice(&self.header);
        msg.extend_from_slice(&nonce.to_le_bytes());
        sha256d(&msg)
    }
}

/// A successful mining result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiningResult {
    /// The winning nonce.
    pub nonce: u32,
    /// Its digest.
    pub digest: [u8; 32],
    /// Nonces tested across all threads before returning.
    pub tested: u64,
}

/// Scan `nonce_range` with `threads` workers; returns the first (lowest
/// found) winning nonce, or `None` when the range is exhausted.
pub fn mine(
    job: &MiningJob,
    nonce_range: std::ops::Range<u64>,
    threads: usize,
) -> Option<MiningResult> {
    assert!(threads >= 1);
    const CHUNK: u64 = 4096;
    let cursor = AtomicU64::new(nonce_range.start);
    let stop = AtomicBool::new(false);
    let best: Mutex<Option<(u32, [u8; 32])>> = Mutex::new(None);
    let tested = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                if lo >= nonce_range.end {
                    break;
                }
                let hi = (lo + CHUNK).min(nonce_range.end);
                for n in lo..hi {
                    tested.fetch_add(1, Ordering::Relaxed);
                    if let Some(d) = job.test(n as u32) {
                        let mut b = best.lock().expect("best lock");
                        // Keep the lowest nonce for determinism.
                        if b.is_none() || b.as_ref().expect("checked").0 > n as u32 {
                            *b = Some((n as u32, d));
                        }
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    let found = best.into_inner().expect("best lock");
    found.map(|(nonce, digest)| MiningResult {
        nonce,
        digest,
        tested: tested.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(bits: u32) -> MiningJob {
        MiningJob { header: b"eks-test-block-header".to_vec(), difficulty_bits: bits }
    }

    #[test]
    fn finds_low_difficulty_nonce() {
        let j = job(12);
        let r = mine(&j, 0..1 << 20, 4).expect("12 bits is easy");
        assert!(leading_zero_bits(&r.digest) >= 12);
        assert_eq!(r.digest, j.digest(r.nonce));
    }

    #[test]
    fn exhausted_range_returns_none() {
        // 40 zero bits within 1000 nonces is (practically) impossible.
        let j = job(40);
        assert_eq!(mine(&j, 0..1000, 2), None);
    }

    #[test]
    fn zero_difficulty_accepts_first_nonce() {
        let j = job(0);
        let r = mine(&j, 7..100, 1).expect("anything matches");
        assert_eq!(r.nonce, 7);
    }

    #[test]
    fn single_and_multi_thread_agree_on_difficulty() {
        let j = job(10);
        let a = mine(&j, 0..1 << 18, 1).map(|r| r.nonce);
        let b = mine(&j, 0..1 << 18, 4).map(|r| r.nonce);
        // Multi-threaded search may find a later nonce first but both must
        // find *some* valid nonce; single-threaded finds the lowest.
        assert!(a.is_some() && b.is_some());
        let ja = j.test(a.unwrap());
        let jb = j.test(b.unwrap());
        assert!(ja.is_some() && jb.is_some());
        assert!(a.unwrap() <= b.unwrap());
    }

    #[test]
    fn higher_difficulty_needs_more_tests() {
        let j8 = job(8);
        let j14 = job(14);
        let r8 = mine(&j8, 0..1 << 22, 1).expect("8 bits");
        let r14 = mine(&j14, 0..1 << 22, 1).expect("14 bits");
        assert!(r14.tested > r8.tested, "{} vs {}", r14.tested, r8.tested);
    }
}
