//! Generic engines over any [`SolutionSpace`] whose candidates are keys —
//! the pattern's promise made concrete: brute-force ranges, masks and
//! hybrid dictionaries all crack through the same machinery because each
//! is a bijection from `0..size` onto its candidates.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use eks_core::SolutionSpace;
use eks_keyspace::Key;
use std::sync::Mutex;

use crate::parallel::{ParallelConfig, ParallelReport};
use crate::target::TargetSet;

/// Scan `[start, start + len)` of any key-producing space.
///
/// Semantics match [`crate::engine::crack_interval`]: generate once,
/// advance thereafter, poll `stop` between chunks, optionally return at
/// the first hit.
pub fn crack_space_interval<S>(
    space: &S,
    targets: &TargetSet,
    start: u128,
    len: u128,
    stop: &AtomicBool,
    first_hit_only: bool,
) -> crate::engine::CrackOutcome
where
    S: SolutionSpace<Solution = Key>,
{
    const POLL: u128 = 4096;
    let mut hits = Vec::new();
    let mut tested: u128 = 0;
    let mut cancelled = false;
    let size = SolutionSpace::size(space).unwrap_or(u128::MAX);
    let end = start.saturating_add(len).min(size);
    if start >= end {
        return crate::engine::CrackOutcome { hits, tested, cancelled };
    }
    let mut id = start;
    let mut key = space.generate(id);
    'outer: loop {
        if stop.load(Ordering::Relaxed) {
            cancelled = true;
            break;
        }
        let chunk_end = (id + POLL).min(end);
        while id < chunk_end {
            tested += 1;
            if let Some(t) = targets.matches(&key) {
                hits.push((id, key.clone(), t));
                if first_hit_only {
                    break 'outer;
                }
            }
            if id + 1 == end {
                break 'outer;
            }
            space.advance(id, &mut key);
            id += 1;
        }
    }
    crate::engine::CrackOutcome { hits, tested, cancelled }
}

/// Parallel search over any key-producing space (chunked shared cursor,
/// like [`crate::parallel::crack_parallel`] but generic).
pub fn crack_space_parallel<S>(
    space: &S,
    targets: &TargetSet,
    config: ParallelConfig,
) -> ParallelReport
where
    S: SolutionSpace<Solution = Key> + Sync,
{
    assert!(config.threads >= 1 && config.chunk >= 1);
    let size = SolutionSpace::size(space).expect("finite space");
    let start_t = Instant::now();
    let cursor = AtomicU64::new(0);
    // Same cursor-width guard as `crack_parallel`: widen the effective
    // chunk so the chunk count always fits the u64 cursor.
    let chunk: u128 = (config.chunk as u128).max(size.div_ceil(u64::MAX as u128));
    let total_chunks: u64 = size
        .div_ceil(chunk)
        .try_into()
        .expect("size/ceil(size/u64::MAX) chunks always fit a u64");
    let stop = AtomicBool::new(false);
    let hits: Mutex<Vec<(u128, Key, usize)>> = Mutex::new(Vec::new());
    let tested = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..config.threads {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let n = cursor.fetch_add(1, Ordering::Relaxed);
                if n >= total_chunks {
                    break;
                }
                let lo = (n as u128) * chunk;
                let len = chunk.min(size - lo);
                let out =
                    crack_space_interval(space, targets, lo, len, &stop, config.first_hit_only);
                tested.fetch_add(out.tested as u64, Ordering::Relaxed);
                if !out.hits.is_empty() {
                    hits.lock().expect("hits lock").extend(out.hits);
                    if config.first_hit_only {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    let elapsed_s = start_t.elapsed().as_secs_f64().max(1e-9);
    let mut all = hits.into_inner().expect("hits lock");
    all.sort_by_key(|(id, _, _)| *id);
    let tested = tested.load(Ordering::Relaxed) as u128;
    ParallelReport {
        hits: all,
        tested,
        elapsed_s,
        mkeys_per_s: tested as f64 / elapsed_s / 1e6,
        stats: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_hashes::HashAlgo;
    use eks_keyspace::{HybridSpace, MaskSpace};

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn mask_attack_cracks_patterned_password() {
        // "Capitalized word-ish + two digits" pattern.
        let mask = MaskSpace::parse("?u?l?l?d?d").unwrap();
        let t = targets(&[b"Cat42"]);
        let cfg = ParallelConfig { threads: 4, chunk: 1 << 12, ..ParallelConfig::default() };
        let r = crack_space_parallel(&mask, &t, cfg);
        assert_eq!(r.hits[0].1.as_bytes(), b"Cat42");
        assert!(r.tested <= mask.size());
    }

    #[test]
    fn hybrid_attack_cracks_word_plus_digits() {
        let words: Vec<&[u8]> = vec![b"winter", b"dragon", b"summer"];
        let space = HybridSpace::with_digit_suffixes(&words, 2).unwrap();
        let t = targets(&[b"dragon77"]);
        let cfg = ParallelConfig { threads: 2, chunk: 64, ..ParallelConfig::default() };
        let r = crack_space_parallel(&space, &t, cfg);
        assert_eq!(r.hits[0].1.as_bytes(), b"dragon77");
    }

    #[test]
    fn full_sweep_counts_every_candidate() {
        let mask = MaskSpace::parse("?d?d?d").unwrap();
        let t = targets(&[b"zzz-not-there"]);
        let cfg = ParallelConfig {
            threads: 3,
            chunk: 97,
            first_hit_only: false,
            ..ParallelConfig::default()
        };
        let r = crack_space_parallel(&mask, &t, cfg);
        assert_eq!(r.tested, 1000);
        assert!(r.hits.is_empty());
    }

    #[test]
    fn interval_respects_bounds() {
        let mask = MaskSpace::parse("?d?d").unwrap();
        let t = targets(&[b"57"]);
        let stop = AtomicBool::new(false);
        let hit = crack_space_interval(&mask, &t, 50, 10, &stop, true);
        assert_eq!(hit.hits.len(), 1, "57 is id 57 in a ?d?d mask");
        let miss = crack_space_interval(&mask, &t, 0, 57, &stop, true);
        assert!(miss.hits.is_empty());
    }

    #[test]
    fn generic_and_specialized_engines_agree() {
        use eks_keyspace::{Charset, KeySpace, Order};
        let ks = KeySpace::new(Charset::lowercase(), 1, 3, Order::FirstCharFastest).unwrap();
        let t = targets(&[b"cab", b"me"]);
        let stop = AtomicBool::new(false);
        let generic = crack_space_interval(&ks, &t, 0, ks.size(), &stop, false);
        let special = crate::engine::crack_interval(&ks, &t, ks.interval(), &stop, false);
        assert_eq!(generic.hits, special.hits);
        assert_eq!(generic.tested, special.tested);
    }
}
