//! Statistics over cracked passwords — the summary section of an audit
//! report: length distribution, character-class usage, and where in the
//! enumeration the passwords fell (how much attacker work each survived).
//!
//! Also renders the scheduler's per-worker accounting
//! ([`render_worker_stats`]): tested counts, steals, splits, and
//! busy/idle time, the numbers behind the bench's measured parallel
//! efficiency.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_engine::WorkerStats;
use eks_keyspace::Key;

/// Character classes a password draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassUsage {
    /// Contains a lowercase letter.
    pub lower: bool,
    /// Contains an uppercase letter.
    pub upper: bool,
    /// Contains a digit.
    pub digit: bool,
    /// Contains a symbol (printable, non-alphanumeric).
    pub symbol: bool,
}

impl ClassUsage {
    /// Classify one password.
    pub fn of(key: &Key) -> Self {
        let mut u = Self::default();
        for &b in key.as_bytes() {
            match b {
                b'a'..=b'z' => u.lower = true,
                b'A'..=b'Z' => u.upper = true,
                b'0'..=b'9' => u.digit = true,
                _ => u.symbol = true,
            }
        }
        u
    }

    /// Number of classes used (a crude complexity score, 0–4).
    pub fn class_count(&self) -> u32 {
        self.lower as u32 + self.upper as u32 + self.digit as u32 + self.symbol as u32
    }
}

/// Aggregate statistics over a set of cracked passwords.
#[derive(Debug, Clone, PartialEq)]
pub struct PasswordStats {
    /// Passwords analyzed.
    pub count: usize,
    /// Histogram of lengths, index = length (0..=20).
    pub length_histogram: Vec<usize>,
    /// Mean length.
    pub mean_length: f64,
    /// Histogram of class counts, index = classes used (0..=4).
    pub class_histogram: [usize; 5],
    /// Fraction using only one character class.
    pub single_class_fraction: f64,
}

impl PasswordStats {
    /// Compute statistics over cracked passwords.
    pub fn analyze(passwords: &[Key]) -> Self {
        let mut length_histogram = vec![0usize; eks_keyspace::MAX_KEY_LEN + 1];
        let mut class_histogram = [0usize; 5];
        let mut total_len = 0usize;
        for p in passwords {
            length_histogram[p.len()] += 1;
            total_len += p.len();
            class_histogram[ClassUsage::of(p).class_count() as usize] += 1;
        }
        let count = passwords.len();
        Self {
            count,
            length_histogram,
            mean_length: if count == 0 { 0.0 } else { total_len as f64 / count as f64 },
            class_histogram,
            single_class_fraction: if count == 0 {
                0.0
            } else {
                class_histogram[1] as f64 / count as f64
            },
        }
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "{} cracked passwords, mean length {:.1}", self.count, self.mean_length)
            .expect("write to string");
        write!(out, "lengths:").expect("write to string");
        for (len, n) in self.length_histogram.iter().enumerate().filter(|(_, n)| **n > 0) {
            write!(out, " {len}:{n}").expect("write to string");
        }
        writeln!(out).expect("write to string");
        writeln!(
            out,
            "character classes: 1:{} 2:{} 3:{} 4:{} ({}% single-class)",
            self.class_histogram[1],
            self.class_histogram[2],
            self.class_histogram[3],
            self.class_histogram[4],
            (self.single_class_fraction * 100.0).round()
        )
        .expect("write to string");
        out
    }
}

/// Render the scheduler's per-worker accounting as an aligned table:
/// one row per worker with tested candidates, steal and split counts,
/// busy/idle milliseconds, utilization percent, and keys per second.
/// Empty input renders to an empty string. The derived columns come
/// from the guarded [`WorkerStats::utilization_pct`] /
/// [`WorkerStats::keys_per_sec`] helpers, so a zero-duration run (a hit
/// in the first chunk before either clock ticks) renders `0` — never
/// NaN or a division panic.
pub fn render_worker_stats(stats: &[WorkerStats]) -> String {
    use std::fmt::Write as _;
    if stats.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    writeln!(
        out,
        "{:<32}{:>16}{:>8}{:>8}{:>10}{:>10}{:>8}{:>14}",
        "worker", "tested", "steals", "splits", "busy ms", "idle ms", "util%", "keys/s"
    )
    .expect("write to string");
    for w in stats {
        writeln!(
            out,
            "{:<32}{:>16}{:>8}{:>8}{:>10.1}{:>10.1}{:>8.1}{:>14.0}",
            w.label,
            w.tested,
            w.steals,
            w.splits,
            w.busy_ns as f64 / 1e6,
            w.idle_ns as f64 / 1e6,
            w.utilization_pct(),
            w.keys_per_sec()
        )
        .expect("write to string");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(words: &[&str]) -> Vec<Key> {
        words.iter().map(|w| Key::from_bytes(w.as_bytes())).collect()
    }

    #[test]
    fn class_usage_detection() {
        assert_eq!(ClassUsage::of(&Key::from_bytes(b"abc")).class_count(), 1);
        assert_eq!(ClassUsage::of(&Key::from_bytes(b"Abc")).class_count(), 2);
        assert_eq!(ClassUsage::of(&Key::from_bytes(b"Abc1")).class_count(), 3);
        assert_eq!(ClassUsage::of(&Key::from_bytes(b"Abc1!")).class_count(), 4);
        let u = ClassUsage::of(&Key::from_bytes(b"a1"));
        assert!(u.lower && u.digit && !u.upper && !u.symbol);
    }

    #[test]
    fn stats_aggregate_correctly() {
        let s = PasswordStats::analyze(&keys(&["abc", "Cat42", "zz", "p@ss"]));
        assert_eq!(s.count, 4);
        assert_eq!(s.length_histogram[3], 1);
        assert_eq!(s.length_histogram[5], 1);
        assert_eq!(s.length_histogram[2], 1);
        assert_eq!(s.length_histogram[4], 1);
        assert!((s.mean_length - 3.5).abs() < 1e-12);
        assert_eq!(s.class_histogram[1], 2, "abc and zz");
        assert_eq!(s.class_histogram[3], 1, "Cat42");
        assert_eq!(s.class_histogram[2], 1, "p@ss");
        assert!((s.single_class_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let s = PasswordStats::analyze(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_length, 0.0);
        assert_eq!(s.single_class_fraction, 0.0);
    }

    #[test]
    fn render_mentions_key_facts() {
        let s = PasswordStats::analyze(&keys(&["abc", "Cat42"]));
        let text = s.render();
        assert!(text.contains("2 cracked"));
        assert!(text.contains("3:1"), "{text}");
    }

    #[test]
    fn worker_stats_table_has_a_row_per_worker() {
        let mut a = WorkerStats::new("lanes8#0");
        a.tested = 1000;
        a.steals = 2;
        let mut b = WorkerStats::new("lanes8#1");
        b.tested = 500;
        b.splits = 2;
        b.idle_ns = 1_500_000;
        let table = render_worker_stats(&[a, b]);
        assert_eq!(table.lines().count(), 3, "header + two rows");
        assert!(table.contains("lanes8#0"), "{table}");
        assert!(table.contains("steals"), "{table}");
        assert!(table.contains("1.5"), "idle ms rendered: {table}");
        assert!(render_worker_stats(&[]).is_empty());
    }

    #[test]
    fn zero_duration_run_renders_without_nan() {
        // A hit in the very first chunk can finish before either clock
        // ticks: tested > 0 with zero busy and idle time.
        let mut w = WorkerStats::new("lanes8#0");
        w.tested = 8;
        let table = render_worker_stats(&[w.clone()]);
        assert!(!table.contains("NaN"), "{table}");
        assert!(!table.contains("inf"), "{table}");
        assert_eq!(w.utilization_pct(), 0.0);
        assert_eq!(w.keys_per_sec(), 0.0);
        // And a normal run derives sensible values.
        w.busy_ns = 2_000_000;
        w.idle_ns = 2_000_000;
        assert_eq!(w.utilization_pct(), 50.0);
        assert_eq!(w.keys_per_sec(), 4000.0);
        let table = render_worker_stats(&[w]);
        assert!(table.contains("util%"), "{table}");
        assert!(table.contains("keys/s"), "{table}");
        assert!(table.contains("50.0"), "{table}");
    }
}
