//! # eks-cracker — the real CPU cracking engine
//!
//! Where the simulated GPUs model *performance*, this crate does the
//! actual *work*: multi-threaded brute-force search over a
//! [`eks_keyspace::KeySpace`] against real MD5/SHA-1 targets, with the
//! paper's structure — interval dispatch, cheap `next`-operator
//! enumeration, periodic stop-condition polling — mapped onto CPU threads
//! instead of CUDA warps.
//!
//! Also hosts the Bitcoin-style mining search the paper's introduction
//! motivates: a SHA-256d nonce scan against a leading-zero-bits target
//! ([`mining`]).

pub mod audit;
pub mod backend;
pub mod batch;
pub mod engine;
pub mod generic;
pub mod mining;
pub mod parallel;
pub mod progress;
pub mod resume;
pub mod stats;
pub mod target;

pub use audit::{AuditEntry, AuditFinding, AuditReport, AuditSession};
pub use backend::{
    cpu_backend, cpu_backend_observed, AutoBackend, LaneBackend, ObservedLaneBackend,
    ScalarBackend, SimdBackend,
};
pub use batch::{
    crack_interval_batched, crack_interval_batched_observed, crack_interval_simd,
    crack_interval_simd_observed, layout_for, Lanes,
};
pub use engine::{crack_interval, CrackOutcome};
pub use generic::{crack_space_interval, crack_space_parallel};
pub use mining::{mine, MiningJob, MiningResult};
pub use parallel::{
    crack_parallel, crack_parallel_backend, crack_parallel_backend_observed,
    crack_parallel_observed, ParallelConfig, ParallelReport,
};
pub use progress::ThroughputMeter;
pub use resume::Checkpoint;
pub use stats::{render_worker_stats, ClassUsage, PasswordStats};
pub use target::{HashTarget, TargetSet};
