//! Lane-batched interval scanning: the CPU mirror of the paper's
//! one-thread-per-candidate GPU kernels.
//!
//! Where [`crate::engine::crack_interval`] tests one candidate at a time
//! (generate, hash, compare — with a heap-allocated digest per test), this
//! module tests `L` candidates in lockstep, exactly as `L` threads of a
//! warp would: a [`BlockBatch`] writes `L` consecutive candidates'
//! pre-padded blocks in place (no allocation), a structure-of-arrays
//! compression core from `eks-hashes::lanes` hashes all lanes together
//! (autovectorized), and the [`TargetSet`] prefilter reduces the common
//! miss to one `u32` compare per lane.
//!
//! The MD5 step-reversal optimization (Section V-B) composes with
//! batching: when a batch's candidates share every block word except
//! `w[0]` — reported by [`BatchInfo::uniform_suffix`] — and a single MD5
//! target is sought, the 49-step reversed path runs instead of the full
//! 64 steps, with the reversed reference memoized per suffix epoch.
//!
//! The scalar engine remains the correctness oracle: tails shorter than
//! `L` fall back to it, and the property tests assert batched and scalar
//! sweeps produce identical hits.
//!
//! [`BatchInfo::uniform_suffix`]: eks_keyspace::BatchInfo

use std::sync::atomic::AtomicBool;
use std::time::Instant;

use eks_engine::PollCursor;
use eks_hashes::{sha1, AutoVec, HashAlgo, LaneHasher, Md5PrefixSearch, SimdHasher};
use eks_keyspace::{BlockBatch, BlockLayout, Interval, Key, KeySpace, Order};
use eks_telemetry::{names, Counter, Histogram, Telemetry};

use crate::engine::{crack_interval, CrackOutcome};
#[cfg(test)]
use crate::engine::POLL_CHUNK;
use crate::target::TargetSet;

/// Lane width of the batched test path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Lanes {
    /// The scalar reference path: one candidate at a time.
    Scalar,
    /// 8 lanes — one AVX2 register of `u32`s per state word.
    #[default]
    L8,
    /// 16 lanes — two AVX2 registers (or one AVX-512 register) per word.
    L16,
}

impl Lanes {
    /// Candidates per batch; 0 for the scalar path.
    pub fn width(self) -> usize {
        match self {
            Lanes::Scalar => 0,
            Lanes::L8 => 8,
            Lanes::L16 => 16,
        }
    }

    /// Parse a CLI argument: `scalar`/`1`, `8`, or `16`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" | "1" => Some(Lanes::Scalar),
            "8" => Some(Lanes::L8),
            "16" => Some(Lanes::L16),
            _ => None,
        }
    }

    /// Human-readable name (mirrors [`Lanes::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Lanes::Scalar => "scalar",
            Lanes::L8 => "8",
            Lanes::L16 => "16",
        }
    }
}

impl std::fmt::Display for Lanes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The block layout a hash algorithm expects its candidates in.
pub fn layout_for(algo: HashAlgo) -> BlockLayout {
    match algo {
        HashAlgo::Md5 | HashAlgo::Md5Iter { .. } => BlockLayout::Md5Le,
        HashAlgo::Ntlm => BlockLayout::NtlmUtf16Le,
        HashAlgo::Sha1 => BlockLayout::ShaBe,
    }
}

/// True when the batched lane kernels cannot run `algo` directly: the
/// iterated KDF re-hashes each digest a data-dependent number of times,
/// which has no lockstep formulation, so the batched entry points drop
/// to the scalar cracker (which hashes through [`TargetSet::matches`]
/// and is therefore correct for every algorithm).
fn needs_scalar_fallback(algo: HashAlgo) -> bool {
    algo.base() != algo
}

/// Every `SAMPLE_MASK + 1`-th batch gets its fill and hash phases wall-
/// timed when telemetry is on; all other batches run untimed, so the
/// instrumented loop stays within the bench's overhead gate.
const SAMPLE_MASK: u64 = 63;

/// Pre-registered batch-path instruments. Prefilter outcomes are tallied
/// in thread-local integers and flushed once per scan; fill/hash timing
/// is sampled per [`SAMPLE_MASK`].
struct BatchInstruments {
    enabled: bool,
    fill_ns: Histogram,
    hash_ns: Histogram,
    prefilter_hits: Counter,
    prefilter_misses: Counter,
}

impl BatchInstruments {
    fn new(telemetry: &Telemetry) -> Self {
        Self {
            enabled: telemetry.is_enabled(),
            fill_ns: telemetry.histogram(names::BATCH_FILL_NS, &[]),
            hash_ns: telemetry.histogram(names::BATCH_HASH_NS, &[]),
            prefilter_hits: telemetry.counter(names::PREFILTER_HITS, &[]),
            prefilter_misses: telemetry.counter(names::PREFILTER_MISSES, &[]),
        }
    }
}

/// Like [`crack_interval`] but testing `lanes` candidates in lockstep.
/// Produces the same hits as the scalar engine over the same interval;
/// `tested` counts whole batches, so a first-hit stop may report up to
/// `L - 1` more candidates than the scalar path (the other lanes really
/// were tested — in lockstep).
pub fn crack_interval_batched(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    stop: &AtomicBool,
    first_hit_only: bool,
    lanes: Lanes,
) -> CrackOutcome {
    crack_interval_batched_observed(
        space,
        targets,
        interval,
        stop,
        first_hit_only,
        lanes,
        &Telemetry::disabled(),
    )
}

/// [`crack_interval_batched`] with batch-path telemetry: sampled
/// batch-fill vs. lane-hash wall time and `TargetSet` prefilter
/// hit/miss counters (flushed once per scan, never per key). A disabled
/// handle makes this identical to the unobserved path.
pub fn crack_interval_batched_observed(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    stop: &AtomicBool,
    first_hit_only: bool,
    lanes: Lanes,
    telemetry: &Telemetry,
) -> CrackOutcome {
    if needs_scalar_fallback(targets.algo()) {
        return crack_interval(space, targets, interval, stop, first_hit_only);
    }
    let instruments = BatchInstruments::new(telemetry);
    match lanes {
        Lanes::Scalar => crack_interval(space, targets, interval, stop, first_hit_only),
        Lanes::L8 => {
            crack_lanes::<8, _>(space, targets, interval, stop, first_hit_only, &instruments, AutoVec)
        }
        Lanes::L16 => {
            crack_lanes::<16, _>(space, targets, interval, stop, first_hit_only, &instruments, AutoVec)
        }
    }
}

/// Like [`crack_interval_batched`] but running the explicit-SIMD kernels
/// of a detected ISA (AVX2 = 16 keys per batch, AVX-512F = 32, NEON = 8)
/// instead of the autovectorized lanes. The [`SimdHasher`] is the proof
/// of availability: it can only be built by runtime feature detection.
pub fn crack_interval_simd(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    stop: &AtomicBool,
    first_hit_only: bool,
    hasher: SimdHasher,
) -> CrackOutcome {
    crack_interval_simd_observed(
        space,
        targets,
        interval,
        stop,
        first_hit_only,
        hasher,
        &Telemetry::disabled(),
    )
}

/// [`crack_interval_simd`] with the same batch-path telemetry as
/// [`crack_interval_batched_observed`].
pub fn crack_interval_simd_observed(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    stop: &AtomicBool,
    first_hit_only: bool,
    hasher: SimdHasher,
    telemetry: &Telemetry,
) -> CrackOutcome {
    if needs_scalar_fallback(targets.algo()) {
        return crack_interval(space, targets, interval, stop, first_hit_only);
    }
    let instruments = BatchInstruments::new(telemetry);
    match hasher {
        #[cfg(target_arch = "x86_64")]
        SimdHasher::Avx2(h) => {
            crack_lanes::<16, _>(space, targets, interval, stop, first_hit_only, &instruments, h)
        }
        #[cfg(target_arch = "x86_64")]
        SimdHasher::Avx512(h) => {
            crack_lanes::<32, _>(space, targets, interval, stop, first_hit_only, &instruments, h)
        }
        #[cfg(target_arch = "aarch64")]
        SimdHasher::Neon(h) => {
            crack_lanes::<8, _>(space, targets, interval, stop, first_hit_only, &instruments, h)
        }
    }
}

fn crack_lanes<const L: usize, H: LaneHasher<L>>(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    stop: &AtomicBool,
    first_hit_only: bool,
    instruments: &BatchInstruments,
    hasher: H,
) -> CrackOutcome {
    let clamped = interval.intersect(&space.interval());
    let algo = targets.algo();
    let mut writer = BlockBatch::new(space, layout_for(algo), clamped);
    let mut blocks = [[0u32; 16]; L];
    let mut hits: Vec<(u128, Key, usize)> = Vec::new();
    let mut tested: u128 = 0;
    // The shared poll loop, with chunks rounded up to the lane count so
    // batches never straddle a stop check.
    let mut cursor = PollCursor::with_stride(clamped, stop, L as u128);
    let mut found_first = false;
    // The reversed 49-step path needs a single MD5 target (the reversal is
    // per-target) and a batch whose lanes share all words but w[0].
    let single_md5: Option<[u8; 16]> = (algo == HashAlgo::Md5 && targets.len() == 1).then(|| {
        targets
            .digest(0)
            .try_into()
            .expect("MD5 digests are 16 bytes")
    });
    // The w0-only fast fill: a single-target MD5 search in first-char-
    // fastest order varies only the leading key bytes, so the steady
    // state writes one word per candidate instead of sixteen and the
    // reversed kernel reads the shared suffix from the epoch template.
    // (Under last-char-fastest nearly every batch would need the full-
    // block reconstruction below, so the plain fill is kept there.)
    let w0_fast = single_md5.is_some() && space.order() == Order::FirstCharFastest;
    let mut w0s = [0u32; L];
    let mut reversed: Option<(u64, Md5PrefixSearch)> = None;
    let mut batch_index: u64 = 0;
    let mut pf_checked: u64 = 0;
    let mut pf_hits: u64 = 0;

    'outer: while let Some(chunk) = cursor.next_chunk() {
        debug_assert_eq!(chunk.start, writer.next_id(), "writer tracks the cursor");
        let mut batches = chunk.len / L as u128;
        while batches > 0 {
            batches -= 1;
            let sample = instruments.enabled && batch_index & SAMPLE_MASK == 0;
            batch_index += 1;
            let t_fill = sample.then(Instant::now);
            let (info, template0) = if w0_fast {
                writer.fill_w0s(&mut w0s)
            } else {
                let info = writer.fill(&mut blocks);
                (info, blocks[0])
            };
            if let Some(t0) = t_fill {
                instruments.fill_ns.observe(t0.elapsed().as_nanos() as u64);
            }
            tested += L as u128;

            let t_hash = sample.then(Instant::now);
            let mut lane_hit: [Option<usize>; L] = [None; L];
            if let Some(target) = single_md5.as_ref().filter(|_| info.uniform_suffix) {
                // The reversed reference depends only on the target and the
                // suffix words: rebuild it when the suffix epoch moves,
                // reuse it otherwise (the overwhelmingly common case).
                if reversed.as_ref().map(|(e, _)| *e) != Some(info.epoch) {
                    reversed = Some((info.epoch, Md5PrefixSearch::new(target, template0)));
                }
                let (_, search) = reversed.as_ref().expect("just built");
                if !w0_fast {
                    for (w0, block) in w0s.iter_mut().zip(&blocks) {
                        *w0 = block[0];
                    }
                }
                let states = hasher.md5_forward49_batch(search.template(), &w0s);
                let r = search.reference();
                for (slot, s) in lane_hit.iter_mut().zip(&states) {
                    // `&` instead of `&&`: no per-lane branches in the
                    // common all-miss case.
                    if (s[0] == r[0]) & (s[1] == r[1]) & (s[2] == r[2]) & (s[3] == r[3]) {
                        *slot = Some(0); // single target: digest index 0
                    }
                }
            } else {
                if w0_fast {
                    // A suffix word moved mid-batch under the w0-only
                    // fill (once per w[0] rollover): reconstruct the full
                    // blocks for these identifiers and hash forward.
                    let mut rebuild =
                        BlockBatch::new(space, layout_for(algo), Interval::new(info.start_id, L as u128));
                    rebuild.fill(&mut blocks);
                }
                match algo {
                    HashAlgo::Md5 | HashAlgo::Ntlm => {
                        let states = if algo == HashAlgo::Md5 {
                            hasher.md5_batch(&blocks)
                        } else {
                            hasher.md4_batch(&blocks)
                        };
                        pf_checked += L as u64;
                        for (slot, state) in lane_hit.iter_mut().zip(&states) {
                            if targets.prefilter_match(state[0]) {
                                pf_hits += 1;
                                // MD4 shares MD5's little-endian serialization.
                                let digest = eks_hashes::md5::state_to_digest(*state);
                                *slot = targets.match_digest(&digest);
                            }
                        }
                    }
                    HashAlgo::Sha1 => {
                        let a75s = hasher.sha1_a75_batch(&blocks);
                        pf_checked += L as u64;
                        for ((slot, &a75), block) in lane_hit.iter_mut().zip(&a75s).zip(&blocks) {
                            if targets.prefilter_match(a75) {
                                pf_hits += 1;
                                // Rare survivor (≈ len·2⁻³² of candidates): confirm
                                // with the full compression.
                                let state = sha1::sha1_compress(sha1::IV, block);
                                *slot = targets.match_digest(&sha1::state_to_digest(state));
                            }
                        }
                    }
                    HashAlgo::Md5Iter { .. } => {
                        unreachable!("iterated algos fall back to the scalar cracker")
                    }
                }
            }
            if let Some(t0) = t_hash {
                instruments.hash_ns.observe(t0.elapsed().as_nanos() as u64);
            }
            for (l, hit) in lane_hit.iter().enumerate() {
                if let Some(t) = *hit {
                    let id = info.start_id + l as u128;
                    hits.push((id, space.key_at(id), t));
                    if first_hit_only {
                        found_first = true;
                        break 'outer;
                    }
                }
            }
        }
    }
    if instruments.enabled {
        instruments.prefilter_hits.add(pf_hits);
        instruments.prefilter_misses.add(pf_checked - pf_hits);
    }

    // Tail shorter than a batch: hand the remainder to the scalar oracle,
    // unless the batched loop already terminated the search.
    let mut cancelled = cursor.cancelled();
    if !cancelled && !found_first && writer.remaining() > 0 {
        let tail = Interval::new(writer.next_id(), writer.remaining());
        let out = crack_interval(space, targets, tail, stop, first_hit_only);
        hits.extend(out.hits);
        tested += out.tested;
        cancelled = out.cancelled;
    }
    CrackOutcome {
        hits,
        tested,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_keyspace::{Charset, Order};

    fn space(order: Order) -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, order).unwrap()
    }

    fn targets(algo: HashAlgo, words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| algo.hash_long(w)).collect();
        TargetSet::new(algo, &ds)
    }

    #[test]
    fn poll_boundary_is_a_multiple_of_every_lane_width() {
        for lanes in [Lanes::L8, Lanes::L16] {
            assert_eq!(POLL_CHUNK % lanes.width() as u128, 0, "{lanes}");
        }
    }

    #[test]
    fn poll_boundary_is_a_multiple_of_every_simd_width() {
        for isa in eks_hashes::SimdIsa::ALL {
            assert_eq!(POLL_CHUNK % isa.batch_width() as u128, 0, "{isa}");
        }
    }

    #[test]
    fn simd_full_sweep_matches_scalar_all_algos() {
        let Some(hasher) = SimdHasher::best() else {
            eprintln!("skipped: no explicit-SIMD ISA on this host");
            return;
        };
        for algo in [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm] {
            for order in [Order::FirstCharFastest, Order::LastCharFastest] {
                let s = space(order);
                let t = targets(algo, &[b"a", b"zz", b"cat", b"mnop"]);
                let stop = AtomicBool::new(false);
                let scalar = crack_interval(&s, &t, s.interval(), &stop, false);
                let simd = crack_interval_simd(&s, &t, s.interval(), &stop, false, hasher);
                assert_eq!(simd.hits, scalar.hits, "{algo:?} {order:?} {hasher:?}");
                assert_eq!(simd.tested, scalar.tested, "{algo:?} {order:?} {hasher:?}");
            }
        }
    }

    #[test]
    fn simd_reversed_md5_sweep_matches_scalar_across_growth_epochs() {
        // A single MD5 target in first-char-fastest order turns on the
        // w0-only fast fill; lengths 1..4 cross growth boundaries, so
        // non-uniform batches exercise the full-block reconstruction.
        let Some(hasher) = SimdHasher::best() else {
            eprintln!("skipped: no explicit-SIMD ISA on this host");
            return;
        };
        let s = space(Order::FirstCharFastest);
        let t = targets(HashAlgo::Md5, &[b"dog"]);
        let stop = AtomicBool::new(false);
        let scalar = crack_interval(&s, &t, s.interval(), &stop, false);
        let simd = crack_interval_simd(&s, &t, s.interval(), &stop, false, hasher);
        assert_eq!(simd.hits, scalar.hits);
        assert_eq!(simd.tested, scalar.tested);
    }

    #[test]
    fn w0_fast_fill_sweep_matches_scalar_on_autovec_lanes() {
        // Same single-target setup on the autovectorized path: the fast
        // fill is independent of the hasher, so L8/L16 take it too.
        let s = space(Order::FirstCharFastest);
        let t = targets(HashAlgo::Md5, &[b"mnop"]);
        let stop = AtomicBool::new(false);
        let scalar = crack_interval(&s, &t, s.interval(), &stop, false);
        for lanes in [Lanes::L8, Lanes::L16] {
            let batched = crack_interval_batched(&s, &t, s.interval(), &stop, false, lanes);
            assert_eq!(batched.hits, scalar.hits, "{lanes}");
            assert_eq!(batched.tested, scalar.tested, "{lanes}");
        }
    }

    #[test]
    fn batched_full_sweep_matches_scalar_all_algos() {
        for algo in [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm] {
            for order in [Order::FirstCharFastest, Order::LastCharFastest] {
                let s = space(order);
                let t = targets(algo, &[b"a", b"zz", b"cat", b"mnop"]);
                let stop = AtomicBool::new(false);
                let scalar = crack_interval(&s, &t, s.interval(), &stop, false);
                for lanes in [Lanes::L8, Lanes::L16] {
                    let batched = crack_interval_batched(&s, &t, s.interval(), &stop, false, lanes);
                    assert_eq!(batched.hits, scalar.hits, "{algo:?} {order:?} {lanes}");
                    assert_eq!(batched.tested, scalar.tested, "{algo:?} {order:?} {lanes}");
                }
            }
        }
    }

    #[test]
    fn reversed_md5_path_finds_single_target() {
        // Single MD5 target + uniform batches: the 49-step path runs.
        let s = space(Order::FirstCharFastest);
        let t = targets(HashAlgo::Md5, &[b"dog"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval_batched(&s, &t, s.interval(), &stop, true, Lanes::L8);
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].1.as_bytes(), b"dog");
    }

    #[test]
    fn reversed_md5_survives_epoch_changes() {
        // Last-char-fastest on a length-5..6 space: suffix words change
        // constantly, forcing reversed-reference rebuilds (or the forward
        // fallback on non-uniform batches). Either way hits must match.
        let s = KeySpace::new(
            Charset::from_bytes(b"abcd").unwrap(),
            5,
            6,
            Order::LastCharFastest,
        )
        .unwrap();
        let t = targets(HashAlgo::Md5, &[b"bacad"]);
        let stop = AtomicBool::new(false);
        let scalar = crack_interval(&s, &t, s.interval(), &stop, false);
        let batched = crack_interval_batched(&s, &t, s.interval(), &stop, false, Lanes::L16);
        assert_eq!(batched.hits, scalar.hits);
    }

    #[test]
    fn tail_shorter_than_a_batch_is_scanned() {
        let s = space(Order::FirstCharFastest);
        // 26 + 3 candidates: one L16 batch + 13-candidate tail.
        let iv = Interval::new(0, 29);
        let tail_key = s.key_at(27);
        let t = TargetSet::new(
            HashAlgo::Md5,
            &[HashAlgo::Md5.hash_long(tail_key.as_bytes())],
        );
        let stop = AtomicBool::new(false);
        let out = crack_interval_batched(&s, &t, iv, &stop, false, Lanes::L16);
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].0, 27);
        assert_eq!(out.tested, 29);
    }

    #[test]
    fn interval_smaller_than_a_batch_is_all_tail() {
        let s = space(Order::FirstCharFastest);
        let t = targets(HashAlgo::Md5, &[b"c"]);
        let stop = AtomicBool::new(false);
        let out = crack_interval_batched(&s, &t, Interval::new(0, 5), &stop, false, Lanes::L8);
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.tested, 5);
    }

    #[test]
    fn pre_raised_stop_tests_nothing() {
        let s = space(Order::FirstCharFastest);
        let t = targets(HashAlgo::Md5, &[b"dog"]);
        let stop = AtomicBool::new(true);
        let out = crack_interval_batched(&s, &t, s.interval(), &stop, true, Lanes::L8);
        assert!(out.cancelled);
        assert_eq!(out.tested, 0);
    }

    #[test]
    fn first_hit_stops_the_batched_scan() {
        let s = space(Order::FirstCharFastest);
        let t = targets(HashAlgo::Md5, &[b"b"]); // identifier 1
        let stop = AtomicBool::new(false);
        let out = crack_interval_batched(&s, &t, s.interval(), &stop, true, Lanes::L8);
        assert_eq!(out.hits.len(), 1);
        assert!(out.tested <= 8, "stopped within the first batch");
    }

    #[test]
    fn scalar_lanes_delegate_to_the_engine() {
        let s = space(Order::FirstCharFastest);
        let t = targets(HashAlgo::Md5, &[b"dog"]);
        let stop = AtomicBool::new(false);
        let a = crack_interval_batched(&s, &t, s.interval(), &stop, true, Lanes::Scalar);
        let b = crack_interval(&s, &t, s.interval(), &stop, true);
        assert_eq!(a, b);
    }

    #[test]
    fn lanes_parse_round_trips() {
        for lanes in [Lanes::Scalar, Lanes::L8, Lanes::L16] {
            assert_eq!(Lanes::parse(lanes.name()), Some(lanes));
        }
        assert_eq!(Lanes::parse("1"), Some(Lanes::Scalar));
        assert_eq!(Lanes::parse("32"), None);
    }
}
