//! Multi-threaded cracking: the fine-grain parallelization of Section III
//! mapped onto CPU threads.
//!
//! Each thread owns a contiguous share of the interval (no shared
//! cursor in the common case), pops guided-size chunks off its own
//! deque, and steals the back half of the largest remote deque when it
//! drains — the engine layer's [`SchedPolicy::Steal`] default. The
//! legacy shared-queue and purely static splits remain selectable via
//! [`ParallelConfig::sched`]. A shared stop flag ends the search at the
//! first hit when only one preimage is wanted.

use std::time::Instant;

use eks_engine::{
    Backend, Dispatcher, ProgressEvent, Retune, ScanMode, SchedOptions, SchedPolicy, WorkerStats,
};
use eks_keyspace::{Interval, Key, KeySpace};
use eks_telemetry::{names, Telemetry};

use crate::backend::{cpu_backend, cpu_backend_observed};
use crate::batch::Lanes;
use crate::target::TargetSet;

/// Parallel search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker thread count (≥ 1).
    pub threads: usize,
    /// Keys per work chunk: the fixed pop size under
    /// [`SchedPolicy::Queue`], the guided floor otherwise.
    pub chunk: u64,
    /// Stop the whole search at the first hit.
    pub first_hit_only: bool,
    /// Lane width of the per-thread test path (batched by default).
    pub lanes: Lanes,
    /// Scheduling policy across threads (adaptive stealing by default).
    pub sched: SchedPolicy,
    /// Closed-loop retuning: live per-thread rate estimates feed
    /// periodic drift checks and deque re-scatters. `None` (the
    /// default) reproduces the static accounting exactly.
    pub retune: Option<Retune>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::for_threads(4)
    }
}

impl ParallelConfig {
    /// A configuration whose chunk size is derived from the thread count
    /// via [`ParallelConfig::default_chunk`], first-hit semantics, default
    /// lane width.
    pub fn for_threads(threads: usize) -> Self {
        Self {
            threads,
            chunk: Self::default_chunk(threads),
            first_hit_only: true,
            lanes: Lanes::default(),
            sched: SchedPolicy::Steal,
            retune: None,
        }
    }

    /// Chunk size for a thread count: a fixed per-sweep work budget
    /// (2¹⁸ keys) divided across threads, so more workers pull finer
    /// chunks (better load balance and first-hit latency) while few
    /// workers amortize cursor traffic over bigger ones. Clamped to
    /// `[16, 2¹⁶]` and kept a multiple of 16 so chunks compose with every
    /// lane width.
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn default_chunk(threads: usize) -> u64 {
        assert!(threads >= 1, "need at least one thread");
        ((1u64 << 18) / threads as u64)
            .clamp(16, 1 << 16)
            .next_multiple_of(16)
    }
}

/// Outcome of a parallel search.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// All hits found, in identifier order.
    pub hits: Vec<(u128, Key, usize)>,
    /// Total candidates tested across threads.
    pub tested: u128,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Throughput in million key tests per second (the paper's MKey/s).
    pub mkeys_per_s: f64,
    /// Per-thread scheduler stats (tested, steals, splits, idle/busy
    /// time) in registration order.
    pub stats: Vec<WorkerStats>,
}

/// Crack `interval` of `space` against `targets` with `config.threads`
/// workers on the CPU backend selected by `config.lanes`.
///
/// # Panics
/// Panics when `config.threads == 0` or `config.chunk == 0`.
pub fn crack_parallel(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    config: ParallelConfig,
) -> ParallelReport {
    crack_parallel_backend(
        space,
        targets,
        interval,
        &*cpu_backend(config.lanes),
        config,
    )
}

/// Like [`crack_parallel`] but over any engine-layer [`Backend`]: the
/// worker scheduling is the [`Dispatcher`]'s, so this path and the
/// cluster runtimes share one chunk/poll/cancel/merge implementation.
///
/// # Panics
/// Panics when `config.threads == 0` or `config.chunk == 0`.
pub fn crack_parallel_backend(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    backend: &dyn Backend,
    config: ParallelConfig,
) -> ParallelReport {
    crack_parallel_backend_observed(
        space,
        targets,
        interval,
        backend,
        config,
        &Telemetry::disabled(),
        |_| {},
    )
}

/// [`crack_parallel`] with telemetry and a progress hook: the batch
/// path reports fill/hash timing and prefilter counters, the dispatcher
/// reports chunk spans and per-worker accounting, and `progress` fires
/// after every merged chunk scan. A disabled handle and an empty hook
/// make this identical to [`crack_parallel`].
///
/// # Panics
/// Panics when `config.threads == 0` or `config.chunk == 0`.
pub fn crack_parallel_observed(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    config: ParallelConfig,
    telemetry: &Telemetry,
    progress: impl Fn(&ProgressEvent) + Sync,
) -> ParallelReport {
    crack_parallel_backend_observed(
        space,
        targets,
        interval,
        &*cpu_backend_observed(config.lanes, telemetry.clone()),
        config,
        telemetry,
        progress,
    )
}

/// The fully-instrumented core both [`crack_parallel_backend`] and
/// [`crack_parallel_observed`] reduce to.
///
/// # Panics
/// Panics when `config.threads == 0` or `config.chunk == 0`.
pub fn crack_parallel_backend_observed(
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    backend: &dyn Backend,
    config: ParallelConfig,
    telemetry: &Telemetry,
    progress: impl Fn(&ProgressEvent) + Sync,
) -> ParallelReport {
    let start = Instant::now();
    let run_span = telemetry
        .span(names::SPAN_RUN)
        .device(&backend.name())
        .field("threads", config.threads)
        .field("sched", config.sched)
        .field("chunk", config.chunk);
    let dispatcher = Dispatcher::new(
        space,
        targets,
        ScanMode::from_first_hit(config.first_hit_only),
    )
    .with_telemetry(telemetry.clone())
    .on_progress(progress);
    assert!(config.chunk >= 1, "chunk must be positive");
    let mut opts = SchedOptions::for_policy(config.sched, config.chunk as u128);
    if let Some(retune) = config.retune {
        opts = opts.with_retune(retune);
    }
    dispatcher.run_workers_opts(backend, interval, config.threads, opts);
    let report = dispatcher.finish();
    run_span.finish();
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    ParallelReport {
        hits: report.hits,
        tested: report.tested,
        elapsed_s,
        mkeys_per_s: report.tested as f64 / elapsed_s / 1e6,
        stats: report.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eks_hashes::HashAlgo;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn parallel_finds_planted_key() {
        let s = space();
        let t = targets(&[b"mule"]);
        let cfg = ParallelConfig {
            threads: 4,
            chunk: 1 << 12,
            ..ParallelConfig::default()
        };
        let r = crack_parallel(&s, &t, s.interval(), cfg);
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].1.as_bytes(), b"mule");
        assert!(r.mkeys_per_s > 0.0);
    }

    #[test]
    fn parallel_finds_every_target_in_full_sweep() {
        let s = space();
        let words: Vec<&[u8]> = vec![b"a", b"zz", b"cat", b"mnop"];
        let t = targets(&words);
        let cfg = ParallelConfig {
            threads: 3,
            chunk: 1 << 10,
            first_hit_only: false,
            ..ParallelConfig::default()
        };
        let r = crack_parallel(&s, &t, s.interval(), cfg);
        assert_eq!(r.hits.len(), 4);
        assert_eq!(r.tested, s.size(), "full sweep tests everything");
        // Identifier order.
        let ids: Vec<u128> = r.hits.iter().map(|(id, _, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn single_thread_matches_multi_thread_results() {
        let s = space();
        let t = targets(&[b"dog", b"pig"]);
        let base = ParallelConfig {
            threads: 1,
            chunk: 1 << 10,
            first_hit_only: false,
            ..ParallelConfig::default()
        };
        let multi = ParallelConfig { threads: 4, ..base };
        let r1 = crack_parallel(&s, &t, s.interval(), base);
        let r4 = crack_parallel(&s, &t, s.interval(), multi);
        assert_eq!(r1.hits, r4.hits);
    }

    #[test]
    fn batched_lanes_find_the_same_hits_as_scalar() {
        let s = space();
        let t = targets(&[b"dog", b"pig", b"mnop"]);
        let base = ParallelConfig {
            threads: 2,
            chunk: 1 << 10,
            first_hit_only: false,
            lanes: Lanes::Scalar,
            ..ParallelConfig::for_threads(2)
        };
        let scalar = crack_parallel(&s, &t, s.interval(), base);
        for lanes in [Lanes::L8, Lanes::L16] {
            let batched = crack_parallel(&s, &t, s.interval(), ParallelConfig { lanes, ..base });
            assert_eq!(batched.hits, scalar.hits, "{lanes}");
            assert_eq!(batched.tested, scalar.tested, "{lanes}");
        }
    }

    #[test]
    fn huge_interval_does_not_overflow_chunk_dispatch() {
        // Σ_{i=1}^{20} 62^i ≈ 7.2·10³⁵ candidates: an early dispatch
        // tracked chunks on a u64 cursor and panicked here with chunk = 1.
        // The interval deques are u128-native, so no widening is needed.
        let s = KeySpace::new(Charset::alphanumeric(), 1, 20, Order::FirstCharFastest).unwrap();
        let t = targets(&[b"a"]); // identifier 0: found immediately
        let cfg = ParallelConfig {
            threads: 2,
            chunk: 1,
            first_hit_only: true,
            lanes: Lanes::L8,
            ..ParallelConfig::for_threads(2)
        };
        let r = crack_parallel(&s, &t, s.interval(), cfg);
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].1.as_bytes(), b"a");
    }

    #[test]
    fn default_chunk_scales_with_threads_and_composes_with_lanes() {
        assert_eq!(ParallelConfig::default_chunk(1), 1 << 16);
        assert_eq!(ParallelConfig::default_chunk(4), 1 << 16);
        assert_eq!(ParallelConfig::default_chunk(8), 1 << 15);
        assert_eq!(ParallelConfig::default_chunk(1 << 20), 16);
        for threads in 1..=64 {
            let chunk = ParallelConfig::default_chunk(threads);
            assert_eq!(chunk % 16, 0, "chunk must compose with every lane width");
            assert!(chunk >= 16);
        }
    }

    #[test]
    fn every_sched_policy_finds_the_same_hits() {
        let s = space();
        let t = targets(&[b"dog", b"pig", b"mnop"]);
        let mut reference: Option<Vec<(u128, Key, usize)>> = None;
        for sched in SchedPolicy::ALL {
            let cfg = ParallelConfig {
                threads: 3,
                first_hit_only: false,
                sched,
                ..ParallelConfig::for_threads(3)
            };
            let r = crack_parallel(&s, &t, s.interval(), cfg);
            assert_eq!(r.tested, s.size(), "{sched}: full sweep");
            assert_eq!(r.stats.len(), 3, "{sched}: one stats row per thread");
            assert_eq!(
                r.stats.iter().map(|w| w.tested).sum::<u128>(),
                r.tested,
                "{sched}: stats account for every test"
            );
            match &reference {
                None => reference = Some(r.hits),
                Some(hits) => assert_eq!(&r.hits, hits, "{sched}"),
            }
        }
    }

    #[test]
    fn steal_and_split_counters_balance() {
        let s = space();
        let t = targets(&[b"zzzz"]);
        let cfg = ParallelConfig {
            threads: 4,
            first_hit_only: false,
            ..ParallelConfig::for_threads(4)
        };
        let r = crack_parallel(&s, &t, s.interval(), cfg);
        let steals: u64 = r.stats.iter().map(|w| w.steals).sum();
        let splits: u64 = r.stats.iter().map(|w| w.splits).sum();
        assert_eq!(steals, splits, "every steal splits exactly one victim");
    }

    #[test]
    fn empty_interval_reports_zero() {
        let s = space();
        let t = targets(&[b"dog"]);
        let r = crack_parallel(&s, &t, Interval::new(0, 0), ParallelConfig::default());
        assert!(r.hits.is_empty());
        assert_eq!(r.tested, 0);
    }

    #[test]
    fn first_hit_stops_early_on_full_space() {
        let s = space();
        // "a" is identifier 0: the search should terminate almost
        // immediately even over the full space.
        let t = targets(&[b"a"]);
        let cfg = ParallelConfig {
            threads: 4,
            chunk: 1 << 10,
            ..ParallelConfig::default()
        };
        let r = crack_parallel(&s, &t, s.interval(), cfg);
        assert_eq!(r.hits[0].1.as_bytes(), b"a");
        assert!(
            r.tested < s.size() / 2,
            "tested {} of {}",
            r.tested,
            s.size()
        );
    }

    #[test]
    fn more_threads_do_not_lose_hits_near_chunk_boundaries() {
        let s = space();
        // Plant keys adjacent to chunk edges.
        let k1 = s.key_at(1023);
        let k2 = s.key_at(1024);
        let ds = vec![
            HashAlgo::Md5.hash_long(k1.as_bytes()),
            HashAlgo::Md5.hash_long(k2.as_bytes()),
        ];
        let t = TargetSet::new(HashAlgo::Md5, &ds);
        let cfg = ParallelConfig {
            threads: 8,
            chunk: 1024,
            first_hit_only: false,
            ..ParallelConfig::default()
        };
        let r = crack_parallel(&s, &t, Interval::new(0, 4096), cfg);
        assert_eq!(r.hits.len(), 2);
    }
}
