//! Seeded property tests for the batched cracking pipeline: the
//! zero-allocation [`BlockBatch`] writer must emit exactly the blocks the
//! reference padders would, and batched sweeps — single-threaded and
//! through `crack_parallel` — must find exactly the hits the scalar
//! engine finds, on random spaces, charsets, orders, and algorithms.

use std::sync::atomic::AtomicBool;

use eks_core::prop::{forall, Rng};
use eks_cracker::batch::{crack_interval_batched, Lanes};
use eks_cracker::{crack_interval, crack_parallel, ParallelConfig, TargetSet};
use eks_hashes::padding::{pad_md5_block, pad_sha_block};
use eks_hashes::HashAlgo;
use eks_keyspace::{BlockBatch, BlockLayout, Charset, Interval, KeySpace, Order};

/// A random charset of 2..=6 distinct printable symbols.
fn random_charset(rng: &mut Rng) -> Charset {
    let pool = b"abcdefghjkmnpqrstuvwxyz0123456789";
    let n = rng.range(2, 6) as usize;
    let mut picked: Vec<u8> = Vec::new();
    while picked.len() < n {
        let c = pool[rng.index(pool.len())];
        if !picked.contains(&c) {
            picked.push(c);
        }
    }
    Charset::from_bytes(&picked).expect("distinct non-empty symbols")
}

/// A random small space: ≤ ~1.5k candidates so a case stays fast.
fn random_space(rng: &mut Rng) -> KeySpace {
    let charset = random_charset(rng);
    let order =
        if rng.below(2) == 0 { Order::FirstCharFastest } else { Order::LastCharFastest };
    let max_len = rng.range(2, 4) as u32;
    let min_len = rng.range(1, max_len as u64) as u32;
    let space = KeySpace::new(charset, min_len, max_len, order).expect("valid space");
    if space.size() > 1500 {
        // Shrink by dropping a length: recurse is overkill, just clamp.
        KeySpace::new(space.charset().clone(), min_len, max_len - 1, order)
            .expect("valid smaller space")
    } else {
        space
    }
}

/// Reference block for a key under a layout, via the scalar padders.
fn reference_block(layout: BlockLayout, key: &[u8]) -> [u32; 16] {
    match layout {
        BlockLayout::Md5Le => pad_md5_block(key),
        BlockLayout::ShaBe => pad_sha_block(key),
        BlockLayout::NtlmUtf16Le => {
            let utf16: Vec<u8> = key.iter().flat_map(|&c| [c, 0]).collect();
            pad_md5_block(&utf16)
        }
    }
}

#[test]
fn block_batch_blocks_equal_reference_padding() {
    forall("block_batch_blocks_equal_reference_padding", 48, |rng| {
        let space = random_space(rng);
        let layout = [BlockLayout::Md5Le, BlockLayout::ShaBe, BlockLayout::NtlmUtf16Le]
            [rng.index(3)];
        // A random sub-interval, not always the whole space.
        let size = space.size();
        let start = rng.range_u128(0, size - 1);
        let len = rng.range_u128(1, size - start);
        let mut writer = BlockBatch::new(&space, layout, Interval::new(start, len));
        let mut blocks = [[0u32; 16]; 8];
        while writer.remaining() >= 8 {
            let info = writer.fill(&mut blocks);
            for (l, block) in blocks.iter().enumerate() {
                let id = info.start_id + l as u128;
                let key = space.key_at(id);
                assert_eq!(
                    *block,
                    reference_block(layout, key.as_bytes()),
                    "id {id} ({layout:?}, order {:?})",
                    space.order()
                );
            }
        }
    });
}

#[test]
fn batched_sweep_finds_exactly_the_scalar_hits() {
    forall("batched_sweep_finds_exactly_the_scalar_hits", 32, |rng| {
        let space = random_space(rng);
        let algo = [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm][rng.index(3)];
        // Plant 1..=3 random keys; duplicates collapse in the TargetSet.
        let n_targets = rng.range(1, 3) as usize;
        let digests: Vec<Vec<u8>> = (0..n_targets)
            .map(|_| {
                let id = rng.range_u128(0, space.size() - 1);
                algo.hash(space.key_at(id).as_bytes())
            })
            .collect();
        let targets = TargetSet::new(algo, &digests);
        let interval = space.interval();
        let stop = AtomicBool::new(false);
        let scalar = crack_interval(&space, &targets, interval, &stop, false);
        for lanes in [Lanes::L8, Lanes::L16] {
            let stop = AtomicBool::new(false);
            let batched =
                crack_interval_batched(&space, &targets, interval, &stop, false, lanes);
            assert_eq!(batched.hits, scalar.hits, "lanes {lanes} ({algo:?})");
            assert_eq!(batched.tested, scalar.tested, "lanes {lanes} ({algo:?})");
        }
    });
}

#[test]
fn crack_parallel_batched_finds_the_scalar_hits() {
    forall("crack_parallel_batched_finds_the_scalar_hits", 12, |rng| {
        let space = random_space(rng);
        let algo = [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm][rng.index(3)];
        let id = rng.range_u128(0, space.size() - 1);
        let digests = vec![algo.hash(space.key_at(id).as_bytes())];
        let targets = TargetSet::new(algo, &digests);
        let chunk = rng.range(16, 64).next_multiple_of(16);
        let run = |lanes| {
            crack_parallel(
                &space,
                &targets,
                space.interval(),
                ParallelConfig { threads: 2, chunk, first_hit_only: false, lanes, ..ParallelConfig::for_threads(2) },
            )
        };
        let scalar = run(Lanes::Scalar);
        for lanes in [Lanes::L8, Lanes::L16] {
            let batched = run(lanes);
            assert_eq!(batched.hits, scalar.hits, "lanes {lanes} ({algo:?})");
            assert_eq!(batched.tested, scalar.tested, "lanes {lanes} ({algo:?})");
        }
    });
}
