//! The acceptance gate for zero-allocation candidate generation: a
//! steady-state batched sweep must perform **zero** heap allocations per
//! candidate. A counting `GlobalAlloc` wrapper measures the whole sweep;
//! the scalar path (one `Vec<u8>` digest per candidate) is measured too,
//! as a positive control that the counter actually counts.
//!
//! The workspace denies `unsafe_code`; this test crate is the one
//! deliberate exception — a `GlobalAlloc` impl cannot be written without
//! `unsafe`, and the allocator below only forwards to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use eks_cracker::batch::{crack_interval_batched, Lanes};
use eks_cracker::TargetSet;
use eks_hashes::HashAlgo;
use eks_keyspace::{Charset, Interval, KeySpace, Order};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Count only while the measuring thread says so: libtest's own
    // channel machinery allocates concurrently on other threads and must
    // not pollute the measurement. `const` init so the TLS access itself
    // never allocates.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

struct CountingAlloc;

// SAFETY: pure pass-through to the system allocator; the counter is a
// relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_batch_loop_does_not_allocate() {
    // No possible hit, so no `key_at` / hit bookkeeping: pure steady state.
    let space =
        KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).expect("space");
    let impossible = TargetSet::new(HashAlgo::Md5, &[vec![0u8; 16]]);
    let stop = AtomicBool::new(false);
    // 32_000 is a multiple of both lane widths: no scalar tail, which
    // (deliberately) still allocates one digest per candidate.
    let interval = Interval::new(0, 32_000);

    for lanes in [Lanes::L8, Lanes::L16] {
        let allocs = allocs_during(|| {
            let out = crack_interval_batched(&space, &impossible, interval, &stop, false, lanes);
            assert_eq!(out.tested, 32_000);
            assert!(out.hits.is_empty());
        });
        assert_eq!(allocs, 0, "lanes {lanes}: {allocs} heap allocations in 32k candidates");
    }
}

#[test]
fn reversed_md5_batch_loop_does_not_allocate() {
    // Single MD5 target on FirstCharFastest engages the memoized
    // reversed path; rebuilding the `Md5PrefixSearch` per epoch must not
    // touch the heap either.
    let space =
        KeySpace::new(Charset::lowercase(), 5, 8, Order::FirstCharFastest).expect("space");
    let impossible = TargetSet::new(HashAlgo::Md5, &[vec![0u8; 16]]);
    let stop = AtomicBool::new(false);
    let allocs = allocs_during(|| {
        let out = crack_interval_batched(
            &space,
            &impossible,
            Interval::new(0, 32_000),
            &stop,
            false,
            Lanes::L8,
        );
        assert_eq!(out.tested, 32_000);
    });
    assert_eq!(allocs, 0, "reversed path: {allocs} heap allocations in 32k candidates");
}

#[test]
fn scalar_path_allocates_so_the_counter_is_live() {
    // Positive control: the scalar engine heap-allocates a digest per
    // candidate, so the counter must see plenty of traffic.
    let space =
        KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).expect("space");
    let impossible = TargetSet::new(HashAlgo::Md5, &[vec![0u8; 16]]);
    let stop = AtomicBool::new(false);
    let allocs = allocs_during(|| {
        crack_interval_batched(
            &space,
            &impossible,
            Interval::new(0, 1_000),
            &stop,
            false,
            Lanes::Scalar,
        );
    });
    assert!(allocs >= 1_000, "scalar control only saw {allocs} allocations");
}
