//! Property-based integration tests of the dispatch pattern across
//! crates: balancing, partitioning, kernel/hash agreement, and the DES.

use eks::cluster::{paper_network, simulate_search, SimParams};
use eks::core::partition::{balance_workloads, parallel_efficiency, NodeRate};
use eks::hashes::HashAlgo;
use eks::kernels::host::HostSearch;
use eks::kernels::md5::{build_md5, Md5Variant};
use eks::kernels::words_for_key_len;
use eks::kernels::Tool;
use eks::keyspace::{Charset, Interval, KeySpace, Order};
use proptest::prelude::*;

proptest! {
    /// Balanced workloads always yield ≥ 99 % predicted efficiency and
    /// respect every node's minimum batch, for arbitrary heterogeneous
    /// rate mixes.
    #[test]
    fn balancing_is_efficient_for_any_cluster(
        rates in proptest::collection::vec((1.0f64..5000.0, 1u128..1_000_000), 1..10)
    ) {
        let nodes: Vec<NodeRate> = rates
            .iter()
            .map(|&(x, n)| NodeRate::new(x, n))
            .collect();
        let a = balance_workloads(&nodes);
        for (sz, n) in a.sizes.iter().zip(&nodes) {
            prop_assert!(*sz >= n.min_batch);
        }
        prop_assert!(parallel_efficiency(&a.sizes, &nodes) > 0.99);
    }

    /// The naive MD5 kernel IR computes the real digest for arbitrary
    /// 4-byte candidates (kernels ↔ hashes cross-validation).
    #[test]
    fn kernel_ir_computes_md5_for_any_word(w0 in any::<u32>()) {
        let built = build_md5(Md5Variant::Naive, &words_for_key_len(4));
        let regs = built.ir.evaluate(&[w0]);
        let got: Vec<u32> = built.outputs.iter().map(|r| regs[r.0 as usize]).collect();
        let mut block = eks::hashes::padding::pad_md5_block(b"xxxx");
        block[0] = w0;
        let want = eks::hashes::md5::md5_compress(eks::hashes::md5::IV, &block);
        prop_assert_eq!(got, want.to_vec());
    }

    /// The reversed host search and a plain forward scan find the same
    /// keys for arbitrary planted secrets.
    #[test]
    fn host_search_matches_forward_scan(seed in 0u128..100_000) {
        let s = KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap();
        let id = seed % s.size();
        let secret = s.key_at(id);
        let digest = HashAlgo::Md5.hash(secret.as_bytes());
        let hs = HostSearch::new(HashAlgo::Md5, &digest);
        let hit = hs.search(&s, s.interval());
        prop_assert_eq!(hit, Some((id, secret)));
    }

    /// Splitting a space interval among n workers loses nothing and
    /// duplicates nothing, whatever the weights.
    #[test]
    fn weighted_split_is_a_partition(
        len in 1u128..1_000_000,
        weights in proptest::collection::vec(0.0f64..100.0, 1..8)
    ) {
        let iv = Interval::new(0, len);
        let parts = iv.split_weighted(&weights);
        prop_assert_eq!(parts.iter().map(|p| p.len).sum::<u128>(), len);
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].end(), w[1].start);
        }
    }

    /// DES sanity for arbitrary search sizes: efficiency is in (0, 1] and
    /// grows (weakly) with the search size.
    #[test]
    fn des_efficiency_monotone_in_search_size(exp in 8u32..13) {
        let net = paper_network(2e-3);
        let small = simulate_search(
            &net, Tool::OurApproach, HashAlgo::Md5, 10f64.powi(exp as i32), SimParams::default());
        let big = simulate_search(
            &net, Tool::OurApproach, HashAlgo::Md5, 10f64.powi(exp as i32 + 1), SimParams::default());
        prop_assert!(small.parallel_efficiency() > 0.0);
        prop_assert!(small.parallel_efficiency() <= 1.0);
        prop_assert!(big.parallel_efficiency() + 1e-9 >= small.parallel_efficiency());
    }
}

mod checkpoint_properties {
    use eks::cracker::Checkpoint;
    use eks::keyspace::Interval;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary take/complete/requeue sequences never lose or
        /// duplicate identifiers: remaining + completed == full, always.
        #[test]
        fn checkpoint_conserves_work(
            len in 1u128..100_000,
            ops in proptest::collection::vec((0u8..3, 1u128..5_000), 1..40)
        ) {
            let mut cp = Checkpoint::new(Interval::new(0, len));
            let mut in_flight: Vec<Interval> = Vec::new();
            let mut completed: u128 = 0;
            for (op, n) in ops {
                match op {
                    // take
                    0 => {
                        if let Some(iv) = cp.take_work(n) {
                            in_flight.push(iv);
                        }
                    }
                    // complete the oldest in-flight interval
                    1 => {
                        if let Some(iv) = in_flight.pop() {
                            cp.complete(iv);
                            completed += iv.len;
                        }
                    }
                    // requeue the oldest in-flight interval
                    _ => {
                        if let Some(iv) = in_flight.pop() {
                            cp.requeue(iv);
                        }
                    }
                }
                let in_flight_len: u128 = in_flight.iter().map(|iv| iv.len).sum();
                prop_assert_eq!(
                    cp.remaining() + in_flight_len + completed,
                    len,
                    "conservation"
                );
            }
            // Serialization round-trips whatever state we ended in.
            let back = Checkpoint::deserialize(&cp.serialize()).unwrap();
            prop_assert_eq!(back, cp);
        }
    }
}
