//! Property-based integration tests of the dispatch pattern across
//! crates: balancing, partitioning, kernel/hash agreement, and the DES.
//!
//! Uses the offline property harness `eks::core::prop` (the workspace
//! builds without registry access, so `proptest` is unavailable).

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks::cluster::{paper_network, simulate_search, SimParams};
use eks::core::partition::{balance_workloads, parallel_efficiency, NodeRate};
use eks::core::prop::forall;
use eks::hashes::HashAlgo;
use eks::kernels::host::HostSearch;
use eks::kernels::md5::{build_md5, Md5Variant};
use eks::kernels::words_for_key_len;
use eks::kernels::Tool;
use eks::keyspace::{Charset, Interval, KeySpace, Order};

/// Balanced workloads always yield ≥ 99 % predicted efficiency and
/// respect every node's minimum batch, for arbitrary heterogeneous
/// rate mixes.
#[test]
fn balancing_is_efficient_for_any_cluster() {
    forall("balancing efficiency", 96, |rng| {
        let n = rng.range(1, 9) as usize;
        let nodes: Vec<NodeRate> = (0..n)
            .map(|_| NodeRate::new(rng.f64_range(1.0, 5000.0), rng.range_u128(1, 1_000_000)))
            .collect();
        let a = balance_workloads(&nodes);
        for (sz, node) in a.sizes.iter().zip(&nodes) {
            assert!(*sz >= node.min_batch);
        }
        assert!(parallel_efficiency(&a.sizes, &nodes) > 0.99);
    });
}

/// The naive MD5 kernel IR computes the real digest for arbitrary
/// 4-byte candidates (kernels ↔ hashes cross-validation).
#[test]
fn kernel_ir_computes_md5_for_any_word() {
    let built = build_md5(Md5Variant::Naive, &words_for_key_len(4));
    forall("kernel IR vs real MD5", 128, |rng| {
        let w0 = rng.u32();
        let regs = built.ir.evaluate(&[w0]);
        let got: Vec<u32> = built.outputs.iter().map(|r| regs[r.0 as usize]).collect();
        let mut block = eks::hashes::padding::pad_md5_block(b"xxxx");
        block[0] = w0;
        let want = eks::hashes::md5::md5_compress(eks::hashes::md5::IV, &block);
        assert_eq!(got, want.to_vec());
    });
}

/// The reversed host search and a plain forward scan find the same
/// keys for arbitrary planted secrets.
#[test]
fn host_search_matches_forward_scan() {
    let s = KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap();
    forall("host search finds planted keys", 48, |rng| {
        let id = rng.range_u128(0, 99_999) % s.size();
        let secret = s.key_at(id);
        let digest = HashAlgo::Md5.hash(secret.as_bytes());
        let hs = HostSearch::new(HashAlgo::Md5, &digest);
        let hit = hs.search(&s, s.interval());
        assert_eq!(hit, Some((id, secret)));
    });
}

/// Splitting a space interval among n workers loses nothing and
/// duplicates nothing, whatever the weights.
#[test]
fn weighted_split_is_a_partition() {
    forall("weighted split partitions", 128, |rng| {
        let len = rng.range_u128(1, 1_000_000);
        let n = rng.range(1, 7) as usize;
        let weights: Vec<f64> = (0..n).map(|_| rng.f64_range(0.0, 100.0)).collect();
        let iv = Interval::new(0, len);
        let parts = iv.split_weighted(&weights);
        assert_eq!(parts.iter().map(|p| p.len).sum::<u128>(), len);
        for w in parts.windows(2) {
            assert_eq!(w[0].end(), w[1].start);
        }
    });
}

/// DES sanity for arbitrary search sizes: efficiency is in (0, 1] and
/// grows (weakly) with the search size.
#[test]
fn des_efficiency_monotone_in_search_size() {
    let net = paper_network(2e-3);
    for exp in 8..13 {
        let small = simulate_search(
            &net, Tool::OurApproach, HashAlgo::Md5, 10f64.powi(exp), SimParams::default());
        let big = simulate_search(
            &net, Tool::OurApproach, HashAlgo::Md5, 10f64.powi(exp + 1), SimParams::default());
        assert!(small.parallel_efficiency() > 0.0);
        assert!(small.parallel_efficiency() <= 1.0);
        assert!(big.parallel_efficiency() + 1e-9 >= small.parallel_efficiency());
    }
}

mod checkpoint_properties {
    use eks::core::prop::forall;
    use eks::cracker::Checkpoint;
    use eks::keyspace::Interval;

    /// Arbitrary take/complete/requeue sequences never lose or
    /// duplicate identifiers: remaining + completed == full, always.
    #[test]
    fn checkpoint_conserves_work() {
        forall("checkpoint conservation", 128, |rng| {
            let len = rng.range_u128(1, 100_000);
            let n_ops = rng.range(1, 39) as usize;
            let mut cp = Checkpoint::new(Interval::new(0, len));
            let mut in_flight: Vec<Interval> = Vec::new();
            let mut completed: u128 = 0;
            for _ in 0..n_ops {
                let op = rng.range(0, 2);
                let n = rng.range_u128(1, 5_000);
                match op {
                    // take
                    0 => {
                        if let Some(iv) = cp.take_work(n) {
                            in_flight.push(iv);
                        }
                    }
                    // complete the newest in-flight interval
                    1 => {
                        if let Some(iv) = in_flight.pop() {
                            cp.complete(iv);
                            completed += iv.len;
                        }
                    }
                    // requeue the newest in-flight interval
                    _ => {
                        if let Some(iv) = in_flight.pop() {
                            cp.requeue(iv);
                        }
                    }
                }
                let in_flight_len: u128 = in_flight.iter().map(|iv| iv.len).sum();
                assert_eq!(cp.remaining() + in_flight_len + completed, len, "conservation");
            }
            // Serialization round-trips whatever state we ended in.
            let back = Checkpoint::deserialize(&cp.serialize()).unwrap();
            assert_eq!(back, cp);
        });
    }
}
