//! Property: telemetry totals reconcile *exactly* with the dispatcher's
//! accounting. The per-worker `eks_keys_tested_total` counters flow
//! live — `Dispatcher::scan_as` credits each merged chunk into its
//! worker's labelled counter the moment it lands — so for any
//! interleaving, including work stealing, where which worker tests
//! which chunk is nondeterministic, the registry total, the sum of
//! per-worker stats, and the report's `tested` must all be the same
//! number at every instant the run is quiescent. The sliding-window
//! plane diffs that same registry, so its per-window deltas must
//! telescope back to the identical totals even when a flusher thread
//! races the workers. The manual clock keeps every trace timestamp
//! deterministic while real threads race.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use eks::cluster::{run_rounds_observed, ClusterNode, RoundConfig};
use eks::core::prop::{forall, Rng};
use eks::cracker::{crack_parallel_observed, ParallelConfig, TargetSet};
use eks::engine::SchedPolicy;
use eks::gpusim::device::Device;
use eks::hashes::HashAlgo;
use eks::keyspace::{Charset, KeySpace, Order};
use eks::telemetry::{names, parse_prometheus, ManualClock, Telemetry, WindowBook};

/// Sum of every `eks_keys_tested_total` sample (one per worker label),
/// read back through the exposition parser so the whole pipeline —
/// counter, render, parse — is under test.
fn keys_tested_total(telemetry: &Telemetry) -> u128 {
    let samples = parse_prometheus(&telemetry.render_prometheus()).expect("valid exposition");
    samples.iter().filter(|s| s.name == names::KEYS_TESTED).map(|s| s.value as u128).sum()
}

/// A target set that sometimes hits (a real key's digest) and sometimes
/// sweeps the whole space (an impossible digest).
fn random_targets(rng: &mut Rng) -> TargetSet {
    let words: [&[u8]; 5] = [b"cat", b"zz", b"qqq", b"abc", b"not-in-this-space"];
    let word = words[rng.index(words.len())];
    TargetSet::new(HashAlgo::Md5, &[HashAlgo::Md5.hash_long(word)])
}

#[test]
fn parallel_steal_metrics_reconcile_exactly() {
    let space = KeySpace::new(Charset::lowercase(), 1, 3, Order::FirstCharFastest).unwrap();
    forall("telemetry-reconcile-steal", 12, |rng| {
        let targets = random_targets(rng);
        let telemetry = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let threads = rng.range(1, 4) as usize;
        let config = ParallelConfig {
            chunk: rng.range(64, 2048),
            first_hit_only: rng.u64() % 2 == 0,
            sched: SchedPolicy::Steal,
            ..ParallelConfig::for_threads(threads)
        };
        let report =
            crack_parallel_observed(&space, &targets, space.interval(), config, &telemetry, |_| {});
        let per_worker: u128 = report.stats.iter().map(|w| w.tested).sum();
        assert_eq!(per_worker, report.tested, "stats sum to the report total");
        assert_eq!(
            keys_tested_total(&telemetry),
            report.tested,
            "registry total equals the dispatcher total"
        );
    });
}

/// The observability satellite: window deltas telescope. A flusher
/// thread races the steal-mode workers, snapshotting the registry at
/// arbitrary instants — mid-chunk, mid-steal, whenever the scheduler
/// happens to be between merges — and every flushed [`WindowBook`]
/// window holds the diff since the previous snapshot. No matter where
/// the cuts land, the per-window `eks_keys_tested_total` deltas summed
/// over all windows (plus one final flush for the tail) must equal the
/// registry total, the report total, and each worker's own stat. A
/// tiny ring capacity on purpose: dropped-from-the-ring windows are
/// collected from `flush`'s return value, proving the bounding never
/// corrupts the diffs.
#[test]
fn window_deltas_telescope_to_registry_totals_under_steal() {
    let space = KeySpace::new(Charset::lowercase(), 1, 3, Order::FirstCharFastest).unwrap();
    forall("telemetry-window-telescope", 8, |rng| {
        let targets = random_targets(rng);
        let clock = Arc::new(ManualClock::new());
        let telemetry = Telemetry::with_clock(clock.clone());
        let book = WindowBook::new(1_000_000, 4);
        let threads = rng.range(2, 4) as usize;
        let config = ParallelConfig {
            chunk: rng.range(64, 1024),
            first_hit_only: rng.u64() % 2 == 0,
            sched: SchedPolicy::Steal,
            ..ParallelConfig::for_threads(threads)
        };
        let done = AtomicBool::new(false);
        let (report, mut windows) = std::thread::scope(|s| {
            let flusher = s.spawn(|| {
                let mut flushed = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    clock.advance(1_000_000);
                    flushed.push(book.flush(&telemetry));
                    std::thread::yield_now();
                }
                flushed
            });
            let report = crack_parallel_observed(
                &space,
                &targets,
                space.interval(),
                config,
                &telemetry,
                |_| {},
            );
            done.store(true, Ordering::Relaxed);
            (report, flusher.join().expect("flusher thread"))
        });
        // One final flush catches whatever landed after the last cut.
        windows.push(book.flush(&telemetry));

        let windowed: u128 =
            windows.iter().map(|w| u128::from(w.counter_total(names::KEYS_TESTED))).sum();
        assert_eq!(windowed, report.tested, "window deltas telescope to the report total");
        assert_eq!(
            windowed,
            keys_tested_total(&telemetry),
            "window deltas telescope to the registry total"
        );
        for stat in &report.stats {
            let per_worker: u128 = windows
                .iter()
                .map(|w| u128::from(w.counter_delta(names::KEYS_TESTED, "worker", &stat.label)))
                .sum();
            assert_eq!(per_worker, stat.tested, "worker {} telescopes", stat.label);
        }
    });
}

#[test]
fn cluster_round_metrics_reconcile_exactly() {
    let space = KeySpace::new(Charset::lowercase(), 1, 3, Order::FirstCharFastest).unwrap();
    let net = ClusterNode::device_node("box", vec![Device::geforce_gtx_660()], 0.0)
        .with_cpu("host-cpu", 2);
    forall("telemetry-reconcile-rounds", 4, |rng| {
        let targets = random_targets(rng);
        let telemetry = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let r = run_rounds_observed(
            &net,
            &space,
            &targets,
            space.interval(),
            RoundConfig {
                round_keys: rng.range(3_000, 12_000) as u128,
                first_hit_only: rng.u64() % 2 == 0,
                lose_worker: None,
                sched: SchedPolicy::Steal,
                // Half the seeds run the closed loop: the telemetry
                // reconciliation must hold with re-scatters in play too.
                retune: rng.u64() % 2 == 0,
            },
            &telemetry,
        );
        let per_device: u128 = r.stats.iter().map(|w| w.tested).sum();
        assert_eq!(per_device, r.tested, "per-device stats sum to the round total");
        assert_eq!(
            keys_tested_total(&telemetry),
            r.tested,
            "registry total equals the keys charged across rounds"
        );
        // The rounds counter reconciles too.
        let samples = parse_prometheus(&telemetry.render_prometheus()).expect("valid exposition");
        let rounds: f64 =
            samples.iter().filter(|s| s.name == names::ROUNDS).map(|s| s.value).sum();
        assert_eq!(rounds as u32, r.rounds);
    });
}
