//! Golden tests pinning the JSON schemas of the checkpoint and job-store
//! documents, mirroring `tests/diagnostics_schema.rs`.
//!
//! Both documents are durable state: a checkpoint written by this build
//! must be readable by the next one, and the spool directory of a killed
//! job server must resume under a rebuilt binary. The `schema` stamp,
//! field order, and the decimal-string integer dialect (exact `u128`
//! round-trips — JSON numbers lose precision past 2^53) are therefore
//! contract. Any layout change must bump the matching
//! `*_SCHEMA_VERSION` and update the goldens here in the same commit.
//! Readers must *reject* unknown future versions, never guess.

use eks::engine::checkpoint::{
    Checkpoint, CheckpointError, SearchCheckpoint, CHECKPOINT_SCHEMA_VERSION,
};
use eks::engine::WorkerStats;
use eks::hashes::{from_hex, HashAlgo};
use eks::jobs::{JobError, JobHit, JobId, JobRecord, JobSpec, JobState, JOB_SCHEMA_VERSION};
use eks::keyspace::{Interval, Order};

/// The schema versions every writer stamps today. Bump deliberately.
#[test]
fn schema_versions_are_pinned() {
    assert_eq!(CHECKPOINT_SCHEMA_VERSION, 1, "schema bump: update the goldens in this file");
    assert_eq!(JOB_SCHEMA_VERSION, 1, "schema bump: update the goldens in this file");
}

fn sample_snapshot() -> SearchCheckpoint {
    let mut frontier = Checkpoint::new(Interval::new(0, 100));
    frontier.complete(Interval::new(0, 40));
    let mut w = WorkerStats::new("cpu#0");
    w.tested = 40;
    w.steals = 1;
    w.splits = 2;
    w.idle_ns = 3;
    w.busy_ns = 4;
    SearchCheckpoint {
        frontier,
        slots: vec![Interval::new(40, 30), Interval::new(70, 30)],
        workers: vec![w],
    }
}

/// Byte-exact golden for a mid-search checkpoint: the schema stamp comes
/// first, intervals spell `start`/`len` as decimal strings, worker
/// counters are decimal strings too.
#[test]
fn search_checkpoint_json_golden() {
    let expected = concat!(
        "{\"schema\":1,",
        "\"full\":{\"start\":\"0\",\"len\":\"100\"},",
        "\"pending\":[{\"start\":\"40\",\"len\":\"60\"}],",
        "\"slots\":[{\"start\":\"40\",\"len\":\"30\"},{\"start\":\"70\",\"len\":\"30\"}],",
        "\"workers\":[{\"label\":\"cpu#0\",\"tested\":\"40\",\"steals\":\"1\",",
        "\"splits\":\"2\",\"idle_ns\":\"3\",\"busy_ns\":\"4\"}]}"
    );
    assert_eq!(sample_snapshot().to_json(), expected);
    // And the golden parses back to exactly the same state.
    assert_eq!(SearchCheckpoint::from_json(expected).unwrap(), sample_snapshot());
}

/// A fresh checkpoint (nothing scattered, no workers) still carries the
/// stamp and the full/pending pair.
#[test]
fn fresh_checkpoint_json_golden() {
    let snap = SearchCheckpoint::fresh(Interval::new(7, 5));
    assert_eq!(
        snap.to_json(),
        concat!(
            "{\"schema\":1,\"full\":{\"start\":\"7\",\"len\":\"5\"},",
            "\"pending\":[{\"start\":\"7\",\"len\":\"5\"}],\"slots\":[],\"workers\":[]}"
        )
    );
}

/// Identifier counts beyond 2^53 survive exactly — the whole reason the
/// dialect uses decimal strings. A 62^8 keyspace (~2.18e14) and anything
/// larger would be silently corrupted by an `f64` round-trip.
#[test]
fn u128_counters_round_trip_exactly() {
    let big = (1u128 << 100) + 3;
    let mut snap = SearchCheckpoint::fresh(Interval::new(0, big));
    snap.frontier.complete(Interval::new(0, (1u128 << 99) + 1));
    let back = SearchCheckpoint::from_json(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.frontier.consumed(), (1u128 << 99) + 1);
}

/// Forward-compat: a checkpoint stamped by a future build is rejected
/// with the version named, not half-parsed.
#[test]
fn checkpoint_rejects_unknown_future_schema() {
    let bumped = sample_snapshot().to_json().replacen("\"schema\":1", "\"schema\":7", 1);
    assert_eq!(SearchCheckpoint::from_json(&bumped), Err(CheckpointError::Schema(7)));
}

fn golden_spec() -> JobSpec {
    JobSpec {
        name: "golden".into(),
        algo: HashAlgo::Md5,
        digest: from_hex("00112233445566778899aabbccddeeff").unwrap(),
        charset: b"abc".to_vec(),
        min_len: 1,
        max_len: 2,
        order: Order::FirstCharFastest,
        priority: 3,
        first_hit_only: false,
    }
}

/// Byte-exact golden for a fresh job record: spec fields precede the
/// progress fields, the keyspace interval is re-derived and cross-checked
/// on load (3 + 3*3 = 12 keys here).
#[test]
fn fresh_job_record_json_golden() {
    let rec = JobRecord::new(JobId(1), golden_spec()).unwrap();
    let expected = concat!(
        "{\"schema\":1,\"id\":1,\"name\":\"golden\",\"state\":\"pending\",",
        "\"algo\":\"md5\",\"digest\":\"00112233445566778899aabbccddeeff\",",
        "\"charset\":\"abc\",\"min_len\":1,\"max_len\":2,\"order\":\"first\",",
        "\"priority\":3,\"first_hit\":false,",
        "\"full\":{\"start\":\"0\",\"len\":\"12\"},",
        "\"pending\":[{\"start\":\"0\",\"len\":\"12\"}],",
        "\"tested\":\"0\",\"hits\":[]}"
    );
    assert_eq!(rec.to_json(), expected);
    assert_eq!(JobRecord::from_json(expected).unwrap(), rec);
}

/// Byte-exact golden for a mid-search record: a consumed lease splits
/// the pending list, the credit equals the frontier's consumed count,
/// and hits carry hex-encoded key bytes.
#[test]
fn mid_search_job_record_json_golden() {
    let mut rec = JobRecord::new(JobId(2), golden_spec()).unwrap();
    rec.state = JobState::Running;
    let lease = rec.take_lease(5).unwrap();
    rec.frontier.complete(lease);
    rec.tested = rec.frontier.consumed();
    rec.hits.push(JobHit { id: 2, key: b"ab".to_vec() });
    let expected = concat!(
        "{\"schema\":1,\"id\":2,\"name\":\"golden\",\"state\":\"running\",",
        "\"algo\":\"md5\",\"digest\":\"00112233445566778899aabbccddeeff\",",
        "\"charset\":\"abc\",\"min_len\":1,\"max_len\":2,\"order\":\"first\",",
        "\"priority\":3,\"first_hit\":false,",
        "\"full\":{\"start\":\"0\",\"len\":\"12\"},",
        "\"pending\":[{\"start\":\"5\",\"len\":\"7\"}],",
        "\"tested\":\"5\",\"hits\":[{\"id\":\"2\",\"key\":\"6162\"}]}"
    );
    assert_eq!(rec.to_json(), expected);
    assert_eq!(JobRecord::from_json(expected).unwrap(), rec);
}

/// Forward-compat: job records from a future build are rejected with the
/// version named.
#[test]
fn job_record_rejects_unknown_future_schema() {
    let rec = JobRecord::new(JobId(1), golden_spec()).unwrap();
    let bumped = rec.to_json().replacen("\"schema\":1", "\"schema\":9", 1);
    assert_eq!(JobRecord::from_json(&bumped), Err(JobError::Schema(9)));
}

/// Structural corruption is a load error, never a resumed search that
/// rescans or skips keys: overlapping pending intervals, intervals
/// escaping the keyspace, and spec/interval mismatches all reject.
#[test]
fn corrupt_progress_is_rejected_not_resumed() {
    let rec = JobRecord::new(JobId(1), golden_spec()).unwrap();
    let base = rec.to_json();
    let overlap = base.replacen(
        "\"pending\":[{\"start\":\"0\",\"len\":\"12\"}]",
        "\"pending\":[{\"start\":\"0\",\"len\":\"8\"},{\"start\":\"4\",\"len\":\"8\"}]",
        1,
    );
    assert!(matches!(JobRecord::from_json(&overlap), Err(JobError::Corrupt { .. })));
    let escape = base.replacen(
        "\"pending\":[{\"start\":\"0\",\"len\":\"12\"}]",
        "\"pending\":[{\"start\":\"6\",\"len\":\"12\"}]",
        1,
    );
    assert!(matches!(JobRecord::from_json(&escape), Err(JobError::Corrupt { .. })));
    // Spec edited after submission: the recorded interval no longer
    // matches the spec's keyspace, so ids would mis-map.
    let tampered = base.replacen("\"max_len\":2", "\"max_len\":3", 1);
    assert!(matches!(JobRecord::from_json(&tampered), Err(JobError::Corrupt { .. })));
}

/// The two schemas share one integer dialect (the checkpoint module's
/// helpers), so they can never drift: both spell `u128` values as
/// decimal strings and both accept `schema` as a plain number.
#[test]
fn shared_dialect_spot_check() {
    let rec = JobRecord::new(JobId(1), golden_spec()).unwrap();
    assert!(rec.to_json().contains("\"tested\":\"0\""), "u128 as decimal string");
    assert!(rec.to_json().contains("\"schema\":1,"), "schema as plain number");
    let snap = SearchCheckpoint::fresh(Interval::new(0, 12));
    assert!(snap.to_json().contains("\"schema\":1,"), "same stamp spelling");
}
