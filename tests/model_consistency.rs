//! Integration of the performance-model layers: kernel IR → codegen →
//! theoretical formulas → cycle simulation → tuning, checked against each
//! other and against the paper's published structure.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks::gpusim::arch::ComputeCapability;
use eks::gpusim::codegen::{lower, LoweringOptions};
use eks::gpusim::device::DeviceCatalog;
use eks::gpusim::sched::{simulate, SimConfig};
use eks::gpusim::throughput::theoretical_mkeys;
use eks::hashes::HashAlgo;
use eks::kernels::{Tool, ToolKernel};

/// The cycle simulator never exceeds the theoretical bound, and comes
/// close to it exactly where the paper says it should.
#[test]
fn simulation_respects_and_approaches_theory() {
    for dev in DeviceCatalog::paper_devices() {
        for algo in [HashAlgo::Md5, HashAlgo::Sha1] {
            let tk = ToolKernel::build(Tool::OurApproach, algo, dev.cc);
            let k = lower(&tk.ir, tk.options);
            let theo = theoretical_mkeys(&dev, &k.counts) * k.keys_per_iteration as f64;
            let sim = simulate(&k, SimConfig::for_cc(dev.cc)).device_mkeys(&dev);
            assert!(
                sim <= theo * 1.01,
                "{} {}: sim {sim} exceeds theory {theo}",
                dev.name,
                algo.name()
            );
            assert!(
                sim >= theo * 0.55,
                "{} {}: sim {sim} implausibly below theory {theo}",
                dev.name,
                algo.name()
            );
        }
    }
}

/// Paper Section VI: Kepler runs at ≈ 99.5 % of the theoretical bound,
/// Fermi at ≈ 2/3 (no ILP), cc 1.x in the high 80s.
#[test]
fn efficiency_structure_matches_paper() {
    let efficiency = |pattern: &str| {
        let dev = DeviceCatalog::find(pattern).unwrap();
        let tk = ToolKernel::build(Tool::OurApproach, HashAlgo::Md5, dev.cc);
        let k = lower(&tk.ir, tk.options);
        let theo = theoretical_mkeys(&dev, &k.counts);
        simulate(&k, SimConfig::for_cc(dev.cc)).device_mkeys(&dev) / theo
    };
    let kepler = efficiency("660");
    assert!(kepler > 0.92, "Kepler {kepler} (paper: 0.9946)");
    let fermi = efficiency("550");
    assert!((0.60..0.78).contains(&fermi), "Fermi {fermi} (paper ≈ 0.68)");
    let tesla = efficiency("8800");
    assert!((0.80..0.95).contains(&tesla), "cc 1.x {tesla} (paper ≈ 0.85)");
}

/// The dual-issue rate stays under 10 % for the hash kernels, matching
/// the CUDA-profiler observation in Section V-B.
#[test]
fn dual_issue_rate_under_ten_percent() {
    for cc in [ComputeCapability::Sm21, ComputeCapability::Sm30] {
        let tk = ToolKernel::build(Tool::OurApproach, HashAlgo::Md5, cc);
        let k = lower(&tk.ir, tk.options);
        let r = simulate(&k, SimConfig::for_cc(cc));
        assert!(
            r.dual_issue_rate() < 0.10,
            "{cc:?}: dual-issue {}",
            r.dual_issue_rate()
        );
    }
}

/// Tool ordering from Table VIII holds on every device for MD5:
/// ours ≥ BarsWF ≥ Cryptohaze (simulated).
#[test]
fn table8_tool_ordering_holds_everywhere() {
    for dev in DeviceCatalog::paper_devices() {
        let run = |tool: Tool| {
            let tk = ToolKernel::build(tool, HashAlgo::Md5, dev.cc);
            let k = lower(&tk.ir, tk.options);
            simulate(&k, SimConfig::for_cc(dev.cc)).device_mkeys(&dev)
        };
        let ours = run(Tool::OurApproach);
        let bars = run(Tool::BarsWf);
        let crypto = run(Tool::Cryptohaze);
        assert!(
            ours > bars && bars > crypto,
            "{}: ours {ours:.0} bars {bars:.0} crypto {crypto:.0}",
            dev.name
        );
    }
}

/// The kernel IR lowered for every architecture still *computes MD5*:
/// functional equivalence survives codegen differences.
#[test]
fn lowering_preserves_semantics_across_architectures() {
    use eks::kernels::md5::{build_md5, Md5Variant};
    use eks::kernels::words_for_key_len;
    let words = words_for_key_len(4);
    let built = build_md5(Md5Variant::Naive, &words);
    // The abstract IR evaluates to the real digest state; the per-arch
    // lowering only reorganizes instructions, it cannot change counts of
    // *semantic* operations: check the shift-port identity.
    let w0 = u32::from_le_bytes(*b"Zb3q");
    let regs = built.ir.evaluate(&[w0]);
    let got: Vec<u32> = built.outputs.iter().map(|r| regs[r.0 as usize]).collect();
    let want =
        eks::hashes::md5::md5_compress(eks::hashes::md5::IV, &eks::hashes::padding::pad_md5_block(b"Zb3q"));
    assert_eq!(got, want.to_vec());

    for cc in ComputeCapability::ALL {
        let k = lower(&built.ir, LoweringOptions::for_cc(cc));
        // 64 rotates in every lowering; representation differs: SHL+SHR
        // pairs on 1.x, SHL+IMAD on 2.x, PRMT for the rotate-by-16s on
        // 3.0, one SHF each on 3.5.
        let rotates = match cc {
            ComputeCapability::Sm1x => k.counts.shift() / 2,
            ComputeCapability::Sm35 => k.counts.funnel(),
            ComputeCapability::Sm30 => k.counts.imad() + k.counts.prmt(),
            _ => k.counts.imad(),
        };
        assert_eq!(rotates, 64, "{cc:?} rotate lowering");
    }
}

/// Interleaving doubles keys per iteration without changing per-key
/// instruction counts (ILP ablation bookkeeping).
#[test]
fn interleave_bookkeeping() {
    use eks::kernels::interleave::interleave_self;
    use eks::kernels::md5::{build_md5, Md5Variant};
    use eks::kernels::words_for_key_len;
    let built = build_md5(Md5Variant::Optimized, &words_for_key_len(4));
    let single = lower(&built.ir, LoweringOptions::plain(ComputeCapability::Sm21));
    let doubled = lower(&interleave_self(&built.ir), LoweringOptions::plain(ComputeCapability::Sm21));
    assert_eq!(doubled.keys_per_iteration, 2);
    assert_eq!(doubled.counts.total(), 2 * single.counts.total());
}
