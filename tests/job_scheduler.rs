//! Seeded property tests of the multi-tenant job service: exactly-once
//! coverage across checkpoint/restore at arbitrary interleaving points,
//! fair-share division between equal-priority tenants, and exact
//! reconciliation of the per-job telemetry dimension against the shared
//! per-worker counters.
//!
//! Uses the offline property harness `eks::core::prop` (the workspace
//! builds without registry access, so `proptest` is unavailable).

// Indexing below is over coverage arrays sized by construction; the
// workspace `clippy::indexing_slicing` escalation guards new code, not
// these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::path::PathBuf;

use eks::core::prop::forall;
use eks::cracker::{cpu_backend, Lanes};
use eks::engine::checkpoint::SearchCheckpoint;
use eks::hashes::HashAlgo;
use eks::jobs::{Fleet, FleetMember, JobService, JobSpec, JobState, JobStore, ServiceConfig};
use eks::keyspace::{Interval, Order};
use eks::telemetry::{names, parse_prometheus, Telemetry};

/// Checkpoint/restore at arbitrary interleaving points never rescans
/// and never skips a key.
///
/// The model mirrors the service's protocol exactly: leases are taken
/// from the frontier, a completed lease advances coverage, a lost lease
/// (worker death) is requeued, and at random *lease boundaries* the
/// whole state round-trips through the schema-stamped JSON form — a
/// simulated process kill + restart. Every key must be credited exactly
/// once when the frontier drains, whatever the interleaving.
#[test]
fn restore_at_any_interleaving_point_is_exactly_once() {
    forall("checkpoint interleaving", 64, |rng| {
        let len = rng.range(1, 400) as u128;
        let start = rng.range(0, 1000) as u128;
        let full = Interval::new(start, len);
        let mut snap = SearchCheckpoint::fresh(full);
        // One scan-credit cell per key in the space.
        let mut credited = vec![0u32; len as usize];
        let mut credit = |iv: Interval| {
            for id in iv.start..iv.end() {
                credited[(id - start) as usize] += 1;
            }
        };
        let mut guard = 0;
        while !snap.frontier.is_complete() {
            guard += 1;
            assert!(guard < 10_000, "interleaving failed to converge");
            let lease_cap = rng.range(1, 64) as u128;
            let Some(lease) = snap.frontier.take_work(lease_cap) else { break };
            match rng.below(10) {
                // Most leases scan to completion and are credited in the
                // same step their coverage lands (the durability barrier).
                0..=6 => credit(lease),
                // A worker went silent: the lease is requeued untouched.
                7 | 8 => snap.frontier.requeue(lease),
                // SIGKILL mid-lease, *before* the checkpoint write: the
                // durable frontier never saw the take, so on restart the
                // lease is pending again. Model the restart by requeueing
                // (restoring the pre-take durable state), then crashing
                // through the JSON form.
                _ => {
                    snap.frontier.requeue(lease);
                    snap = SearchCheckpoint::from_json(&snap.to_json())
                        .expect("own serialization must re-load");
                }
            }
            // Occasionally kill + restart at a clean lease boundary.
            if rng.below(4) == 0 {
                snap = SearchCheckpoint::from_json(&snap.to_json())
                    .expect("own serialization must re-load");
            }
        }
        assert!(snap.frontier.is_complete());
        assert_eq!(snap.frontier.consumed(), len);
        for (i, count) in credited.iter().enumerate() {
            assert_eq!(*count, 1, "key {i} credited {count} times (must be exactly once)");
        }
    });
}

fn lowercase_spec(name: &str, word: &[u8], priority: u32) -> JobSpec {
    JobSpec {
        name: name.into(),
        algo: HashAlgo::Md5,
        digest: HashAlgo::Md5.hash(word),
        charset: (b'a'..=b'z').collect(),
        min_len: 1,
        max_len: 3,
        order: Order::FirstCharFastest,
        priority,
        first_hit_only: false,
    }
}

/// |lowercase|^1 + ^2 + ^3.
const SPACE: u128 = 26 + 26 * 26 + 26 * 26 * 26;

fn tmp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eks-jobsched-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn two_worker_fleet() -> Fleet {
    Fleet::new(
        (0..2)
            .map(|i| FleetMember {
                label: format!("host/cpu{i} [lanes8]"),
                weight: 1.0,
                backend: cpu_backend(Lanes::L8),
            })
            .collect(),
    )
}

/// Two equal-priority jobs each receive 50% ± 10% of the scanned keys
/// while both are runnable — the paper's scatter proportions applied at
/// the inter-job level with priorities as weights.
#[test]
fn equal_priority_jobs_split_the_scan_evenly() {
    let dir = tmp_spool("fairshare");
    let store = JobStore::open(&dir).unwrap();
    // Planted words are deliberately absent so neither job ends early.
    let a = store.submit(lowercase_spec("a", b"zzzz", 1)).unwrap();
    let b = store.submit(lowercase_spec("b", b"zzzz", 1)).unwrap();
    let service = JobService::new(
        store,
        ServiceConfig { round_keys: 4096, ..ServiceConfig::default() },
    );
    let fleet = two_worker_fleet();
    // Measure the shares over several rounds with both jobs mid-flight.
    let mut per_job = [0u128, 0u128];
    let mut total = 0u128;
    for _ in 0..3 {
        let report = service.round(&fleet).unwrap();
        assert!(!report.is_idle());
        for (id, lease) in &report.leases {
            let slot = if *id == a.id { 0 } else { 1 };
            per_job[slot] += lease.len;
            total += lease.len;
        }
    }
    assert!(total > 0);
    for (slot, id) in [(0, a.id), (1, b.id)] {
        let share = per_job[slot] as f64 / total as f64;
        assert!(
            (0.4..=0.6).contains(&share),
            "{id} received {share:.3} of the scan; equal priorities owe 50% ± 10%"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A priority-3 tenant outweighs a priority-1 tenant 3:1, the same
/// `N_j = N_max · X_j / X_max` proportion the paper's scatter uses for
/// device rates.
#[test]
fn priorities_weight_the_inter_job_scatter() {
    let dir = tmp_spool("priority");
    let store = JobStore::open(&dir).unwrap();
    let heavy = store.submit(lowercase_spec("heavy", b"zzzz", 3)).unwrap();
    let light = store.submit(lowercase_spec("light", b"zzzz", 1)).unwrap();
    let service = JobService::new(
        store,
        ServiceConfig { round_keys: 4096, ..ServiceConfig::default() },
    );
    let fleet = two_worker_fleet();
    let report = service.round(&fleet).unwrap();
    let sum = |id| {
        report
            .leases
            .iter()
            .filter(|(j, _)| *j == id)
            .map(|(_, iv)| iv.len)
            .sum::<u128>()
    };
    let (h, l) = (sum(heavy.id), sum(light.id));
    assert_eq!(h, 3 * l, "priority 3 vs 1 leases 3:1 ({h} vs {l})");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The per-job telemetry dimension reconciles *exactly* against the
/// shared per-worker counters: every key credited to a job label was
/// scanned by some worker label, and vice versa — two disjoint
/// partitions of one scan.
#[test]
fn per_job_totals_reconcile_exactly_with_worker_counters() {
    let dir = tmp_spool("reconcile");
    let store = JobStore::open(&dir).unwrap();
    let a = store.submit(lowercase_spec("a", b"cat", 1)).unwrap();
    let b = store.submit(lowercase_spec("b", b"dog", 2)).unwrap();
    let telemetry = Telemetry::enabled();
    let service = JobService::new(
        store,
        ServiceConfig { round_keys: 8192, ..ServiceConfig::default() },
    )
    .with_telemetry(telemetry.clone());
    let fleet = two_worker_fleet();
    service.run_until_idle(&fleet).unwrap();

    for id in [a.id, b.id] {
        let rec = service.store().load(id).unwrap();
        assert_eq!(rec.state, JobState::Completed);
        assert_eq!(rec.tested, SPACE, "exhaustive job covers its space exactly once");
    }

    let samples = parse_prometheus(&telemetry.render_prometheus()).unwrap();
    let total_for = |metric: &str| {
        samples
            .iter()
            .filter(|s| s.name == metric)
            .map(|s| s.value as u128)
            .sum::<u128>()
    };
    let per_job = total_for(names::JOB_KEYS_TESTED);
    let per_worker = total_for(names::KEYS_TESTED);
    assert_eq!(per_job, 2 * SPACE, "both keyspaces credited through the job dimension");
    assert_eq!(
        per_job, per_worker,
        "job-label and worker-label partitions of the same scan must reconcile exactly"
    );
    // Each job's own counter carries exactly its keyspace.
    for id in [a.id, b.id] {
        let label = id.to_string();
        let job_total = samples
            .iter()
            .filter(|s| {
                s.name == names::JOB_KEYS_TESTED
                    && s.labels.iter().any(|(k, v)| k == "job" && *v == label)
            })
            .map(|s| s.value as u128)
            .sum::<u128>();
        assert_eq!(job_total, SPACE, "{label}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill/restart through the spool: a service driven halfway and dropped
/// (the in-memory half of a SIGKILL), then re-opened over the same
/// directory, finishes both jobs with exactly-once coverage — no key
/// rescanned into the credit, none skipped.
#[test]
fn reopened_spool_resumes_without_rescans_or_skips() {
    let dir = tmp_spool("resume");
    let store = JobStore::open(&dir).unwrap();
    let a = store.submit(lowercase_spec("a", b"cat", 1)).unwrap();
    let b = store.submit(lowercase_spec("b", b"owl", 1)).unwrap();
    let fleet = two_worker_fleet();
    {
        let service = JobService::new(
            store,
            ServiceConfig { round_keys: 4096, ..ServiceConfig::default() },
        );
        // A few rounds, then the process "dies" (the service is dropped;
        // only the spool survives).
        for _ in 0..2 {
            service.round(&fleet).unwrap();
        }
        let mid = service.store().load(a.id).unwrap();
        assert!(mid.tested > 0 && mid.tested < SPACE, "killed mid-search");
    }
    let revived = JobService::new(
        JobStore::open(&dir).unwrap(),
        ServiceConfig { round_keys: 4096, ..ServiceConfig::default() },
    );
    revived.run_until_idle(&fleet).unwrap();
    for (id, word) in [(a.id, &b"cat"[..]), (b.id, b"owl")] {
        let rec = revived.store().load(id).unwrap();
        assert_eq!(rec.state, JobState::Completed);
        assert_eq!(rec.tested, SPACE, "{id}: exactly-once across the restart");
        assert!(rec.hits.iter().any(|h| h.key == word), "{id} found its key");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
