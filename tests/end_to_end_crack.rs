//! End-to-end integration: the full pipeline from digest to recovered
//! password, exercised through every engine the workspace provides —
//! the sequential driver, the parallel CPU cracker, the kernel host
//! semantics, and the hierarchical cluster runtime — which must all
//! agree.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks::cluster::{paper_network, run_cluster_search};
use eks::core::driver::{search_interval, SearchOutcome};
use eks::cracker::{crack_parallel, ParallelConfig, TargetSet};
use eks::hashes::HashAlgo;
use eks::kernels::host::HostSearch;
use eks::keyspace::{Charset, Interval, Key, KeySpace, Order};

fn space() -> KeySpace {
    KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
}

/// Every engine must crack the same secret and report the same identifier.
#[test]
fn all_engines_agree_on_the_same_hit() {
    let s = space();
    let secret = Key::from_bytes(b"kgb");
    let id = s.id_of(&secret).unwrap();
    let digest = HashAlgo::Md5.hash(secret.as_bytes());

    // 1. Generic sequential driver from eks-core.
    let test = |_id: u128, k: &Key| (HashAlgo::Md5.hash(k.as_bytes()) == digest).then_some(());
    let out = search_interval(&s, &test, 0, s.size());
    assert_eq!(out.found_id(), Some(id), "core driver");
    assert!(matches!(out, SearchOutcome::Found { .. }));

    // 2. Parallel CPU cracker.
    let targets = TargetSet::new(HashAlgo::Md5, std::slice::from_ref(&digest));
    let r = crack_parallel(&s, &targets, s.interval(), ParallelConfig::default());
    assert_eq!(r.hits[0].0, id, "parallel cracker");
    assert_eq!(r.hits[0].1, secret);

    // 3. Kernel host semantics (the reversed-MD5 fast path).
    let hs = HostSearch::new(HashAlgo::Md5, &digest);
    let hit = hs.search(&s, s.interval()).expect("host search");
    assert_eq!(hit, (id, secret.clone()), "kernel host path");

    // 4. Hierarchical cluster runtime over the paper's network.
    let net = paper_network(1e-3);
    let cr = run_cluster_search(&net, &s, &targets, s.interval(), true);
    assert_eq!(cr.hits[0].0, id, "cluster runtime");
    assert_eq!(cr.hits[0].1, secret);
}

/// Cracking SHA-1 targets works through the same pipeline.
#[test]
fn sha1_end_to_end() {
    let s = space();
    let secret = Key::from_bytes(b"sha");
    let digest = HashAlgo::Sha1.hash(secret.as_bytes());
    let targets = TargetSet::new(HashAlgo::Sha1, std::slice::from_ref(&digest));
    let r = crack_parallel(&s, &targets, s.interval(), ParallelConfig::default());
    assert_eq!(r.hits[0].1, secret);
    let hs = HostSearch::new(HashAlgo::Sha1, &digest);
    assert_eq!(hs.search(&s, s.interval()).unwrap().1, secret);
}

/// A multi-target audit through the cluster runtime: every planted key is
/// recovered, none twice, and the whole space is covered exactly once.
#[test]
fn cluster_audit_covers_space_exactly_once() {
    let s = space();
    let words: Vec<&[u8]> = vec![b"a", b"me", b"cat", b"zzzz"];
    let digests: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash(w)).collect();
    let targets = TargetSet::new(HashAlgo::Md5, &digests);
    let net = paper_network(1e-3);
    let r = run_cluster_search(&net, &s, &targets, s.interval(), false);
    assert_eq!(r.tested, s.size(), "each key tested exactly once");
    let mut found: Vec<&[u8]> = r.hits.iter().map(|(_, k, _)| k.as_bytes()).collect();
    found.sort();
    let mut expect = words.clone();
    expect.sort();
    assert_eq!(found, expect);
}

/// The search respects interval boundaries: a secret outside the
/// dispatched interval is not found, one inside is.
#[test]
fn interval_boundaries_respected_across_engines() {
    let s = space();
    let secret = Key::from_bytes(b"pz");
    let id = s.id_of(&secret).unwrap();
    let digest = HashAlgo::Md5.hash(secret.as_bytes());
    let targets = TargetSet::new(HashAlgo::Md5, &[digest]);

    let before = Interval::new(0, id);
    let containing = Interval::new(id, 1);

    let r1 = crack_parallel(&s, &targets, before, ParallelConfig::default());
    assert!(r1.hits.is_empty());
    let r2 = crack_parallel(&s, &targets, containing, ParallelConfig::default());
    assert_eq!(r2.hits.len(), 1);

    let net = paper_network(1e-3);
    let c1 = run_cluster_search(&net, &s, &targets, before, true);
    assert!(c1.hits.is_empty());
    let c2 = run_cluster_search(&net, &s, &targets, containing, true);
    assert_eq!(c2.hits.len(), 1);
}

/// Salting does not change the search-space mechanics (Section I): the
/// salted digest is different, but the same enumeration cracks it.
#[test]
fn salted_target_cracks_with_same_enumeration() {
    use eks::cracker::HashTarget;
    let s = space();
    let salt = b"NaCl-";
    let secret = b"dog";
    let mut msg = salt.to_vec();
    msg.extend_from_slice(secret);
    let salted_digest = HashAlgo::Md5.hash_long(&msg);
    let plain_digest = HashAlgo::Md5.hash(secret);
    assert_ne!(salted_digest, plain_digest, "salting changes the digest");

    let target = HashTarget::salted(HashAlgo::Md5, &salted_digest, salt, b"");
    let mut found = None;
    s.iter(s.interval()).for_each_key(|_, k| {
        if target.matches(k) {
            found = Some(k.clone());
            false
        } else {
            true
        }
    });
    assert_eq!(found.unwrap().as_bytes(), secret);
}
