//! Integration tests for the extension layers: NTLM end-to-end, mask and
//! hybrid attacks through the generic engine, checkpoint-driven resumes,
//! dynamic membership, topology parsing, and occupancy of the real
//! kernels.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks::cluster::{
    parse_topology, run_cluster_search, run_dynamic, DynamicConfig, MembershipEvent,
    ScheduledEvent,
};
use eks::cracker::{crack_interval, crack_space_parallel, Checkpoint, ParallelConfig, TargetSet};
use eks::hashes::HashAlgo;
use eks::keyspace::{Charset, HybridSpace, Interval, KeySpace, MaskSpace, Order};
use std::sync::atomic::AtomicBool;

/// NTLM cracks through the whole stack: engine, cluster, and the MD4
/// kernel model agrees with the real hash.
#[test]
fn ntlm_end_to_end() {
    let s = KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap();
    let secret = b"ntlm";
    let targets = TargetSet::new(HashAlgo::Ntlm, &[HashAlgo::Ntlm.hash(secret)]);

    // CPU engine.
    let r = eks::cracker::crack_parallel(&s, &targets, s.interval(), ParallelConfig::default());
    assert_eq!(r.hits[0].1.as_bytes(), secret);

    // Cluster runtime (hybrid CPU+GPU node).
    let net = parse_topology("box(660, cpu:2)", 1e-3).unwrap();
    let cr = run_cluster_search(&net, &s, &targets, s.interval(), true);
    assert_eq!(cr.hits[0].1.as_bytes(), secret);

    // The MD4 kernel IR computes the same digest the cracker matched.
    use eks::kernels::md4::{build_md4, ntlm_words_for_key_len, Md4Variant};
    let built = build_md4(Md4Variant::Naive, &ntlm_words_for_key_len(secret.len()));
    let mut utf16 = Vec::new();
    for &b in secret {
        utf16.extend_from_slice(&[b, 0]);
    }
    let block = eks::hashes::padding::pad_md5_block(&utf16);
    let params: Vec<u32> = block[..2].to_vec();
    let regs = built.ir.evaluate(&params);
    let got: Vec<u32> = built.outputs.iter().map(|r| regs[r.0 as usize]).collect();
    let want = eks::hashes::md4::md4_compress(eks::hashes::md4::IV, &block);
    assert_eq!(got, want.to_vec());
}

/// A checkpointed sweep finds everything a continuous sweep finds, even
/// when interrupted and resumed from the serialized state.
#[test]
fn checkpointed_sweep_equals_continuous_sweep() {
    let s = KeySpace::new(Charset::lowercase(), 1, 3, Order::FirstCharFastest).unwrap();
    let words: Vec<&[u8]> = vec![b"cab", b"me", b"zzz"];
    let digests: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash(w)).collect();
    let targets = TargetSet::new(HashAlgo::Md5, &digests);
    let stop = AtomicBool::new(false);

    // Continuous reference.
    let reference = crack_interval(&s, &targets, s.interval(), &stop, false);

    // Interrupted run: process two chunks, "crash", serialize, resume.
    let mut cp = Checkpoint::new(s.interval());
    let mut hits = Vec::new();
    for _ in 0..2 {
        let work = cp.take_work(5_000).expect("work available");
        let out = crack_interval(&s, &targets, work, &stop, false);
        hits.extend(out.hits);
        cp.complete(work);
    }
    let restored = Checkpoint::deserialize(&cp.serialize()).unwrap();
    let mut cp = restored;
    while let Some(work) = cp.take_work(5_000) {
        let out = crack_interval(&s, &targets, work, &stop, false);
        hits.extend(out.hits);
        cp.complete(work);
    }
    assert!(cp.is_complete());
    hits.sort_by_key(|(id, _, _)| *id);
    assert_eq!(hits, reference.hits);
}

/// Mask and hybrid spaces behave identically under the generic engine and
/// a direct enumeration.
#[test]
fn generic_engine_matches_enumeration_on_mask() {
    let mask = MaskSpace::parse("?l?d?l").unwrap();
    let planted = mask.key_at(1234);
    let targets = TargetSet::new(HashAlgo::Md5, &[HashAlgo::Md5.hash(planted.as_bytes())]);
    let r = crack_space_parallel(
        &mask,
        &targets,
        ParallelConfig { threads: 3, chunk: 100, first_hit_only: false, ..ParallelConfig::default() },
    );
    assert_eq!(r.hits.len(), 1);
    assert_eq!(r.hits[0].0, 1234);
    assert_eq!(r.tested, mask.size());
}

/// Hybrid spaces stay within MAX_KEY_LEN and crack through the engine.
#[test]
fn hybrid_space_end_to_end() {
    let words: Vec<&[u8]> = vec![b"spring", b"autumn"];
    let space = HybridSpace::with_digit_suffixes(&words, 3).unwrap();
    let planted = b"autumn042";
    assert!(space.id_of(&eks::keyspace::Key::from_bytes(planted)).is_some());
    let targets = TargetSet::new(HashAlgo::Sha1, &[HashAlgo::Sha1.hash(planted)]);
    let r = crack_space_parallel(
        &space,
        &targets,
        ParallelConfig { threads: 2, chunk: 64, first_hit_only: true, ..ParallelConfig::default() },
    );
    assert_eq!(r.hits[0].1.as_bytes(), planted);
}

/// Dynamic membership with a failure mid-search still covers the space,
/// and the parsed topology drives the same DES as the hand-built one.
#[test]
fn dynamic_and_topology_consistency() {
    let report = run_dynamic(
        &[("fast", 1000.0), ("slow", 100.0)],
        Interval::new(0, 20_000_000),
        DynamicConfig { round_keys: 1_000_000, round_overhead_s: 1e-3 },
        &[ScheduledEvent {
            before_round: 10,
            event: MembershipEvent::Leave { name: "slow".into() },
        }],
    );
    assert_eq!(report.covered, 20_000_000);
    assert_eq!(report.rebalances, 1);

    // Topology text == hand-built tree for the paper network.
    use eks::cluster::{paper_network, simulate_search, SimParams};
    let text = parse_topology("A(540M) -> B(660, 550Ti); C(8600M) -> D(8800); A -> C", 2e-3)
        .unwrap();
    let hand = paper_network(2e-3);
    let p = SimParams::default();
    let r1 = simulate_search(&text, eks::kernels::Tool::OurApproach, HashAlgo::Md5, 1e11, p);
    let r2 = simulate_search(&hand, eks::kernels::Tool::OurApproach, HashAlgo::Md5, 1e11, p);
    assert!((r1.achieved_mkeys - r2.achieved_mkeys).abs() < 1e-6);
}

/// The real cracking kernels are occupancy-unconstrained on every
/// architecture (the justification for simulating at max warps).
#[test]
fn real_kernels_run_at_full_occupancy() {
    use eks::gpusim::arch::ComputeCapability;
    use eks::gpusim::codegen::lower;
    use eks::gpusim::occupancy::{latency_hiding_warps, live_registers, resident_warps};
    use eks::kernels::{Tool, ToolKernel};
    for algo in [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm] {
        for cc in ComputeCapability::ALL {
            let tk = ToolKernel::build(Tool::OurApproach, algo, cc);
            let k = lower(&tk.ir, tk.options);
            let regs = live_registers(&k);
            // MD4/MD5 hold the 4-word state plus a few temporaries;
            // SHA-1's rolling 16-word schedule is the heaviest (~26).
            assert!(regs <= 32, "{algo:?}/{cc:?}: {regs} live registers");
            // What actually matters: enough resident warps to hide the
            // pipeline latency (Volkov's bound), on every architecture.
            let warps = resident_warps(&k);
            assert!(
                warps >= latency_hiding_warps(cc),
                "{algo:?}/{cc:?}: {warps} warps < latency-hiding bound {}",
                latency_hiding_warps(cc)
            );
        }
    }
}
