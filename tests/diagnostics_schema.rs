//! Golden test pinning the JSON schema shared by `eks analyze --json`
//! and `eks verify --json`.
//!
//! Downstream tooling dispatches on the `schema` field stamped into
//! every emitted object, so its presence, position and value — and the
//! exact field layout around it — are contract, not implementation
//! detail. Any layout change must bump
//! [`eks::analyzer::SCHEMA_VERSION`] and update the goldens here in the
//! same commit. Adding new lint *names* is explicitly not a schema
//! change and must not disturb these tests.

use eks::analyzer::diagnostic::{json_str, Diagnostic, Lint, Report, Span, SCHEMA_VERSION};
use eks::analyzer::analyze_grid;
use eks::gpusim::gridir::{mutant_unguarded_store, search_wrapper};

/// The schema version every emitter stamps today. Bump deliberately.
#[test]
fn schema_version_is_pinned() {
    assert_eq!(SCHEMA_VERSION, 1, "schema bump: update the goldens in this file");
}

/// Byte-exact golden for an analyzer report: field order, nesting and
/// escaping are all pinned.
#[test]
fn analyzer_report_json_golden() {
    let mut r = Report::new("md5/optimized", "3.0");
    r.push(Diagnostic::warn(Lint::PrmtMissed, Span { start: 2, len: 1 }, "use PRMT"));
    r.push(Diagnostic::deny(Lint::BudgetDrift, Span::kernel(), "off \"budget\""));
    let expected = concat!(
        "{\"schema\":1,\"kernel\":\"md5/optimized\",\"cc\":\"3.0\",",
        "\"warnings\":1,\"errors\":1,\"diagnostics\":[",
        "{\"lint\":\"prmt-missed\",\"severity\":\"warning\",",
        "\"span\":{\"start\":2,\"len\":1},\"message\":\"use PRMT\"},",
        "{\"lint\":\"budget-drift\",\"severity\":\"error\",",
        "\"span\":{\"start\":0,\"len\":0},\"message\":\"off \\\"budget\\\"\"}",
        "]}"
    );
    assert_eq!(r.to_json(), expected);
}

/// An empty report still carries the schema stamp and the counters.
#[test]
fn empty_report_json_golden() {
    let r = Report::new("k", "-");
    assert_eq!(
        r.to_json(),
        "{\"schema\":1,\"kernel\":\"k\",\"cc\":\"-\",\"warnings\":0,\"errors\":0,\"diagnostics\":[]}"
    );
}

/// The grid-IR soundness reports (the `eks verify` kernel half) emit
/// the same layout: schema first, `cc` fixed to `"grid"`, and the
/// diagnostics array carrying the three grid lints by their pinned
/// kebab-case names.
#[test]
fn grid_reports_share_the_schema() {
    let clean = analyze_grid(&search_wrapper("md5/optimized")).to_json();
    assert!(clean.starts_with("{\"schema\":1,\"kernel\":\"md5/optimized\",\"cc\":\"grid\","), "{clean}");
    assert!(clean.ends_with("\"diagnostics\":[]}"), "{clean}");

    let dirty = analyze_grid(&mutant_unguarded_store("m")).to_json();
    assert!(dirty.contains("\"lint\":\"out-of-bounds\""), "{dirty}");
    assert!(dirty.contains("\"severity\":\"error\""), "{dirty}");
}

/// The grid lint identifiers are part of the published JSON vocabulary.
#[test]
fn grid_lint_names_are_pinned() {
    assert_eq!(Lint::OutOfBounds.name(), "out-of-bounds");
    assert_eq!(Lint::UninitRead.name(), "uninit-read");
    assert_eq!(Lint::BarrierDivergence.name(), "barrier-divergence");
}

/// `json_str` is the single escaping routine every hand-rolled emitter
/// in the workspace shares; its behavior is contract too.
#[test]
fn json_string_escaping_golden() {
    assert_eq!(json_str("plain"), "\"plain\"");
    assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    assert_eq!(json_str("line\nfeed\ttab\rret"), "\"line\\nfeed\\ttab\\rret\"");
    assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    assert_eq!(json_str("Δ unicode passes through"), "\"Δ unicode passes through\"");
}
