//! Cross-backend equivalence: every [`eks::engine::Backend`] — scalar,
//! 8- and 16-lane autovectorized, explicit-SIMD (when the host ISA
//! allows), auto-tuned, and the simulated-GPU kernel backend — must
//! produce identical hit sets when driven through the same
//! [`eks::engine::Dispatcher`]. The paper's point is that one dispatch
//! pattern covers heterogeneous devices; these properties pin the part
//! correctness depends on: the *result* of a scan is a function of the
//! interval, not of which device scanned it.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::sync::atomic::Ordering;

use eks::cluster::SimKernelBackend;
use eks::core::prop::{forall, Rng};
use eks::cracker::batch::Lanes;
use eks::cracker::{cpu_backend, AutoBackend, SimdBackend, TargetSet};
use eks::engine::{Backend, Dispatcher, ScanMode};
use eks::gpusim::device::Device;
use eks::hashes::HashAlgo;
use eks::keyspace::{Charset, Interval, Key, KeySpace};

/// Every backend kind under test, freshly built. The explicit-SIMD
/// backend joins the list only on hosts whose CPU exposes a supported
/// ISA (Miri and exotic targets skip it); the auto backend always runs
/// and exercises whichever implementation its tuner picks here.
fn all_backends() -> Vec<Box<dyn Backend>> {
    let mut backends: Vec<Box<dyn Backend>> = vec![
        cpu_backend(Lanes::Scalar),
        cpu_backend(Lanes::L8),
        cpu_backend(Lanes::L16),
        Box::new(SimKernelBackend::new(Device::geforce_gtx_660())),
        Box::new(AutoBackend::new(eks::telemetry::Telemetry::disabled())),
    ];
    if let Some(simd) = SimdBackend::best() {
        backends.push(Box::new(simd));
    }
    backends
}

fn random_space(rng: &mut Rng) -> KeySpace {
    let charset = match rng.index(3) {
        0 => Charset::lowercase(),
        1 => Charset::digits(),
        _ => Charset::from_bytes(b"abcd").unwrap(),
    };
    let min = rng.range(1, 2) as u32;
    let max = rng.range(min as u64, 4) as u32;
    KeySpace::new(charset, min, max, eks::keyspace::Order::FirstCharFastest).unwrap()
}

/// Plant `n` target keys drawn from `space` and return their digests.
fn plant(rng: &mut Rng, space: &KeySpace, algo: HashAlgo, n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|_| {
            let id = rng.range_u128(0, space.size() - 1);
            algo.hash(space.key_at(id).as_bytes())
        })
        .collect()
}

fn scan_with(
    space: &KeySpace,
    targets: &TargetSet,
    backend: &dyn Backend,
    interval: Interval,
    mode: ScanMode,
    workers: usize,
) -> (Vec<(u128, Key, usize)>, u128) {
    let d = Dispatcher::new(space, targets, mode);
    d.run_queue(backend, interval, workers, 1 << 12);
    let r = d.finish();
    (r.hits, r.tested)
}

#[test]
fn exhaustive_hit_sets_are_identical_across_backends() {
    forall("exhaustive backend equivalence", 12, |rng| {
        let algo = [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm][rng.index(3)];
        let space = random_space(rng);
        let n = 1 + rng.index(3);
        let digests = plant(rng, &space, algo, n);
        let targets = TargetSet::new(algo, &digests);
        // A random sub-interval, sometimes the whole space.
        let start = rng.range_u128(0, space.size() / 2);
        let len = rng.range_u128(1, space.size() - start);
        let interval = Interval::new(start, len);

        let backends = all_backends();
        let (reference, ref_tested) = scan_with(
            &space, &targets, backends[0].as_ref(), interval, ScanMode::Exhaustive, 1,
        );
        assert_eq!(ref_tested, interval.len, "exhaustive tests every identifier");
        for backend in &backends[1..] {
            let workers = 1 + rng.index(3);
            let (hits, tested) = scan_with(
                &space, &targets, backend.as_ref(), interval, ScanMode::Exhaustive, workers,
            );
            assert_eq!(hits, reference, "{} diverges from scalar", backend.name());
            assert_eq!(tested, interval.len, "{}", backend.name());
        }
    });
}

#[test]
fn first_hit_winner_is_the_lowest_identifier_on_every_backend() {
    forall("first-hit determinism", 10, |rng| {
        let algo = [HashAlgo::Md5, HashAlgo::Ntlm][rng.index(2)];
        let space = random_space(rng);
        let n = 2 + rng.index(3);
        let digests = plant(rng, &space, algo, n);
        let targets = TargetSet::new(algo, &digests);
        let interval = space.interval();

        let backends = all_backends();
        let (reference, _) = scan_with(
            &space, &targets, backends[0].as_ref(), interval, ScanMode::FirstHit, 1,
        );
        assert_eq!(reference.len(), 1, "first-hit returns exactly one hit");
        for backend in &backends[1..] {
            // Single worker: the scan is sequential, so the winner is
            // exactly the lowest-identifier hit for every backend.
            let (hits, _) = scan_with(
                &space, &targets, backend.as_ref(), interval, ScanMode::FirstHit, 1,
            );
            assert_eq!(hits, reference, "{} first-hit winner differs", backend.name());
        }
    });
}

#[test]
fn multi_worker_first_hit_returns_a_real_planted_hit() {
    forall("racy first-hit validity", 8, |rng| {
        let algo = HashAlgo::Md5;
        let space = random_space(rng);
        let n = 1 + rng.index(2);
        let digests = plant(rng, &space, algo, n);
        let targets = TargetSet::new(algo, &digests);
        let backends = all_backends();
        let backend = backends[rng.index(backends.len())].as_ref();

        let (hits, _) =
            scan_with(&space, &targets, backend, space.interval(), ScanMode::FirstHit, 4);
        // With several workers racing, WHICH planted key wins can vary —
        // but the winner must be a genuine preimage of the target its
        // index names (indices are into the set's sorted digest order).
        assert_eq!(hits.len(), 1, "{}", backend.name());
        let (_, key, t) = &hits[0];
        assert_eq!(algo.hash(key.as_bytes()), targets.digest(*t), "{}", backend.name());
    });
}

#[test]
fn mid_interval_cancellation_reports_a_subset() {
    forall("cancellation subset", 8, |rng| {
        let algo = HashAlgo::Md5;
        let space = random_space(rng);
        let digests = plant(rng, &space, algo, 3);
        let targets = TargetSet::new(algo, &digests);
        let interval = space.interval();

        // The exhaustive reference hit set.
        let backends = all_backends();
        let (reference, _) = scan_with(
            &space, &targets, backends[0].as_ref(), interval, ScanMode::Exhaustive, 1,
        );

        // A scan cancelled somewhere mid-interval: raise the stop flag
        // from a watcher thread after a random number of tested keys.
        let backend = backends[rng.index(backends.len())].as_ref();
        let d = Dispatcher::new(&space, &targets, ScanMode::Exhaustive);
        let threshold = rng.range_u128(0, interval.len);
        let w = d.register("cancelled");
        let report = std::thread::scope(|scope| {
            let handle = scope.spawn(|| d.scan_as(w, backend, interval));
            // Poll the shared accounting until the threshold passes, then
            // cancel; the scan must stop at the next poll boundary.
            while !handle.is_finished() {
                if d.stop_flag().load(Ordering::Relaxed) {
                    break;
                }
                if threshold == 0 {
                    d.cancel();
                    break;
                }
                std::hint::spin_loop();
            }
            d.cancel();
            handle.join().expect("scan thread")
        });
        assert!(report.tested <= interval.len);
        for hit in &report.hits {
            assert!(reference.contains(hit), "cancelled scan invented a hit");
        }
        let r = d.finish();
        assert_eq!(r.tested, report.tested, "accounting matches the scan report");
    });
}
