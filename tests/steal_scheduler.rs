//! Properties of the adaptive work-stealing dispatcher.
//!
//! Three contracts keep the scheduler honest:
//!
//! * **exactly-once** — across arbitrary pop/steal interleavings, the
//!   interval deques hand out every identifier exactly once: chunks and
//!   steal-halves only ever *move* work, never duplicate or drop it;
//! * **result equivalence** — a stealing multi-thread search reports the
//!   same hits and tested count as the static and queue schedules;
//! * **bounded cancellation** — once the stop flag is raised, no worker
//!   scans more than one poll quantum of additional keys (the checked
//!   version of the old "may race past the stop flag" comment).
//!
//! The randomized interleavings sample the schedule space; the
//! `eks-verify` model checker closes the gap by exhaustively exploring
//! *every* interleaving of a bounded configuration (the model shares the
//! live `steal_split` / `ChunkPolicy` arithmetic, so the verified
//! relation cannot drift from the shipped scheduler).

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use eks::core::prop::{forall, Rng};
use eks::cracker::batch::Lanes;
use eks::cracker::{cpu_backend, TargetSet};
use eks::engine::{
    poll_quantum, Backend, ChunkPolicy, Dispatcher, IntervalDeques, Retune, ScanMode,
    ScanReport, SchedOptions, SchedPolicy,
};
use eks::hashes::HashAlgo;
use eks::keyspace::{Charset, Interval, KeySpace, Order};
use eks::verify::{check, standard_checks, CheckOptions, ModelConfig, Mutation, Property};

fn space() -> KeySpace {
    KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
}

fn targets(words: &[&[u8]]) -> TargetSet {
    let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
    TargetSet::new(HashAlgo::Md5, &ds)
}

/// Drive the deques single-threaded with a seeded random interleaving:
/// each step picks a random slot, which pops from its own deque when it
/// has work and steals otherwise. Every popped chunk is recorded; the
/// union must tile the original interval exactly.
#[test]
fn random_steal_interleavings_cover_every_identifier_exactly_once() {
    forall("exactly-once under stealing", 60, |rng: &mut Rng| {
        let start = rng.range_u128(0, 1 << 40);
        let len = rng.range_u128(1, 200_000);
        let slots = rng.range(1, 6) as usize;
        let interval = Interval::new(start, len);

        // Random scatter weights, occasionally including zero-weight
        // slots (an empty deque owner that can only ever steal).
        let weights: Vec<f64> =
            (0..slots).map(|_| if rng.index(4) == 0 { 0.0 } else { rng.range(1, 100) as f64 }).collect();
        let deques = if weights.iter().all(|w| *w == 0.0) {
            IntervalDeques::scatter(interval, &vec![1.0; slots])
        } else {
            IntervalDeques::scatter(interval, &weights)
        };

        let policy = match rng.index(3) {
            0 => ChunkPolicy::Fixed(rng.range(1, 5000) as u128),
            1 => ChunkPolicy::Guided { min: rng.range(1, 2000) as u128 },
            _ => ChunkPolicy::Guided { min: 1 },
        };

        let mut popped: Vec<Interval> = Vec::new();
        loop {
            let slot = rng.index(slots);
            match deques.pop(slot, policy) {
                Some(chunk) => popped.push(chunk),
                // Own deque drained: steal. A failed steal means no
                // other deque has work either (single-threaded, so the
                // scan cannot race), and the run is over.
                None => {
                    if deques.steal_into(slot).is_none() {
                        break;
                    }
                }
            }
        }

        // The popped chunks tile [start, start+len) contiguously: no
        // gaps, no overlaps, nothing outside the interval.
        popped.sort_by_key(|iv| iv.start);
        let mut cursor = interval.start;
        for chunk in &popped {
            assert_eq!(chunk.start, cursor, "chunks tile without gap or overlap");
            assert!(!chunk.is_empty(), "no empty pops");
            cursor = chunk.end();
        }
        assert_eq!(cursor, interval.end(), "the tail is covered");
        let total: u128 = popped.iter().map(|iv| iv.len).sum();
        assert_eq!(total, len, "every identifier handed out exactly once");
    });
}

/// The adaptive extension of the exactly-once property: re-scatters
/// injected at *arbitrary* points of a random pop/steal interleaving —
/// with arbitrary (sometimes zero, sometimes degenerate) live weights —
/// still hand out every identifier exactly once. This is the
/// load-shaped cousin of the test above: a re-scatter may move any
/// queued remainder between any pair of slots at any moment, and the
/// union of popped chunks must still tile the interval.
#[test]
fn random_rescatter_points_preserve_exactly_once_coverage() {
    forall("exactly-once under re-scattering", 60, |rng: &mut Rng| {
        let start = rng.range_u128(0, 1 << 40);
        let len = rng.range_u128(1, 200_000);
        let slots = rng.range(2, 6) as usize;
        let interval = Interval::new(start, len);
        let deques = IntervalDeques::scatter(interval, &vec![1.0; slots]);
        let policy = ChunkPolicy::Guided { min: rng.range(1, 2000) as u128 };

        let mut popped: Vec<Interval> = Vec::new();
        let mut rescatters = 0u32;
        loop {
            // An eighth of the steps are drift corrections instead of
            // pops: fresh pseudo-live weights, zeros included (a slot
            // the estimator believes is dead keeps its queue but takes
            // no new work).
            if rng.index(8) == 0 {
                let live: Vec<f64> = (0..slots)
                    .map(|_| if rng.index(5) == 0 { 0.0 } else { rng.range(1, 400) as f64 })
                    .collect();
                if deques.rescatter(&live) {
                    rescatters += 1;
                }
                continue;
            }
            let slot = rng.index(slots);
            match deques.pop(slot, policy) {
                Some(chunk) => popped.push(chunk),
                None => {
                    if deques.steal_into(slot).is_none() {
                        break;
                    }
                }
            }
        }

        popped.sort_by_key(|iv| iv.start);
        let mut cursor = interval.start;
        for chunk in &popped {
            assert_eq!(
                chunk.start, cursor,
                "chunks tile without gap or overlap ({rescatters} re-scatters)"
            );
            assert!(!chunk.is_empty(), "no empty pops");
            cursor = chunk.end();
        }
        assert_eq!(cursor, interval.end(), "the tail is covered");
        let total: u128 = popped.iter().map(|iv| iv.len).sum();
        assert_eq!(total, len, "every identifier handed out exactly once");
    });
}

/// The live closed loop end to end: seeded configurations run the real
/// threaded dispatcher with `--retune` semantics (drift threshold zero,
/// so every elected check re-scatters) and must match the retune-off
/// reference exactly — same exhaustive coverage, same identifier-sorted
/// hit set, and under first-hit the same planted key. This is the
/// integration-level counterpart of the model checker's `Rescatter`
/// transitions: the re-scatter points here fall wherever real chunk
/// timings put them.
#[test]
fn retuned_dispatch_preserves_coverage_and_merge_determinism() {
    forall("retuned dispatch equivalence", 6, |rng: &mut Rng| {
        let s = space();
        let backend = cpu_backend(Lanes::L8);
        let workers = rng.range(2, 4) as usize;
        let chunk = rng.range(512, 4096) as u128;
        let retune = Retune {
            every_chunks: rng.range(1, 4),
            // Zero threshold: every elected drift check re-scatters, so
            // the run crosses as many re-scatter points as possible.
            drift_pct: 0,
        };

        // Exhaustive: the retuned run must agree with the static
        // reference on total coverage and the full merged hit set.
        let planted: Vec<Vec<u8>> = (0..rng.range(1, 3))
            .map(|_| s.key_at(rng.range_u128(0, s.size() - 1)).as_bytes().to_vec())
            .collect();
        let t = TargetSet::new(
            HashAlgo::Md5,
            &planted.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect::<Vec<_>>(),
        );
        let reference = {
            let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
            d.run_workers(backend.as_ref(), s.interval(), workers, chunk as u64, SchedPolicy::Steal);
            d.finish()
        };
        let retuned = {
            let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
            let opts = SchedOptions::for_policy(SchedPolicy::Steal, chunk).with_retune(retune);
            d.run_workers_opts(backend.as_ref(), s.interval(), workers, opts);
            d.finish()
        };
        assert_eq!(retuned.tested, s.size(), "exactly-once coverage under retune");
        assert_eq!(reference.tested, s.size(), "reference covers the space too");
        assert_eq!(retuned.hits, reference.hits, "identifier-sorted merge is identical");

        // First-hit: one planted key; however the re-scatters shuffled
        // the queues, the merge must surface exactly that key.
        let id = rng.range_u128(0, s.size() - 1);
        let key = s.key_at(id);
        let t1 = TargetSet::new(HashAlgo::Md5, &[HashAlgo::Md5.hash_long(key.as_bytes())]);
        let d = Dispatcher::new(&s, &t1, ScanMode::FirstHit);
        let opts = SchedOptions::for_policy(SchedPolicy::Steal, chunk).with_retune(retune);
        d.run_workers_opts(backend.as_ref(), s.interval(), workers, opts);
        let r = d.finish();
        assert_eq!(r.hits.len(), 1, "planted key at id {id} under retune");
        assert_eq!(r.hits[0].1.as_bytes(), key.as_bytes());
        assert!(r.tested <= s.size(), "never more than the space");
    });
}

/// The same search run under all three policies must agree on hits and
/// tested counts (exhaustive mode, where both are deterministic).
#[test]
fn stealing_matches_static_and_queue_results() {
    let s = space();
    let t = targets(&[b"dog", b"mnop", b"zzzz"]);
    let backend = cpu_backend(Lanes::L8);
    let mut reference = None;
    for sched in SchedPolicy::ALL {
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        d.run_workers(backend.as_ref(), s.interval(), 3, 1 << 12, sched);
        let r = d.finish();
        assert_eq!(r.tested, s.size(), "{sched}");
        match &reference {
            None => reference = Some(r.hits),
            Some(hits) => assert_eq!(&r.hits, hits, "{sched}"),
        }
    }
}

/// A backend that counts every scanned key through the canonical
/// PollCursor walk and raises the stop flag itself once the global
/// count passes its trigger — the worst-case cancellation prober.
struct CountingBackend {
    counted: AtomicU64,
    trigger: u64,
}

impl Backend for CountingBackend {
    fn name(&self) -> String {
        "counting".into()
    }

    fn scan(
        &self,
        space: &KeySpace,
        _targets: &TargetSet,
        interval: Interval,
        stop: &AtomicBool,
        _mode: ScanMode,
    ) -> ScanReport {
        let clamped = interval.intersect(&space.interval());
        let mut cursor = eks::engine::PollCursor::new(clamped, stop);
        let mut report = ScanReport::empty();
        while let Some(chunk) = cursor.next_chunk() {
            // Count key by key, raising the stop flag mid-chunk the
            // moment the trigger is crossed — the chunk still finishes,
            // which is exactly the latency the bound allows.
            for _ in 0..chunk.len {
                if self.counted.fetch_add(1, Ordering::Relaxed) + 1 == self.trigger {
                    stop.store(true, Ordering::Relaxed);
                }
            }
            report.tested += chunk.len;
        }
        report.cancelled = cursor.cancelled();
        report
    }

    fn tuned_rate(&self, _algo: HashAlgo) -> f64 {
        1.0
    }
}

/// After the stop flag is raised at key `K`, every in-flight worker may
/// finish at most the chunk it is scanning: total work is bounded by
/// `K + workers × poll_quantum`.
#[test]
fn cancellation_overruns_at_most_one_poll_quantum_per_worker() {
    let s = KeySpace::new(Charset::lowercase(), 1, 6, Order::FirstCharFastest).unwrap();
    let t = targets(&[b"zzzzzz"]);
    for workers in [1usize, 2, 4] {
        let trigger = 40_000u64;
        let backend = CountingBackend { counted: AtomicU64::new(0), trigger };
        let d = Dispatcher::new(&s, &t, ScanMode::Exhaustive);
        d.run_workers(&backend, Interval::new(0, 10_000_000), workers, 1 << 12, SchedPolicy::Steal);
        let r = d.finish();
        let counted = backend.counted.load(Ordering::Relaxed);
        let bound = trigger as u128 + workers as u128 * poll_quantum(1);
        assert!(
            counted as u128 <= bound,
            "{workers} workers: counted {counted} > bound {bound}"
        );
        assert!(counted >= trigger, "{workers} workers: ran at least to the trigger");
        assert_eq!(r.tested, counted as u128, "dispatcher accounting matches the count");
    }
}

/// Stealing under first-hit still reports the planted key and never
/// tests more than the whole space.
#[test]
fn first_hit_under_stealing_finds_a_planted_key() {
    forall("first-hit steal finds the key", 20, |rng: &mut Rng| {
        let s = space();
        let id = rng.range_u128(0, s.size() - 1);
        let key = s.key_at(id);
        let t = TargetSet::new(HashAlgo::Md5, &[HashAlgo::Md5.hash_long(key.as_bytes())]);
        let backend = cpu_backend(Lanes::L16);
        let d = Dispatcher::new(&s, &t, ScanMode::FirstHit);
        d.run_workers(backend.as_ref(), s.interval(), 3, 256, SchedPolicy::Steal);
        let r = d.finish();
        assert_eq!(r.hits.len(), 1, "planted key at id {id}");
        assert_eq!(r.hits[0].1.as_bytes(), key.as_bytes());
        assert!(r.tested <= s.size(), "never more than the space");
        let steals: u64 = r.stats.iter().map(|w| w.steals).sum();
        let splits: u64 = r.stats.iter().map(|w| w.splits).sum();
        assert_eq!(steals, splits, "steal/split accounting stays balanced");
    });
}

/// The acceptance configuration: two workers popping eight two-key
/// intervals. The exhaustive exploration must be nontrivial (well past
/// 10^3 distinct states) and clean, and exhaustive mode must reach the
/// same merged hit set on every complete schedule.
#[test]
fn model_checker_exhausts_two_workers_eight_intervals() {
    let out = check(ModelConfig::steal_intervals(2, 8), CheckOptions::default());
    assert!(out.clean(), "{}", out.violation.unwrap().render());
    assert!(!out.truncated, "the bounded exploration must complete");
    assert!(out.states > 1_000, "only {} states: the model collapsed", out.states);
    assert_eq!(out.outcomes.len(), 1, "merge must be schedule-independent");
}

/// Every standard check stays clean up to three workers (the largest
/// worker count that explores in seconds), across steal/guided/first-hit
/// /cancel/static shapes.
#[test]
fn model_checker_standard_suite_is_clean_up_to_three_workers() {
    for workers in 1..=3 {
        // Three workers explore a factorially larger schedule space:
        // shrink the interval count to keep the suite under a second.
        let intervals = if workers == 3 { 3 } else { 6 };
        for named in standard_checks(workers, intervals) {
            let out = check(named.config, CheckOptions::default());
            assert!(
                out.clean(),
                "{} (workers={workers}): {}",
                named.name,
                out.violation.unwrap().render()
            );
            assert!(!out.truncated, "{} must explore to completion", named.name);
        }
    }
}

/// Negative path: each seeded protocol bug must be caught by exactly the
/// property it breaks, with a non-empty counterexample schedule.
#[test]
fn model_checker_flags_every_seeded_scheduler_bug() {
    let cases = [
        (Mutation::DropStolenLease, Property::NoLostLease, ModelConfig::steal_intervals(2, 4)),
        (Mutation::DoubleCountSteal, Property::ExactlyOnce, ModelConfig::steal_intervals(2, 4)),
        (Mutation::MergeHighestFirst, Property::MergeDeterminism, ModelConfig::first_hit(2, 8)),
        (Mutation::IgnoreCancelPoll, Property::CancellationBound, ModelConfig::cancel_bound(2, 8)),
    ];
    for (mutation, property, cfg) in cases {
        let out = check(cfg.with_mutation(mutation), CheckOptions::default());
        let v = out.violation.unwrap_or_else(|| panic!("{mutation:?} was not flagged"));
        assert_eq!(v.property, property, "{mutation:?} must break {property}");
        assert!(!v.trace.is_empty(), "{mutation:?} needs a printable counterexample");
    }
}
