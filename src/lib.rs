//! # exhaustive-key-search
//!
//! A Rust reproduction of *"Exhaustive Key Search on Clusters of GPUs"*
//! (Barbieri, Cardellini, Filippone — IPPS 2014): a parallelization
//! pattern for exhaustive search on hierarchical, heterogeneous systems,
//! applied to MD5/SHA-1 password cracking with cycle-level models of the
//! NVIDIA GPUs the paper evaluates.
//!
//! The workspace splits into layers, re-exported here:
//!
//! * [`core`] — the abstract pattern: solution spaces (`f`, `next`), test
//!   functions, the cost model, and throughput-proportional balancing;
//! * [`keyspace`] — bijective string enumeration over charsets;
//! * [`hashes`] — MD5 / SHA-1 / SHA-256 from scratch, plus the MD5
//!   15-step reversal;
//! * [`gpusim`] — the SIMT GPU simulator (architectures, codegen,
//!   scoreboard scheduler, throughput models, Table I/II/VII data);
//! * [`kernels`] — cracking kernels as executable GPU IR, including the
//!   BarsWF and Cryptohaze baseline models (Tables III–VI);
//! * [`analyzer`] — static analysis over the kernel IR: dataflow lints,
//!   per-architecture peephole checks, register-pressure estimation and
//!   machine-checkable Table III–VI budgets;
//! * [`engine`] — the pluggable [`Backend`](engine::Backend) layer and
//!   the single [`Dispatcher`](engine::Dispatcher) every execution path
//!   (scalar, lane-batched, simulated-GPU) runs through;
//! * [`cracker`] — the real multi-threaded CPU cracking engine and the
//!   Bitcoin-style mining search;
//! * [`cluster`] — hierarchical dispatch: tuning, balancing, the
//!   discrete-event network simulation (Table IX), the threaded runtime
//!   and the fault model;
//! * [`jobs`] — the multi-tenant job service: a persistent spool of
//!   crack jobs, inter-job fair-share scheduling (the paper's scatter
//!   proportions with priorities as weights), and crash-safe
//!   checkpointed resume with exactly-once coverage;
//! * [`telemetry`] — std-only observability: a sharded metrics registry
//!   (Prometheus-text / JSON exposition), a bounded structured trace
//!   sink (JSONL), an injectable clock, and the run-report renderer that
//!   puts measured network efficiency next to the paper's 85–90%;
//! * [`verify`] — a bounded exhaustive model checker for the
//!   work-stealing scheduler protocol (exactly-once coverage, no lost
//!   leases, deterministic first-hit merge, bounded cancellation
//!   overshoot) with counterexample traces, surfaced as `eks verify`.
//!
//! ## Quickstart
//!
//! ```
//! use eks::cracker::{crack_parallel, ParallelConfig, TargetSet};
//! use eks::hashes::HashAlgo;
//! use eks::keyspace::{Charset, KeySpace, Order};
//!
//! // The digest we want to reverse.
//! let digest = HashAlgo::Md5.hash(b"dog");
//! let targets = TargetSet::new(HashAlgo::Md5, &[digest]);
//!
//! // All lowercase strings of length 1..=4, enumerated first-char-fastest
//! // (the order the paper's reversed-MD5 kernel requires).
//! let space = KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap();
//!
//! let report = crack_parallel(&space, &targets, space.interval(), ParallelConfig::default());
//! assert_eq!(report.hits[0].1.as_bytes(), b"dog");
//! ```

pub use eks_core as core;
pub use eks_analyzer as analyzer;
pub use eks_cluster as cluster;
pub use eks_cracker as cracker;
pub use eks_engine as engine;
pub use eks_gpusim as gpusim;
pub use eks_hashes as hashes;
pub use eks_jobs as jobs;
pub use eks_kernels as kernels;
pub use eks_keyspace as keyspace;
pub use eks_telemetry as telemetry;
pub use eks_verify as verify;
