#!/usr/bin/env bash
# Offline CI gate: build, test, lint, and statically analyze the kernels.
# Every step must pass; no network access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Second pass with native codegen: the explicit-SIMD kernels are chosen
# by *runtime* detection either way, but -C target-cpu=native changes
# what the autovectorized fallback compiles to and what the auto-tuner
# races against — both dispatch outcomes must stay correct. A separate
# target dir keeps the two flag sets from invalidating each other's
# incremental caches.
echo "==> cargo test -q --workspace (RUSTFLAGS=-C target-cpu=native)"
RUSTFLAGS="-C target-cpu=native" CARGO_TARGET_DIR=target/native cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> eks analyze --deny warnings"
./target/release/eks analyze --deny warnings

echo "==> eks verify --deny violations (exhaustive scheduler model check + kernel IR soundness)"
./target/release/eks verify --deny violations
# Negative path: every seeded mutant must be flagged with a non-zero
# exit — a verifier that cannot catch a planted bug proves nothing.
for mutant in drop-lease double-count merge-highest ignore-cancel \
              unguarded-store uninit-read divergent-barrier; do
  if ./target/release/eks verify --mutate "$mutant" > /dev/null 2>&1; then
    echo "FAIL: eks verify --mutate $mutant was not flagged" >&2
    exit 1
  fi
done

echo "==> telemetry smoke: crack with --metrics-out/--trace-out, then render the report"
TELEMETRY_DIR="$(mktemp -d)"
./target/release/eks crack --algo md5 --digest d077f244def8a70e5ea758bd8352fcd8 --max 3 \
  --metrics-out "$TELEMETRY_DIR/m.prom" --trace-out "$TELEMETRY_DIR/t.jsonl" --quiet
# `eks report` re-parses both artifacts: it exits non-zero if the
# Prometheus exposition does not parse or the trace JSONL strays from
# the documented schema.
./target/release/eks report --metrics "$TELEMETRY_DIR/m.prom" --trace "$TELEMETRY_DIR/t.jsonl" > /dev/null
rm -rf "$TELEMETRY_DIR"

echo "==> eks bench --json (schema-3 host-tuning report: cpu_features + per-backend tuned rates)"
BENCH_DIR="$(mktemp -d)"
./target/release/eks bench --json "$BENCH_DIR/host.json" > /dev/null
for field in '"schema": 3' '"cpu_features"' '"simd_isa"' '"auto_choices"'; do
  if ! grep -q "$field" "$BENCH_DIR/host.json"; then
    echo "FAIL: eks bench --json is missing $field" >&2
    exit 1
  fi
done
rm -rf "$BENCH_DIR"

# The MD5 floor is 8x on this host's explicit AVX-512 kernels (measured
# ~15x); hosts with no SIMD ISA fall back to the autovectorized lanes,
# which still clear the old 3x bar via the auto backend. The adaptive
# floor asks the closed-loop retune to recover at least 1.3x the static
# arm's parallel efficiency on the stale-weights skewed fleet (the true
# figure for a 4x handicap is ~1.58x).
echo "==> bench_cracker --json BENCH_cracker.json (fails if batched < scalar, MD5 < 8x, 2-worker scaling < 1.6x, adaptive/static efficiency < 1.3x, or telemetry overhead > 5%)"
cargo bench -q -p eks-bench --bench bench_cracker -- --json "$PWD/BENCH_cracker.json" --min-md5-speedup 8.0 --min-scaling 1.6 --min-adaptive-ratio 1.3 --max-telemetry-overhead-pct 5
for field in '"schema": 4' '"adaptive"' '"adaptive_efficiency_ratio"' '"rescatters"'; do
  if ! grep -q "$field" "$PWD/BENCH_cracker.json"; then
    echo "FAIL: BENCH_cracker.json is missing $field" >&2
    exit 1
  fi
done

echo "==> adaptive load-balancing smoke (skewed fleet: static leaves >30% idle, retune closes it to <15%)"
cargo run -q --release -p eks-bench --example adaptive_smoke

echo "==> determinism: with --retune off, static accounting reproduces byte-for-byte"
DET_DIR="$(mktemp -d)"
for arm in a b; do
  ./target/release/eks crack --algo md5 --digest d077f244def8a70e5ea758bd8352fcd8 --max 3 \
    --all --threads 3 --sched static --metrics-out "$DET_DIR/$arm.prom" --quiet > /dev/null
  grep '^eks_keys_tested_total' "$DET_DIR/$arm.prom" | sort > "$DET_DIR/$arm.tested"
done
if ! diff "$DET_DIR/a.tested" "$DET_DIR/b.tested"; then
  echo "FAIL: two retune-off static runs disagree on per-worker accounting" >&2
  exit 1
fi
# And the retuned run covers the same total even though its per-worker
# split is free to differ.
./target/release/eks crack --algo md5 --digest d077f244def8a70e5ea758bd8352fcd8 --max 3 \
  --all --threads 3 --sched steal --retune --metrics-out "$DET_DIR/r.prom" --quiet > /dev/null
for f in a r; do
  grep '^eks_keys_tested_total' "$DET_DIR/$f.prom" \
    | awk '{s+=$NF} END {printf "%.0f\n", s}' > "$DET_DIR/$f.total"
done
if ! diff "$DET_DIR/a.total" "$DET_DIR/r.total"; then
  echo "FAIL: the retuned run's total coverage differs from the static run" >&2
  exit 1
fi
rm -rf "$DET_DIR"

echo "==> job service smoke: SIGKILL mid-search, restart, exactly-once resume"
SPOOL_DIR="$(mktemp -d)"
# Two digit-charset jobs of 10 + 100 + ... + 10^8 keys each; both
# planted words sit deep enough that the kill below lands mid-search.
JOB_SIZE=111111110
./target/release/eks job submit --spool "$SPOOL_DIR" \
  --digest "$(./target/release/eks hash 31415926)" --charset digits --max 8 --name pi > /dev/null
./target/release/eks job submit --spool "$SPOOL_DIR" \
  --digest "$(./target/release/eks hash 27182818)" --charset digits --max 8 --name e > /dev/null
./target/release/eks job run --spool "$SPOOL_DIR" --threads 2 > /dev/null 2>&1 &
RUN_PID=$!
# Wait for the first durable checkpoint, then kill without warning.
for _ in $(seq 1 500); do
  if grep -q '"state":"running"' "$SPOOL_DIR/job-1.json" \
     && ! grep -q '"tested":"0"' "$SPOOL_DIR/job-1.json"; then
    break
  fi
  sleep 0.02
done
kill -9 "$RUN_PID" 2> /dev/null || true
wait "$RUN_PID" 2> /dev/null || true
if grep -q '"tested":"0"' "$SPOOL_DIR/job-1.json"; then
  echo "FAIL: job-1 has no durable progress to resume from" >&2
  exit 1
fi
for job in job-1 job-2; do
  if grep -q "\"tested\":\"$JOB_SIZE\"" "$SPOOL_DIR/$job.json"; then
    echo "FAIL: $job already finished before the kill; the gate proved nothing" >&2
    exit 1
  fi
done
# Restart over the same spool: both jobs must resume from their
# checkpoints and finish with exactly-once coverage — tested equals the
# keyspace size exactly (a rescan would overshoot, a skip undershoot).
./target/release/eks job run --spool "$SPOOL_DIR" --threads 2 \
  --metrics-out "$SPOOL_DIR/jobs.prom" --trace-out "$SPOOL_DIR/jobs.jsonl" > /dev/null
for job in job-1 job-2; do
  if ! grep -q '"state":"completed"' "$SPOOL_DIR/$job.json"; then
    echo "FAIL: $job did not complete after the restart" >&2
    exit 1
  fi
  if ! grep -q "\"tested\":\"$JOB_SIZE\"" "$SPOOL_DIR/$job.json"; then
    echo "FAIL: $job coverage is not exactly $JOB_SIZE keys (rescan or skip)" >&2
    exit 1
  fi
done
# 3331343135393236 = hex("31415926"): the planted key was found.
if ! grep -q '"key":"3331343135393236"' "$SPOOL_DIR/job-1.json"; then
  echo "FAIL: job-1 never found its planted key" >&2
  exit 1
fi
# The per-job telemetry dimension renders in the report.
./target/release/eks report --metrics "$SPOOL_DIR/jobs.prom" --trace "$SPOOL_DIR/jobs.jsonl" \
  | grep -q "job-1" || { echo "FAIL: report lacks the per-job table" >&2; exit 1; }
rm -rf "$SPOOL_DIR"

echo "==> observability smoke (skewed fleet: straggler flagged within two windows, mid-run /metrics scrape, flight dump replays)"
OBS_DIR="$(mktemp -d)"
cargo run -q --release -p eks-bench --example observability_smoke "$OBS_DIR/flight.json"
# The dump the smoke run wrote must replay through the real CLI and
# name the straggler it flagged.
./target/release/eks postmortem "$OBS_DIR/flight.json" | grep -q "host/slow" \
  || { echo "FAIL: postmortem does not name the flagged worker" >&2; exit 1; }

echo "==> live scrape smoke: eks serve --listen-metrics, scraped mid-run by eks top --once"
./target/release/eks job submit --spool "$OBS_DIR" \
  --digest "$(./target/release/eks hash 31415926)" --charset digits --max 8 --name scrape > /dev/null
./target/release/eks serve --spool "$OBS_DIR" --addr 127.0.0.1:0 \
  --listen-metrics 127.0.0.1:0 > "$OBS_DIR/serve.log" 2>&1 &
SERVE_PID=$!
METRICS_ADDR=""
for _ in $(seq 1 500); do
  METRICS_ADDR="$(sed -n 's#^metrics listening on http://##p' "$OBS_DIR/serve.log")"
  [ -n "$METRICS_ADDR" ] && break
  sleep 0.02
done
if [ -z "$METRICS_ADDR" ]; then
  echo "FAIL: serve never printed its --listen-metrics address" >&2
  kill "$SERVE_PID" 2> /dev/null || true
  exit 1
fi
# `eks top --once` is the scrape client: it checks /healthz, parses
# /metrics with the self-contained exposition checker, and renders the
# job list from /jobs — all three endpoints in one probe.
./target/release/eks top --addr "$METRICS_ADDR" --once > "$OBS_DIR/top.out"
kill "$SERVE_PID" 2> /dev/null || true
wait "$SERVE_PID" 2> /dev/null || true
for want in "eks top" "scrape"; do
  if ! grep -q "$want" "$OBS_DIR/top.out"; then
    echo "FAIL: eks top frame is missing \"$want\"" >&2
    cat "$OBS_DIR/top.out" >&2
    exit 1
  fi
done

echo "==> flight recorder: forced panic mid-search must dump flight.json that eks postmortem replays"
if ./target/release/eks crack --algo md5 --digest 00000000000000000000000000000000 \
    --max 4 --all --threads 2 --flight "$OBS_DIR/crash.json" --panic-after-chunks 5 \
    --quiet > /dev/null 2>&1; then
  echo "FAIL: the forced-panic crack exited zero" >&2
  exit 1
fi
if [ ! -s "$OBS_DIR/crash.json" ]; then
  echo "FAIL: the panic hook left no flight dump" >&2
  exit 1
fi
./target/release/eks postmortem "$OBS_DIR/crash.json" > "$OBS_DIR/crash.txt"
grep -q "forced panic after" "$OBS_DIR/crash.txt" \
  || { echo "FAIL: postmortem lacks the panic reason" >&2; exit 1; }
# The per-worker table at crash names the workers that were searching.
grep -q "#0" "$OBS_DIR/crash.txt" \
  || { echo "FAIL: postmortem lacks the per-worker table" >&2; cat "$OBS_DIR/crash.txt" >&2; exit 1; }
rm -rf "$OBS_DIR"

echo "CI green."
