#!/usr/bin/env bash
# Offline CI gate: build, test, lint, and statically analyze the kernels.
# Every step must pass; no network access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> eks analyze --deny warnings"
./target/release/eks analyze --deny warnings

echo "==> eks verify --deny violations (exhaustive scheduler model check + kernel IR soundness)"
./target/release/eks verify --deny violations
# Negative path: every seeded mutant must be flagged with a non-zero
# exit — a verifier that cannot catch a planted bug proves nothing.
for mutant in drop-lease double-count merge-highest ignore-cancel \
              unguarded-store uninit-read divergent-barrier; do
  if ./target/release/eks verify --mutate "$mutant" > /dev/null 2>&1; then
    echo "FAIL: eks verify --mutate $mutant was not flagged" >&2
    exit 1
  fi
done

echo "==> telemetry smoke: crack with --metrics-out/--trace-out, then render the report"
TELEMETRY_DIR="$(mktemp -d)"
./target/release/eks crack --algo md5 --digest d077f244def8a70e5ea758bd8352fcd8 --max 3 \
  --metrics-out "$TELEMETRY_DIR/m.prom" --trace-out "$TELEMETRY_DIR/t.jsonl" --quiet
# `eks report` re-parses both artifacts: it exits non-zero if the
# Prometheus exposition does not parse or the trace JSONL strays from
# the documented schema.
./target/release/eks report --metrics "$TELEMETRY_DIR/m.prom" --trace "$TELEMETRY_DIR/t.jsonl" > /dev/null
rm -rf "$TELEMETRY_DIR"

echo "==> bench_cracker --json BENCH_cracker.json (fails if batched < scalar, MD5 < 3x, 2-worker scaling < 1.6x, or telemetry overhead > 5%)"
cargo bench -q -p eks-bench --bench bench_cracker -- --json "$PWD/BENCH_cracker.json" --min-md5-speedup 3.0 --min-scaling 1.6 --max-telemetry-overhead-pct 5

echo "CI green."
