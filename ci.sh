#!/usr/bin/env bash
# Offline CI gate: build, test, lint, and statically analyze the kernels.
# Every step must pass; no network access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> eks analyze --deny warnings"
./target/release/eks analyze --deny warnings

echo "CI green."
