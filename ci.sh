#!/usr/bin/env bash
# Offline CI gate: build, test, lint, and statically analyze the kernels.
# Every step must pass; no network access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> eks analyze --deny warnings"
./target/release/eks analyze --deny warnings

echo "==> bench_cracker --json BENCH_cracker.json (fails if batched < scalar, MD5 < 3x, or 2-worker scaling < 1.6x)"
cargo bench -q -p eks-bench --bench bench_cracker -- --json "$PWD/BENCH_cracker.json" --min-md5-speedup 3.0 --min-scaling 1.6

echo "CI green."
